#!/usr/bin/env python3
"""Determinism lint: forbid nondeterminism sources inside ``src/repro``.

The simulator's contract (PR 1) is bit-identical runs for identical seeds.
That contract is easy to break silently — one ``random.random()`` in a code
path, one ``hash()``-derived seed (salted per process via PYTHONHASHSEED),
one ``os.environ`` read changing behaviour between machines.  This linter
walks the AST of every file under ``src/repro`` and rejects:

``unseeded-random``
    Calls of module-level ``random.*`` functions (``random.random()``,
    ``random.choice()``, ...).  Constructing an explicitly seeded
    ``random.Random(seed)`` instance is fine — all randomness must flow
    through such instances (or :func:`repro.sim.rng.make_rng`).
``wall-clock``
    ``time.time()`` / ``time.time_ns()`` and ``datetime`` ``now()`` /
    ``utcnow()`` / ``today()``.  Simulated time comes from the event loop;
    ``time.perf_counter()`` stays allowed because it measures *host*
    compute cost, which is reported but never fed back into the model.
``hash-builtin``
    The ``hash()`` builtin.  Its output for strings is salted per process,
    so seeds or orderings derived from it differ across runs.
``env-dependent``
    ``os.environ`` / ``os.getenv`` reads.  Behaviour must be a function of
    explicit arguments, not of ambient environment.

``src/repro/sim/rng.py`` is allowlisted wholesale: it is the one sanctioned
wrapper around the ``random`` module.  Individual lines elsewhere can be
exempted with a ``# determinism: allow`` comment, which this linter treats
as an audited, deliberate exception.

Usage::

    python tools/lint_determinism.py [ROOT ...]

with ``src/repro`` as the default root.  Exits 1 when violations exist.
The module is importable (``check_file``, ``lint_paths``) for tests.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

__all__ = ["LintViolation", "check_file", "check_source", "lint_paths", "main"]

#: Files (relative to the scanned root) that wrap ``random`` on purpose.
ALLOWED_FILES = frozenset({Path("sim/rng.py")})

#: Marker comment that exempts a single line.
ALLOW_MARKER = "# determinism: allow"

_RANDOM_MODULE_ALLOWED = frozenset({"Random", "SystemRandom"})
_TIME_BANNED = frozenset({"time", "time_ns"})
_DATETIME_BANNED = frozenset({"now", "utcnow", "today", "fromtimestamp"})


@dataclass(frozen=True)
class LintViolation:
    """One banned construct at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, source_lines: list[str]) -> None:
        self.path = path
        self.source_lines = source_lines
        self.violations: list[LintViolation] = []

    # ------------------------------------------------------------------
    def _allowed(self, node: ast.AST) -> bool:
        line = getattr(node, "lineno", 0)
        if not 1 <= line <= len(self.source_lines):
            return False
        return ALLOW_MARKER in self.source_lines[line - 1]

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        if not self._allowed(node):
            self.violations.append(
                LintViolation(self.path, node.lineno, rule, message)
            )

    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            module, attr = func.value.id, func.attr
            if (
                module == "random"
                and attr not in _RANDOM_MODULE_ALLOWED
            ):
                self._flag(
                    node,
                    "unseeded-random",
                    f"random.{attr}() uses the shared unseeded RNG; "
                    f"thread an explicit random.Random(seed) instead",
                )
            elif module == "time" and attr in _TIME_BANNED:
                self._flag(
                    node,
                    "wall-clock",
                    f"time.{attr}() reads the wall clock; use the "
                    f"simulator's clock (sim.now) or time.perf_counter() "
                    f"for host-cost measurement",
                )
            elif module in {"datetime", "date"} and attr in _DATETIME_BANNED:
                self._flag(
                    node,
                    "wall-clock",
                    f"{module}.{attr}() reads the wall clock",
                )
            elif module == "os" and attr == "getenv":
                self._flag(
                    node,
                    "env-dependent",
                    "os.getenv() makes behaviour depend on the ambient "
                    "environment; accept an explicit argument instead",
                )
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Attribute
        ):
            # datetime.datetime.now() / datetime.date.today()
            inner = func.value
            if (
                isinstance(inner.value, ast.Name)
                and inner.value.id == "datetime"
                and func.attr in _DATETIME_BANNED
            ):
                self._flag(
                    node,
                    "wall-clock",
                    f"datetime.{inner.attr}.{func.attr}() reads the wall "
                    f"clock",
                )
        elif isinstance(func, ast.Name) and func.id == "hash":
            self._flag(
                node,
                "hash-builtin",
                "hash() is salted per process (PYTHONHASHSEED); derive "
                "seeds/orderings from zlib.crc32 or explicit keys",
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "os"
            and node.attr == "environ"
        ):
            self._flag(
                node,
                "env-dependent",
                "os.environ makes behaviour depend on the ambient "
                "environment; accept an explicit argument instead",
            )
        self.generic_visit(node)


def check_source(source: str, path: str = "<string>") -> list[LintViolation]:
    """Lint one source string; ``path`` is used for reporting only."""
    tree = ast.parse(source, filename=path)
    visitor = _Visitor(path, source.splitlines())
    visitor.visit(tree)
    return sorted(visitor.violations, key=lambda v: (v.line, v.rule))


def check_file(path: Path) -> list[LintViolation]:
    return check_source(path.read_text(encoding="utf-8"), str(path))


def _python_files(root: Path) -> Iterator[Path]:
    if root.is_file():
        yield root
        return
    yield from sorted(root.rglob("*.py"))


def lint_paths(roots: Iterable[Path]) -> list[LintViolation]:
    violations: list[LintViolation] = []
    for root in roots:
        root = Path(root)
        for path in _python_files(root):
            relative = path.relative_to(root) if root.is_dir() else path
            if relative in ALLOWED_FILES:
                continue
            violations.extend(check_file(path))
    return violations


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    roots = [Path(arg) for arg in argv] or [Path("src/repro")]
    missing = [root for root in roots if not root.exists()]
    if missing:
        for root in missing:
            print(f"error: no such path: {root}", file=sys.stderr)
        return 2
    violations = lint_paths(roots)
    for violation in violations:
        print(violation)
    if violations:
        print(
            f"determinism lint: {len(violations)} violation(s)",
            file=sys.stderr,
        )
        return 1
    print(f"determinism lint: OK ({', '.join(str(r) for r in roots)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
