"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Describe one of the built-in topologies (switches, hosts, links,
    diameter).
``demo``
    Run a compact publish/subscribe demonstration on the paper's testbed
    fat-tree and print the delivery report.
``soak``
    Random subscribe/unsubscribe/advertise/unadvertise churn with invariant
    checking after every step — a quick self-test of an installation.
``check``
    Statically verify the installed flow state (loop/blackhole freedom,
    tree disjointness, dead rules, table drift) over seeded churn on the
    built-in topologies; ``--self-test`` mutation-tests the verifier
    itself by injecting known fault classes.  Exits nonzero on violations.
``fpr``
    Evaluate one false-positive-rate data point (the Fig. 7d measurement)
    for a chosen model, subscription count and dz length.
``report``
    Render an exported observability snapshot (``demo --snapshot-out``,
    :meth:`Pleroma.export_obs` or the benchmark harness) as a terminal
    run summary; ``--csv`` re-exports the metrics as CSV instead.
``trace``
    Run the demo workload with the data-plane flight recorder enabled and
    render per-event hop timelines, the delay attribution, the drop
    forensics and a per-link hotness table; ``--out`` exports the
    deterministic trace document, ``--chrome-out`` writes Chrome
    trace-event JSON (load in ``chrome://tracing`` / Perfetto).
``stats``
    Run a skewed workload with in-band telemetry enabled: the controller
    polls every switch with OpenFlow ``FlowStats``/``PortStats``/
    ``TableStats`` requests over the control channel (no oracle reads),
    then prints the polled heavy hitters, per-switch polling state,
    inferred port loss, the alert log and the reconciliation against the
    oracle counters.  ``--json`` emits a byte-stable document, ``--out``
    writes it to a file, ``--prom`` exports the metrics registry in
    Prometheus/OpenMetrics text format.
``chaos``
    Run a seeded failure schedule (link cut, flap train, switch crash,
    partition) against a deployment with the self-healing control plane
    enabled (:mod:`repro.resilience`) and report the recovery SLOs:
    detection latency, modeled repair latency, blackout packet loss and
    post-repair verifier cleanliness.  ``--json`` emits a byte-stable
    report, ``--out`` writes it to a file.  Exits nonzero if the final
    verifier pass finds violations.
"""

from __future__ import annotations

import argparse
import random
import sys
from collections.abc import Iterator, Sequence

from repro.core.events import Event
from repro.core.spatial_index import SpatialIndexer
from repro.core.subscription import Advertisement, Filter
from repro.exceptions import ReproError
from repro.middleware.pleroma import Pleroma
from repro.network.topology import (
    Topology,
    line,
    mininet_fat_tree,
    paper_fat_tree,
    ring,
)
from repro.workloads.scenarios import paper_uniform, paper_zipfian

__all__ = ["main", "build_parser"]

_TOPOLOGIES = {
    "paper-fat-tree": paper_fat_tree,
    "mininet-fat-tree": mininet_fat_tree,
    "ring": ring,
    "line": lambda: line(4),
}

# The chaos command accepts "fat-tree" as a friendlier alias; kept local so
# "check --topology all" does not run the paper fat-tree twice.
_CHAOS_TOPOLOGIES = {**_TOPOLOGIES, "fat-tree": paper_fat_tree}


def _topology(name: str) -> Topology:
    return _TOPOLOGIES[name]()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PLEROMA SDN publish/subscribe middleware (reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="describe a built-in topology")
    info.add_argument(
        "--topology",
        choices=sorted(_TOPOLOGIES),
        default="paper-fat-tree",
    )

    demo = sub.add_parser("demo", help="run a small pub/sub demonstration")
    demo.add_argument("--events", type=int, default=50)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument(
        "--snapshot-out",
        metavar="PATH",
        default=None,
        help="export the observability snapshot as JSON to PATH",
    )

    soak = sub.add_parser("soak", help="randomised churn self-test")
    soak.add_argument("--steps", type=int, default=100)
    soak.add_argument("--seed", type=int, default=0)
    soak.add_argument(
        "--topology",
        choices=sorted(_TOPOLOGIES),
        default="mininet-fat-tree",
    )

    check = sub.add_parser(
        "check", help="statically verify the installed flow state"
    )
    check.add_argument(
        "--topology",
        choices=["all", *sorted(_TOPOLOGIES)],
        default="all",
        help="built-in topology to verify (default: all of them)",
    )
    check.add_argument(
        "--install-mode",
        choices=["both", "reconcile", "incremental"],
        default="both",
    )
    check.add_argument("--partitions", type=int, default=1)
    check.add_argument("--steps", type=int, default=25)
    check.add_argument("--seed", type=int, default=0)
    check.add_argument(
        "--self-test",
        action="store_true",
        help=(
            "mutation-test the verifier: inject each known fault class "
            "into a healthy deployment and require detection"
        ),
    )
    check.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable reports instead of the text summary",
    )

    render = sub.add_parser(
        "render", help="draw a 2-D filter's dz decomposition as ASCII art"
    )
    render.add_argument("--a", nargs=2, type=float, default=[200, 600],
                        metavar=("LOW", "HIGH"))
    render.add_argument("--b", nargs=2, type=float, default=[300, 700],
                        metavar=("LOW", "HIGH"))
    render.add_argument("--dz-length", type=int, default=10)
    render.add_argument("--max-cells", type=int, default=32)
    render.add_argument("--width", type=int, default=48)
    render.add_argument("--height", type=int, default=24)

    fpr = sub.add_parser(
        "fpr", help="measure one false-positive-rate data point"
    )
    fpr.add_argument("--model", choices=["uniform", "zipfian"], default="zipfian")
    fpr.add_argument("--subscriptions", type=int, default=100)
    fpr.add_argument("--dz-length", type=int, default=15)
    fpr.add_argument("--dimensions", type=int, default=3)
    fpr.add_argument("--events", type=int, default=1000)
    fpr.add_argument("--seed", type=int, default=0)

    report = sub.add_parser(
        "report", help="render an exported observability snapshot"
    )
    report.add_argument("snapshot", help="path to a snapshot JSON file")
    report.add_argument(
        "--csv",
        action="store_true",
        help="emit the metrics as CSV instead of the run summary",
    )

    trace = sub.add_parser(
        "trace", help="flight-record the demo workload and render paths"
    )
    trace.add_argument("--events", type=int, default=50)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--sample-every",
        type=int,
        default=1,
        metavar="N",
        help="record 1 in N packets (seeded, deterministic; default: all)",
    )
    trace.add_argument(
        "--limit",
        type=int,
        default=3,
        help="number of per-event timelines to render (default 3)",
    )
    trace.add_argument(
        "--fail-link",
        action="store_true",
        help="take a core link down mid-run to exercise link-down drops",
    )
    trace.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="export the full trace document (records + analysis) as JSON",
    )
    trace.add_argument(
        "--chrome-out",
        metavar="PATH",
        default=None,
        help="export Chrome trace-event JSON for chrome://tracing",
    )

    stats = sub.add_parser(
        "stats",
        help="poll in-band OpenFlow statistics over a skewed workload",
    )
    stats.add_argument(
        "--topology",
        choices=sorted(_TOPOLOGIES),
        default="paper-fat-tree",
    )
    stats.add_argument("--events", type=int, default=200)
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument(
        "--period",
        type=float,
        default=0.01,
        metavar="SECONDS",
        help="statistics polling period in sim time (default 10 ms)",
    )
    stats.add_argument(
        "--top-k",
        type=int,
        default=5,
        help="heavy hitters to report (default 5)",
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit the stats document as deterministic JSON instead of text",
    )
    stats.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also write the stats document JSON to PATH",
    )
    stats.add_argument(
        "--prom",
        metavar="PATH",
        default=None,
        help="export the metrics registry as Prometheus/OpenMetrics text",
    )

    chaos = sub.add_parser(
        "chaos",
        help="run a seeded failure schedule and report recovery SLOs",
    )
    chaos.add_argument(
        "--topology",
        choices=sorted(_CHAOS_TOPOLOGIES),
        default="fat-tree",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--probe-period",
        type=float,
        default=None,
        metavar="SECONDS",
        help="detector probe period (default 2 ms of sim time)",
    )
    chaos.add_argument(
        "--miss-threshold",
        type=int,
        default=None,
        help="consecutive missed probes before a link is declared down",
    )
    chaos.add_argument(
        "--json",
        action="store_true",
        help="emit the SLO report as deterministic JSON instead of text",
    )
    chaos.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also write the SLO report JSON to PATH",
    )
    return parser


# ----------------------------------------------------------------------
def _cmd_info(args: argparse.Namespace) -> int:
    topo = _topology(args.topology)
    switch_links = sum(
        1
        for spec in topo.links()
        if topo.is_switch(spec.a) and topo.is_switch(spec.b)
    )
    a, b = topo.diameter_path()
    diameter = len(topo.shortest_path(a, b)) - 1
    print(f"topology:      {topo.name}")
    print(f"switches:      {len(topo.switches())}")
    print(f"hosts:         {len(topo.hosts())}")
    print(f"switch links:  {switch_links}")
    print(f"host links:    {len(topo.hosts())}")
    print(f"diameter:      {diameter} hops ({a} .. {b})")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed)
    middleware = Pleroma(paper_fat_tree(), dimensions=2, max_dz_length=12)
    publisher = middleware.publisher("h1")
    publisher.advertise(Filter.of())
    subscribers = {}
    for host, band in (("h4", (0, 340)), ("h6", (341, 680)), ("h8", (681, 1023))):
        client = middleware.subscriber(host)
        client.subscribe(Filter.of(attr0=band))
        subscribers[host] = client
    for i in range(args.events):
        middleware.sim.schedule(
            i * 1e-3,
            middleware.publish,
            "h1",
            Event.of(attr0=rng.uniform(0, 1023), attr1=rng.uniform(0, 1023)),
        )
    middleware.run()
    print(f"events published:   {middleware.metrics.published}")
    for host, client in subscribers.items():
        print(f"  {host}: matched {len(client.matched)}")
    print(f"mean delay:         {middleware.metrics.mean_delay() * 1e3:.3f} ms")
    print(
        f"false positives:    "
        f"{middleware.metrics.false_positive_rate():.1f} %"
    )
    print(f"flow entries:       {middleware.total_flows_installed()}")
    if args.snapshot_out is not None:
        middleware.export_obs(args.snapshot_out)
        print(f"snapshot written:   {args.snapshot_out}")
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed)
    workload = paper_uniform(dimensions=2, seed=args.seed)
    middleware = Pleroma(
        _topology(args.topology), space=workload.space, max_dz_length=12
    )
    hosts = middleware.topology.hosts()
    live_subs: list[tuple[str, int]] = []
    live_advs: list[tuple[str, int]] = []
    for step in range(args.steps):
        roll = rng.random()
        try:
            if roll < 0.35 or not live_advs:
                host = rng.choice(hosts)
                state = middleware.advertise(
                    host, Advertisement(filter=workload.subscription().filter)
                )
                live_advs.append((host, state.adv_id))
            elif roll < 0.70:
                host = rng.choice(hosts)
                state = middleware.subscribe(host, workload.subscription())
                live_subs.append((host, state.sub_id))
            elif roll < 0.85 and live_subs:
                host, sub_id = live_subs.pop(rng.randrange(len(live_subs)))
                middleware.unsubscribe(host, sub_id)
            elif live_advs:
                host, adv_id = live_advs.pop(rng.randrange(len(live_advs)))
                middleware.unadvertise(host, adv_id)
            middleware.check_invariants()
        except ReproError as exc:  # pragma: no cover - failure reporting
            print(
                f"FAILED at step {step}: {type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
            return 1
    for host, sub_id in live_subs:
        middleware.unsubscribe(host, sub_id)
    for host, adv_id in live_advs:
        middleware.unadvertise(host, adv_id)
    leftover = middleware.total_flows_installed()
    if leftover:
        print(f"FAILED: {leftover} flows left after teardown", file=sys.stderr)
        return 1
    print(
        f"soak OK: {args.steps} operations, invariants held, clean teardown"
    )
    return 0


def _check_scenarios(args: argparse.Namespace) -> "Iterator[tuple[str, str]]":
    topologies = (
        sorted(_TOPOLOGIES) if args.topology == "all" else [args.topology]
    )
    modes = (
        ["reconcile", "incremental"]
        if args.install_mode == "both"
        else [args.install_mode]
    )
    for topology in topologies:
        for mode in modes:
            yield topology, mode


def _check_one_scenario(
    topology: str, mode: str, args: argparse.Namespace
) -> list:
    """Drive seeded churn on one deployment, verifying after every step."""
    from repro.analysis.verify import verify_deployment

    rng = random.Random(args.seed)
    workload = paper_uniform(dimensions=2, seed=args.seed)
    middleware = Pleroma(
        _topology(topology),
        space=workload.space,
        max_dz_length=12,
        partitions=args.partitions,
        install_mode=mode,
    )
    hosts = middleware.topology.hosts()
    live_subs: list[tuple[str, int]] = []
    live_advs: list[tuple[str, int]] = []
    reports = []
    for _ in range(args.steps):
        roll = rng.random()
        if roll < 0.35 or not live_advs:
            host = rng.choice(hosts)
            state = middleware.advertise(
                host, Advertisement(filter=workload.subscription().filter)
            )
            live_advs.append((host, state.adv_id))
        elif roll < 0.70:
            host = rng.choice(hosts)
            state = middleware.subscribe(host, workload.subscription())
            live_subs.append((host, state.sub_id))
        elif roll < 0.85 and live_subs:
            host, sub_id = live_subs.pop(rng.randrange(len(live_subs)))
            middleware.unsubscribe(host, sub_id)
        else:
            host, adv_id = live_advs.pop(rng.randrange(len(live_advs)))
            middleware.unadvertise(host, adv_id)
        reports.extend(verify_deployment(middleware))
    return reports


def _cmd_check(args: argparse.Namespace) -> int:
    import json

    if args.self_test:
        return _cmd_check_self_test(args)
    failures = 0
    documents = []
    for topology, mode in _check_scenarios(args):
        reports = _check_one_scenario(topology, mode, args)
        dirty = [report for report in reports if not report.ok]
        failures += len(dirty)
        label = f"{topology} [{mode}, partitions={args.partitions}]"
        if args.json:
            documents.append(
                {
                    "topology": topology,
                    "install_mode": mode,
                    "partitions": args.partitions,
                    "steps": args.steps,
                    "verifier_runs": len(reports),
                    "reports": [r.to_dict() for r in dirty],
                }
            )
        elif dirty:
            print(f"{label}: FAILED")
            for report in dirty:
                print(report.render())
        else:
            print(
                f"{label}: OK "
                f"({len(reports)} verifier runs over {args.steps} steps)"
            )
    if args.json:
        print(json.dumps({"ok": failures == 0, "scenarios": documents}))
    elif failures:
        print(f"check FAILED: {failures} dirty report(s)", file=sys.stderr)
    else:
        print("check OK: all scenarios verified clean")
    return 1 if failures else 0


def _cmd_check_self_test(args: argparse.Namespace) -> int:
    """Mutation-test the verifier: every fault class must be detected."""
    import json

    from repro.analysis.faults import FAULT_INJECTORS, inject_fault
    from repro.analysis.verify import verify_controller, verify_deployment

    topology = "paper-fat-tree" if args.topology == "all" else args.topology
    mode = "reconcile" if args.install_mode == "both" else args.install_mode
    workload = paper_uniform(dimensions=2, seed=args.seed)

    def fresh() -> Pleroma:
        rng = random.Random(args.seed)
        middleware = Pleroma(
            _topology(topology),
            space=workload.space,
            max_dz_length=12,
            install_mode=mode,
        )
        hosts = middleware.topology.hosts()
        for _ in range(4):
            middleware.advertise(
                rng.choice(hosts),
                Advertisement(filter=workload.subscription().filter),
            )
        for _ in range(6):
            middleware.subscribe(rng.choice(hosts), workload.subscription())
        return middleware

    baseline = verify_deployment(fresh())
    if any(not report.ok for report in baseline):
        print("self-test FAILED: baseline deployment is dirty", file=sys.stderr)
        for report in baseline:
            print(report.render(), file=sys.stderr)
        return 1
    results = []
    missed = 0
    for fault in sorted(FAULT_INJECTORS):
        middleware = fresh()
        controller = middleware.controllers[0]
        injection = inject_fault(controller, fault, seed=args.seed)
        report = verify_controller(controller)
        detected = sorted(injection.expected_kinds & report.kinds())
        results.append(
            {
                "fault": fault,
                "description": injection.description,
                "expected_kinds": sorted(injection.expected_kinds),
                "reported_kinds": sorted(report.kinds()),
                "detected": bool(detected),
            }
        )
        if not detected:
            missed += 1
    if args.json:
        print(json.dumps({"ok": missed == 0, "faults": results}))
    else:
        for result in results:
            status = "detected" if result["detected"] else "MISSED"
            print(
                f"{result['fault']}: {status} "
                f"(expected {'/'.join(result['expected_kinds'])}, "
                f"reported {'/'.join(result['reported_kinds']) or 'nothing'})"
            )
        if missed:
            print(
                f"self-test FAILED: {missed} fault class(es) undetected",
                file=sys.stderr,
            )
        else:
            print("self-test OK: every injected fault class was detected")
    return 1 if missed else 0


def _cmd_fpr(args: argparse.Namespace) -> int:
    from repro.analysis.fpr import assign_round_robin, evaluate_fpr

    make = paper_uniform if args.model == "uniform" else paper_zipfian
    workload = make(
        dimensions=args.dimensions, seed=args.seed, width_fraction=0.25
    )
    indexer = SpatialIndexer(
        workload.space, max_dz_length=args.dz_length, max_cells=256
    )
    assignment = assign_round_robin(
        workload.subscriptions(args.subscriptions), 8, indexer
    )
    report = evaluate_fpr(assignment, workload.events(args.events), indexer)
    print(
        f"model={args.model} subs={args.subscriptions} "
        f"dz={args.dz_length} dims={args.dimensions}: "
        f"FPR = {report.fpr_percent:.2f}% "
        f"({report.unwanted}/{report.delivered} deliveries unwanted)"
    )
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.core.events import EventSpace
    from repro.core.render import render_dz_tree, render_filter

    space = EventSpace.paper_schema(2)
    indexer = SpatialIndexer(
        space, max_dz_length=args.dz_length, max_cells=args.max_cells
    )
    filt = Filter.of(attr0=tuple(args.a), attr1=tuple(args.b))
    region = indexer.filter_to_dzset(filt)
    print(
        f"filter attr0={tuple(args.a)} attr1={tuple(args.b)} -> "
        f"{len(region)} dz cells"
    )
    print("legend: '#' filter, '+' approximation fringe, '.' outside\n")
    print(render_filter(indexer, filt, width=args.width, height=args.height))
    print("\ndz trie:")
    print(render_dz_tree(region))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import json

    from repro.obs.export import load_json, metrics_csv, render_report

    try:
        document = load_json(args.snapshot)
    except FileNotFoundError:
        print(f"error: no such snapshot: {args.snapshot}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(
            f"error: {args.snapshot} is not valid JSON: {exc}",
            file=sys.stderr,
        )
        return 2
    if not isinstance(document, dict):
        print(
            f"error: {args.snapshot} is not a snapshot document",
            file=sys.stderr,
        )
        return 2
    if args.csv:
        metrics = document.get("metrics", document)
        print(metrics_csv(metrics), end="")
    else:
        print(render_report(document), end="")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.paths import (
        analyze_flight,
        chrome_trace,
        render_link_hotness,
        render_timeline,
    )

    rng = random.Random(args.seed)
    middleware = Pleroma(paper_fat_tree(), dimensions=2, max_dz_length=12)
    recorder = middleware.enable_flight_recorder(
        sample_every=args.sample_every, seed=args.seed
    )
    publisher = middleware.publisher("h1")
    publisher.advertise(Filter.of())
    # Subscribers deliberately cover only part of the event space: events
    # in the uncovered band die as table-miss drops at the access switch,
    # so the forensics section always has something to attribute.
    for host, band in (("h4", (0, 340)), ("h6", (341, 680))):
        middleware.subscriber(host).subscribe(Filter.of(attr0=band))
    if args.fail_link:
        # kill a subscriber's access link *without* telling the controller:
        # a pure data-plane failure, visible only as link-down drops
        victim = middleware.topology.access_switch("h6")
        middleware.sim.schedule(
            args.events * 5e-4,
            middleware.network.link_between("h6", victim).fail,
        )
    for i in range(args.events):
        middleware.sim.schedule(
            i * 1e-3,
            middleware.publish,
            "h1",
            Event.of(attr0=rng.uniform(0, 1023), attr1=rng.uniform(0, 1023)),
        )
    middleware.run()

    report = analyze_flight(recorder, middleware.topology)
    summary = report.summary()
    stats = recorder.stats
    print(
        f"trace: {args.events} events, 1-in-{args.sample_every} sampling, "
        f"{stats.packets_sampled}/{stats.packets_seen} packets sampled, "
        f"{len(recorder)} hop records"
    )
    print(
        f"deliveries: {summary['deliveries']} "
        f"({summary['duplicates']} duplicate(s)), "
        f"drops: {summary['drops']}"
    )
    for reason, count in summary["drop_counts"].items():
        print(f"  {reason}: {count}")
    print("delay attribution (summed over deliveries):")
    for component, total in summary["delay_attribution_s"].items():
        print(f"  {component:<18} {total * 1e3:.4f} ms")
    if summary["mean_stretch"] is not None:
        print(
            f"path stretch: mean {summary['mean_stretch']:.4g}, "
            f"max {summary['max_stretch']:.4g}"
        )
    grouped = recorder.by_packet()
    for delivery in report.deliveries[: max(0, args.limit)]:
        delay = (
            f"{delivery.delay_s * 1e3:.3f} ms"
            if delivery.delay_s is not None
            else "incomplete"
        )
        stretch = (
            f", stretch {delivery.stretch:.2f}"
            if delivery.stretch is not None
            else ""
        )
        print(
            f"\npacket {delivery.packet_id} "
            f"({delivery.publisher or '?'} -> {delivery.host}, {delay}, "
            f"{delivery.hops} link(s){stretch}):"
        )
        print(render_timeline(grouped.get(delivery.packet_id, [])))
    print("\nper-link hotness (sampled packets per direction):")
    print(render_link_hotness(report.link_hotness))
    if args.out is not None:
        from repro.obs.export import write_json

        document = {
            "workload": {
                "events": args.events,
                "seed": args.seed,
                "sample_every": args.sample_every,
                "fail_link": bool(args.fail_link),
            },
            "report": report.to_dict(),
            "records": recorder.to_dicts(),
        }
        write_json(document, args.out)
        print(f"\ntrace written:      {args.out}")
    if args.chrome_out is not None:
        from repro.obs.export import write_json

        write_json(chrome_trace(recorder), args.chrome_out)
        print(f"chrome trace:       {args.chrome_out}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.obs.telemetry import reconcile_with_oracle

    rng = random.Random(args.seed)
    middleware = Pleroma(
        _topology(args.topology), dimensions=2, max_dz_length=12
    )
    poller, engine = middleware.enable_telemetry(
        period_s=args.period, top_k=args.top_k
    )
    hosts = sorted(middleware.topology.hosts())
    publisher = hosts[0]
    middleware.publisher(publisher).advertise(Filter.of())
    bands = ((0, 255), (256, 511), (512, 767), (768, 1023))
    for i, host in enumerate(hosts[1:]):
        middleware.subscriber(host).subscribe(
            Filter.of(attr0=bands[i % len(bands)])
        )
    for i in range(args.events):
        # cubing the uniform draw skews events toward low attr0 values, so
        # the first band's dz-subspaces dominate and heavy hitters emerge
        middleware.sim.schedule(
            i * 1e-3,
            middleware.publish,
            publisher,
            Event.of(
                attr0=rng.uniform(0.0, 1.0) ** 3 * 1023.0,
                attr1=rng.uniform(0.0, 1023.0),
            ),
        )
    middleware.run()
    # closing round: poll the final counter state, then reconcile — with
    # the network drained the polled view must agree with the oracle
    poller.poll_now()
    middleware.run()
    reconciliation = reconcile_with_oracle(poller, middleware.network)
    channel = poller.channel
    document = {
        "workload": {
            "topology": args.topology,
            "events": args.events,
            "seed": args.seed,
            "period_s": args.period,
        },
        "telemetry": poller.summary(),
        "alerts": engine.summary(),
        "reconciliation": reconciliation,
        "control_plane": {
            "messages_to_switches": channel.messages_to_switches(),
            "messages_to_controller": channel.messages_to_controller(),
            "bytes_to_switches": channel.bytes_to_switches(),
            "bytes_to_controller": channel.bytes_to_controller(),
        },
    }
    if args.out is not None:
        from repro.obs.export import write_json

        write_json(document, args.out)
    if args.prom is not None:
        from repro.obs.export import write_prometheus

        write_prometheus(middleware.obs.registry.snapshot(), args.prom)
    if args.json:
        print(json.dumps(document, sort_keys=True))
        return 0
    summary = document["telemetry"]
    cp = document["control_plane"]
    print(
        f"stats: {args.topology}, {args.events} events, seed {args.seed}, "
        f"poll period {args.period * 1e3:.1f} ms"
    )
    print(
        f"poll rounds: {summary['rounds_completed']} completed "
        f"({summary['rounds_started']} started)"
    )
    print(
        f"control plane: {cp['messages_to_switches']} requests / "
        f"{cp['messages_to_controller']} replies, "
        f"{cp['bytes_to_switches'] + cp['bytes_to_controller']} bytes"
    )
    print("heavy hitters (hottest dz-subspaces by polled rule counters):")
    for rank, hh in enumerate(summary["heavy_hitters"], 1):
        print(
            f"  #{rank} dz={hh['dz']:<14} packets={hh['packets']:<7} "
            f"peak rate={hh['peak_rate_pps']:.6g} pps"
        )
    print("per-switch polling:")
    for name, view in sorted(summary["switches"].items()):
        occupancy = (
            f"{view['occupancy']:.4g}"
            if view["occupancy"] is not None
            else "n/a"
        )
        churn = view["rule_churn"]
        print(
            f"  {name:<6} flows={view['flows']:<4} "
            f"polls={view['polls']:<3} occupancy={occupancy:<8} "
            f"churn=+{churn['added']}/-{churn['removed']}"
        )
    if summary["port_loss"]:
        print("inferred port loss:")
        for entry in summary["port_loss"]:
            print(
                f"  {entry['switch']} port {entry['port']}: "
                f"tx_dropped={entry['tx_dropped']} "
                f"loss={entry['loss_pps']:.6g} pps "
                f"skew={entry['skew_packets']}"
            )
    rec = document["reconciliation"]
    print(
        f"reconciliation vs oracle: max per-rule error "
        f"{rec['max_rule_error_packets']} packet(s), "
        f"view age {rec['max_age_s']:.6g} s"
    )
    alerts = document["alerts"]
    if alerts["history"]:
        print(f"alerts ({len(alerts['history'])} fired):")
        for alert in alerts["history"]:
            status = (
                "ACTIVE" if alert["cleared_at"] is None
                else f"cleared at {alert['cleared_at']:.6g} s"
            )
            print(
                f"  {alert['rule']} on {alert['series']}: "
                f"value {alert['value']:.6g} at "
                f"{alert['fired_at']:.6g} s ({status})"
            )
    else:
        print(
            f"alerts: none fired ({alerts['evaluations']} evaluation(s), "
            f"{len(alerts['rules'])} rule(s))"
        )
    if args.out is not None:
        print(f"stats written:      {args.out}")
    if args.prom is not None:
        print(f"prometheus export:  {args.prom}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.resilience.chaos import ChaosRunner, ChaosSchedule
    from repro.resilience.slo import build_slo_report

    topology = _CHAOS_TOPOLOGIES[args.topology]()
    middleware = Pleroma(topology, dimensions=2, max_dz_length=12)
    middleware.enable_flight_recorder(seed=args.seed)
    detector, orchestrator = middleware.enable_resilience(
        probe_period_s=args.probe_period,
        miss_threshold=args.miss_threshold,
        seed=args.seed,
    )
    schedule = ChaosSchedule.generate(topology, seed=args.seed)

    # steady full-space workload: one publisher, every other host listening,
    # publishing twice per probe period so the delivery stream brackets every
    # blackout tightly
    hosts = sorted(middleware.topology.hosts())
    publisher, listeners = hosts[0], hosts[1:]
    middleware.publisher(publisher).advertise(Filter.of())
    for host in listeners:
        middleware.subscriber(host).subscribe(Filter.of())
    interval = detector.period_s / 2.0
    count = max(1, int(schedule.horizon / interval) - 2)
    middleware.publish_stream(
        publisher,
        (Event.of(attr0=1.0, attr1=1.0) for _ in range(count)),
        rate_eps=1.0 / interval,
        start_at=0.0,
    )

    runner = ChaosRunner(middleware, schedule, detector, orchestrator)
    runner.run()
    report = middleware.flight_report()
    slo = build_slo_report(middleware, schedule, detector, orchestrator, report)
    if args.out is not None:
        from repro.obs.export import write_json

        write_json(slo, args.out)
    if args.json:
        print(json.dumps(slo, sort_keys=True))
    else:
        print(
            f"chaos: {args.topology}, seed {args.seed}, "
            f"{len(schedule.actions)} episode(s), "
            f"horizon {schedule.horizon * 1e3:.0f} ms"
        )
        for episode in slo["episodes"]:
            action = episode["action"]
            detection = episode["detection"]["latency_s"]
            repair = episode["repair"]
            blackout = episode["blackout"]
            detected = (
                f"{detection * 1e3:.2f} ms" if detection is not None else "n/a"
            )
            gap = blackout["worst_gap_s"]
            gap_text = f"{gap * 1e3:.2f} ms" if gap is not None else "n/a"
            print(
                f"  {action['kind']:<13} t={action['at'] * 1e3:.0f} ms: "
                f"detected {detected}, "
                f"{repair['passes']} repair(s) "
                f"({repair['flow_mods']} flow mods, "
                f"{repair['latency_s'] * 1e3:.2f} ms modeled), "
                f"lost {blackout['packets_lost']}, "
                f"worst gap {gap_text}, "
                f"verifier {'ok' if repair['verifier_ok'] else 'DIRTY'}"
                + (
                    f" ({repair['transient_dirty_passes']} transient dirty"
                    " pass(es))"
                    if repair["transient_dirty_passes"]
                    else ""
                )
            )
        continuity = slo["continuity"]
        final = slo["final"]
        print(
            f"continuity: {continuity['delivered']} deliveries of "
            f"{continuity['published']} published"
        )
        print(
            f"final: verifier {'ok' if final['verifier_ok'] else 'DIRTY'} "
            f"({final['violations']} violation(s)), "
            f"{final['repair_passes']} repair pass(es), "
            f"{final['clients_suspended']} client(s) still suspended"
        )
        if args.out is not None:
            print(f"slo report written: {args.out}")
    return 0 if slo["final"]["verifier_ok"] else 1


_COMMANDS = {
    "info": _cmd_info,
    "demo": _cmd_demo,
    "soak": _cmd_soak,
    "check": _cmd_check,
    "fpr": _cmd_fpr,
    "render": _cmd_render,
    "report": _cmd_report,
    "trace": _cmd_trace,
    "stats": _cmd_stats,
    "chaos": _cmd_chaos,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
