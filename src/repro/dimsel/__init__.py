"""Dimension selection: spectral choice of the attributes to index."""

from repro.dimsel.monitor import TrafficMonitor
from repro.dimsel.selection import (
    DimensionSelection,
    build_match_matrix,
    select_dimensions,
)

__all__ = [
    "DimensionSelection",
    "build_match_matrix",
    "select_dimensions",
    "TrafficMonitor",
]
