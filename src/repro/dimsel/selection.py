"""Dimension selection by spectral analysis (Sec. 5).

The length of dz-expressions grows linearly with the number of indexed
attributes, so PLEROMA indexes only a subset Omega_D chosen for its ability
to avoid disseminating unnecessary messages.  The selection pipeline:

1. For the last ``n`` events ``E^t`` and each dimension ``d``, count the
   subscriptions the event matches *along d alone*; this yields the matrix
   ``W`` (|Omega| x |E^t|) with ``w_ij = |S_i^{e_j}|``.
2. Centre ``W`` by subtracting its row means from the columns, and form the
   covariance matrix ``C = W~ W~^T`` capturing cross-dimension correlation
   of the traffic consumed by subscriptions.
3. Eigendecompose ``C = Q Λ Q^T``; the eigenvector ``q`` with the largest
   eigenvalue spans the direction of maximal variance.
4. Rank the original dimensions by the magnitude of their coefficient in
   ``q`` (the PCA-based feature selection of Malhi & Gao [18]) and keep the
   first ``k`` whose cumulative magnitude share exceeds an
   administrator-defined threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.events import Event, EventSpace
from repro.core.subscription import Subscription
from repro.exceptions import SchemaError, WorkloadError

__all__ = [
    "DimensionSelection",
    "build_match_matrix",
    "select_dimensions",
]


@dataclass(frozen=True)
class DimensionSelection:
    """The outcome of one selection round."""

    ranked: tuple[str, ...]
    selected: tuple[str, ...]
    scores: dict[str, float]
    eigenvalues: tuple[float, ...]
    threshold: float

    @property
    def k(self) -> int:
        return len(self.selected)


def build_match_matrix(
    space: EventSpace,
    subscriptions: Sequence[Subscription],
    events: Sequence[Event],
) -> np.ndarray:
    """The matrix ``W``: rows = dimensions, columns = events,
    ``W[i, j]`` = number of subscriptions event ``j`` matches along
    dimension ``i`` alone."""
    if not subscriptions:
        raise WorkloadError("dimension selection needs subscriptions")
    if not events:
        raise WorkloadError("dimension selection needs an event window")
    w = np.zeros((space.dimensions, len(events)), dtype=float)
    for i, name in enumerate(space.names):
        for j, event in enumerate(events):
            w[i, j] = sum(
                1
                for sub in subscriptions
                if sub.filter.matches_along(name, event)
            )
    return w


def select_dimensions(
    space: EventSpace,
    subscriptions: Sequence[Subscription],
    events: Sequence[Event],
    threshold: float = 0.75,
    k: int | None = None,
) -> DimensionSelection:
    """Pick the dimensions to index (Omega_D).

    ``threshold`` is the administrator-defined cumulative-magnitude cutoff
    on the leading eigenvector's coefficients; alternatively a fixed ``k``
    can be forced (used by the Fig. 7e sweep).
    """
    if not 0.0 < threshold <= 1.0:
        raise WorkloadError(f"threshold must be in (0, 1], got {threshold}")
    if k is not None and not 1 <= k <= space.dimensions:
        raise SchemaError(
            f"k must be in 1..{space.dimensions}, got {k}"
        )
    w = build_match_matrix(space, subscriptions, events)
    centred = w - w.mean(axis=1, keepdims=True)
    covariance = centred @ centred.T
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    # eigh returns ascending order; the leading eigenvector is the last
    leading = eigenvectors[:, -1]
    magnitudes = np.abs(leading)
    total = float(magnitudes.sum())
    if total == 0.0 or float(eigenvalues[-1]) <= 1e-12:
        # no variance anywhere: fall back to schema order
        magnitudes = np.ones(space.dimensions)
        total = float(space.dimensions)
    order = sorted(
        range(space.dimensions),
        key=lambda i: (-magnitudes[i], space.names[i]),
    )
    ranked = tuple(space.names[i] for i in order)
    scores = {space.names[i]: float(magnitudes[i]) for i in order}
    if k is None:
        cumulative = 0.0
        k = 0
        for i in order:
            cumulative += magnitudes[i] / total
            k += 1
            if cumulative >= threshold:
                break
    return DimensionSelection(
        ranked=ranked,
        selected=ranked[:k],
        scores=scores,
        eigenvalues=tuple(float(v) for v in eigenvalues[::-1]),
        threshold=threshold,
    )
