"""Traffic monitoring and periodic re-selection of dimensions (Sec. 5).

"In order to adapt to the changes, a controller periodically collects
information about the events disseminated (in the recent time window) by
the publishers and repeats the dimension selection process."  The monitor
keeps a bounded window of recent events, and on demand (or on a period)
re-runs :func:`~repro.dimsel.selection.select_dimensions`, re-indexes the
controller over the reduced space, and notifies registered publishers so
future events are stamped with the correct dz.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Sequence

from repro.core.events import Event, EventSpace
from repro.core.spatial_index import SpatialIndexer
from repro.core.subscription import Subscription
from repro.dimsel.selection import DimensionSelection, select_dimensions
from repro.exceptions import WorkloadError

__all__ = ["TrafficMonitor"]

ReindexCallback = Callable[[SpatialIndexer, DimensionSelection], None]


class TrafficMonitor:
    """Sliding window of published events + re-selection driver."""

    def __init__(
        self,
        space: EventSpace,
        window_size: int = 1000,
        threshold: float = 0.75,
        max_dz_length: int | None = None,
    ) -> None:
        if window_size < 1:
            raise WorkloadError("window size must be >= 1")
        self.space = space
        self.threshold = threshold
        self.max_dz_length = max_dz_length
        self._window: deque[Event] = deque(maxlen=window_size)
        self._callbacks: list[ReindexCallback] = []
        self.last_selection: DimensionSelection | None = None
        self.rounds = 0

    # ------------------------------------------------------------------
    def record_event(self, event: Event) -> None:
        """Add one published event to the recent-traffic window."""
        self._window.append(event)

    @property
    def window(self) -> tuple[Event, ...]:
        return tuple(self._window)

    def on_reselect(self, callback: ReindexCallback) -> None:
        """Register a hook fired after each selection round (publishers use
        this to learn the new indexing)."""
        self._callbacks.append(callback)

    # ------------------------------------------------------------------
    def reselect(
        self,
        subscriptions: Sequence[Subscription],
        k: int | None = None,
    ) -> DimensionSelection:
        """Run one selection round over the current window.

        Returns the selection and fires the registered callbacks with a
        new :class:`SpatialIndexer` over the restricted space.
        """
        if not self._window:
            raise WorkloadError("no events recorded yet")
        selection = select_dimensions(
            self.space,
            subscriptions,
            list(self._window),
            threshold=self.threshold,
            k=k,
        )
        reduced = self.space.restrict(selection.selected)
        indexer = (
            SpatialIndexer(reduced, max_dz_length=self.max_dz_length)
            if self.max_dz_length is not None
            else SpatialIndexer(reduced)
        )
        self.last_selection = selection
        self.rounds += 1
        for callback in self._callbacks:
            callback(indexer, selection)
        return selection
