"""In-band telemetry: OpenFlow statistics polling without oracle access.

Every probe in :mod:`repro.obs.samplers` reads switch and link internals
directly — an oracle view no real PLEROMA controller has.  This module is
the controller-side counterpart a production deployment would run: a
:class:`StatsPoller` that periodically sends ``FlowStatsRequest`` /
``PortStatsRequest`` / ``TableStatsRequest`` messages over the ordinary
control channel (consuming modeled control-plane bandwidth, sharing the
per-switch FIFO with flow-mods and packet-ins) and reconstructs the
data-plane state from the replies alone.

On top of the polled series the poller derives:

* **heavy hitters** — the hottest dz-subspaces by per-rule packet counters
  (max across switches, so multi-hop trees are not double-counted);
* **rule churn** — installs/removals/modifies per switch between polls,
  from the identity set of the polled rules;
* **TCAM occupancy trends** — per-switch occupancy history from table
  stats;
* **port loss inference** — ``tx_dropped`` deltas per port, plus the
  tx-vs-peer-rx polling skew.

All derived series land in the shared
:class:`~repro.obs.registry.MetricsRegistry` (``telemetry.*`` names), so
the :class:`~repro.obs.alerts.AlertEngine` can evaluate rules over them
and every exporter sees them.  :func:`reconcile_with_oracle` — the one
deliberately oracle-using function here, for evaluation only — quantifies
how stale/wrong the polled view is versus the ground truth.

The poller is traffic-driven like every sampler in this codebase: it
pauses after a poll round in which no publish poked it, so draining the
simulator terminates, and re-arms on the next poke.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from collections.abc import Callable

from repro.core.addressing import prefix_to_dz
from repro.network.openflow import (
    ErrorMessage,
    FlowStatsEntry,
    FlowStatsReply,
    FlowStatsRequest,
    OpenFlowMessage,
    PortStatsEntry,
    PortStatsReply,
    PortStatsRequest,
    TableStatsReply,
    TableStatsRequest,
)
from repro.obs.registry import MetricsRegistry

__all__ = ["StatsPoller", "SwitchTelemetry", "reconcile_with_oracle"]

#: (prefix_len, network) — how polled rules are keyed; cookie changes on
#: MODIFY, the match field is the rule's stable identity.
RuleKey = tuple[int, int]


@dataclass
class SwitchTelemetry:
    """The polled (no-oracle) view of one switch."""

    name: str
    polls: int = 0
    poll_errors: int = 0
    # flow stats: current and previous reply, with their receive times
    flows: dict[RuleKey, FlowStatsEntry] = field(default_factory=dict)
    prev_flows: dict[RuleKey, FlowStatsEntry] = field(default_factory=dict)
    flows_at: float | None = None
    prev_flows_at: float | None = None
    # port stats
    ports: dict[int, PortStatsEntry] = field(default_factory=dict)
    prev_ports: dict[int, PortStatsEntry] = field(default_factory=dict)
    ports_at: float | None = None
    prev_ports_at: float | None = None
    # table stats + occupancy trend (time, active_count) samples
    table: TableStatsReply | None = None
    occupancy_history: deque = field(
        default_factory=lambda: deque(maxlen=256)
    )
    # cumulative rule churn derived from consecutive flow replies
    rules_added: int = 0
    rules_removed: int = 0
    last_rtt_s: float | None = None

    def flow_window_s(self) -> float | None:
        """Duration between the two latest flow-stats replies."""
        if self.flows_at is None or self.prev_flows_at is None:
            return None
        return self.flows_at - self.prev_flows_at


class StatsPoller:
    """Polls switches for OpenFlow statistics on the sim-time engine.

    ``targets`` defaults to every switch connected to ``channel``;
    ``port_peers`` maps ``(switch, port)`` to ``(peer, peer_port,
    peer_is_switch)`` — wiring knowledge a controller legitimately has
    from topology configuration, used for loss/skew attribution.
    """

    def __init__(
        self,
        sim,
        channel,
        registry: MetricsRegistry,
        period_s: float = 0.01,
        targets: list[str] | None = None,
        port_peers: dict[tuple[str, int], tuple[str, int, bool]] | None = None,
        top_k: int = 5,
    ) -> None:
        if period_s <= 0:
            raise ValueError("polling period must be positive")
        self.sim = sim
        self.channel = channel
        self.registry = registry
        self.period_s = period_s
        self.top_k = top_k
        self._targets: list[str] = sorted(
            channel.connected_switches() if targets is None else targets
        )
        self.port_peers = dict(port_peers or {})
        self.views: dict[str, SwitchTelemetry] = {
            name: SwitchTelemetry(name=name) for name in self._targets
        }
        # round bookkeeping
        self.ticks = 0
        self.rounds_started = 0
        self.rounds_completed = 0
        self._pending: dict[int, tuple[int, str, float]] = {}
        self._outstanding: dict[int, int] = {}
        # latest derived analytics (rebuilt at each round completion)
        self.heavy_hitters: list[dict] = []
        self.port_loss: list[dict] = []
        self._peak_rates: dict[str, float] = {}
        #: called as listener(now) after each completed poll round —
        #: the alert engine subscribes here.
        self.round_listeners: list[Callable[[float], None]] = []
        self._handle = None
        self._started = False
        self._traffic_since_arm = False
        channel.reply_listeners.append(self._on_reply)

    # ------------------------------------------------------------------
    # sampler lifecycle (poke/pause like PeriodicSampler)
    # ------------------------------------------------------------------
    def start(self) -> "StatsPoller":
        self._started = True
        if self._handle is None:
            self._arm()
        return self

    def stop(self) -> None:
        self._started = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def poke(self) -> None:
        """Note data-plane traffic; re-arms a poller paused by quiet."""
        if not self._started:
            return
        if self._handle is None:
            self._arm()
        else:
            self._traffic_since_arm = True

    @property
    def running(self) -> bool:
        return self._handle is not None

    def _arm(self) -> None:
        self._traffic_since_arm = False
        self._handle = self.sim.schedule(self.period_s, self._tick)

    def _tick(self) -> None:
        self._handle = None
        self.ticks += 1
        # Always poll — the closing round still captures the quiet tail —
        # but only re-arm when traffic arrived during the last window, so
        # draining the event queue terminates.
        self.poll_now()
        if self._traffic_since_arm:
            self._arm()

    # ------------------------------------------------------------------
    # polling
    # ------------------------------------------------------------------
    def poll_now(self) -> int:
        """Start one poll round immediately; returns its round id.

        Sends the three stats requests to every target over the control
        channel — each one byte-accounted and FIFO-ordered with whatever
        other control traffic the channel carries.
        """
        self.rounds_started += 1
        round_id = self.rounds_started
        self._outstanding[round_id] = 3 * len(self._targets)
        sent_at = self.sim.now
        for name in self._targets:
            for request in (
                FlowStatsRequest(),
                PortStatsRequest(),
                TableStatsRequest(),
            ):
                self._pending[request.xid] = (round_id, name, sent_at)
                self.channel.send(name, request)
            self.registry.counter("telemetry.polls", switch=name).inc()
        return round_id

    # ------------------------------------------------------------------
    # reply ingestion
    # ------------------------------------------------------------------
    def _on_reply(self, switch_name: str, message: OpenFlowMessage) -> None:
        xid = (
            message.failed_xid
            if isinstance(message, ErrorMessage)
            else message.xid
        )
        info = self._pending.pop(xid, None)
        if info is None:
            return  # someone else's reply on a shared channel
        round_id, name, sent_at = info
        now = self.sim.now
        view = self.views[name]
        if isinstance(message, ErrorMessage):
            view.poll_errors += 1
            self.registry.counter("telemetry.poll_errors", switch=name).inc()
        else:
            view.last_rtt_s = now - sent_at
            self.registry.gauge("telemetry.poll_rtt_s", switch=name).set(
                view.last_rtt_s
            )
            if isinstance(message, FlowStatsReply):
                self._ingest_flows(view, message, now)
            elif isinstance(message, PortStatsReply):
                self._ingest_ports(view, message, now)
            elif isinstance(message, TableStatsReply):
                self._ingest_table(view, message, now)
        remaining = self._outstanding.get(round_id)
        if remaining is None:
            return
        if remaining <= 1:
            del self._outstanding[round_id]
            self._complete_round(now)
        else:
            self._outstanding[round_id] = remaining - 1

    def _ingest_flows(
        self, view: SwitchTelemetry, reply: FlowStatsReply, now: float
    ) -> None:
        view.polls += 1
        view.prev_flows, view.prev_flows_at = view.flows, view.flows_at
        view.flows = {
            (e.match.prefix_len, e.match.network): e for e in reply.entries
        }
        view.flows_at = now
        # churn: the identity triple includes the cookie, so a MODIFY
        # (new cookie, same match) counts as one removal + one install
        current = {
            (key, e.cookie) for key, e in view.flows.items()
        }
        previous = {
            (key, e.cookie) for key, e in view.prev_flows.items()
        }
        added = len(current - previous)
        removed = len(previous - current)
        if view.prev_flows_at is not None and (added or removed):
            view.rules_added += added
            view.rules_removed += removed
            self.registry.counter(
                "telemetry.rule_churn", switch=view.name
            ).inc(added + removed)

    def _ingest_ports(
        self, view: SwitchTelemetry, reply: PortStatsReply, now: float
    ) -> None:
        view.prev_ports, view.prev_ports_at = view.ports, view.ports_at
        view.ports = {p.port: p for p in reply.ports}
        view.ports_at = now

    def _ingest_table(
        self, view: SwitchTelemetry, reply: TableStatsReply, now: float
    ) -> None:
        view.table = reply
        view.occupancy_history.append((now, reply.active_count))
        occupancy = (
            reply.active_count / reply.capacity if reply.capacity else 0.0
        )
        self.registry.gauge(
            "telemetry.tcam_occupancy", switch=view.name
        ).set(occupancy)
        self.registry.gauge(
            "telemetry.flow_entries", switch=view.name
        ).set(float(reply.active_count))

    # ------------------------------------------------------------------
    # derived analytics
    # ------------------------------------------------------------------
    def _complete_round(self, now: float) -> None:
        self.rounds_completed += 1
        self.registry.counter("telemetry.poll_rounds").inc()
        self._update_heavy_hitters()
        self._update_port_loss()
        for listener in self.round_listeners:
            listener(now)

    def _update_heavy_hitters(self) -> None:
        """Rank dz-subspaces by polled rule counters.

        Per dz the value is the *maximum* over switches (every switch of
        a delivery tree counts the same event once; summing would scale
        with tree depth, not workload).
        """
        packets: dict[str, int] = {}
        rates: dict[str, float] = {}
        for name in self._targets:
            view = self.views[name]
            window = view.flow_window_s()
            for key, entry in view.flows.items():
                dz = str(prefix_to_dz(entry.match))
                if entry.packet_count > packets.get(dz, -1):
                    packets[dz] = entry.packet_count
                if window:
                    prev = view.prev_flows.get(key)
                    delta = entry.packet_count - (
                        prev.packet_count if prev is not None else 0
                    )
                    rate = delta / window
                    if rate > rates.get(dz, -1.0):
                        rates[dz] = rate
        for dz in sorted(packets):
            rate = rates.get(dz, 0.0)
            if rate > self._peak_rates.get(dz, 0.0):
                self._peak_rates[dz] = rate
            self.registry.gauge(
                "telemetry.subspace_packets", dz=dz
            ).set(float(packets[dz]))
            self.registry.gauge(
                "telemetry.subspace_rate_pps", dz=dz
            ).set(rate)
        ranked = sorted(
            packets, key=lambda dz: (-packets[dz], dz)
        )[: self.top_k]
        self.heavy_hitters = [
            {
                "dz": dz,
                "packets": packets[dz],
                "rate_pps": rates.get(dz, 0.0),
                "peak_rate_pps": self._peak_rates.get(dz, 0.0),
            }
            for dz in ranked
        ]

    def _update_port_loss(self) -> None:
        """Loss/skew inference from per-port counter deltas.

        Real loss appears as ``tx_dropped`` growth; the tx-vs-peer-rx
        difference measures polling skew (the two switches were polled at
        slightly different sim times), bounded by one polling window of
        traffic — quantified rather than hidden.
        """
        report: list[dict] = []
        for name in self._targets:
            view = self.views[name]
            window = (
                view.ports_at - view.prev_ports_at
                if view.ports_at is not None
                and view.prev_ports_at is not None
                else None
            )
            for port in sorted(view.ports):
                entry = view.ports[port]
                prev = view.prev_ports.get(port)
                dropped_delta = entry.tx_dropped - (
                    prev.tx_dropped if prev is not None else 0
                )
                loss_pps = (
                    dropped_delta / window
                    if window and prev is not None
                    else 0.0
                )
                self.registry.gauge(
                    "telemetry.port_loss_pps", port=str(port), switch=name
                ).set(loss_pps)
                self.registry.gauge(
                    "telemetry.port_tx_dropped", port=str(port), switch=name
                ).set(float(entry.tx_dropped))
                peer = self.port_peers.get((name, port))
                skew = None
                if peer is not None and peer[2]:
                    peer_view = self.views.get(peer[0])
                    if peer_view is not None:
                        peer_entry = peer_view.ports.get(peer[1])
                        if peer_entry is not None:
                            skew = entry.tx_packets - peer_entry.rx_packets
                if entry.tx_dropped or (skew is not None and skew != 0):
                    report.append(
                        {
                            "switch": name,
                            "port": port,
                            "peer": peer[0] if peer is not None else None,
                            "tx_dropped": entry.tx_dropped,
                            "loss_pps": loss_pps,
                            "skew_packets": skew,
                        }
                    )
        self.port_loss = report

    # ------------------------------------------------------------------
    # read-out
    # ------------------------------------------------------------------
    def occupancy_trend(self, switch: str) -> list[tuple[float, int]]:
        """(time, active_count) samples of one switch's table stats."""
        return list(self.views[switch].occupancy_history)

    def summary(self) -> dict:
        """Deterministic JSON-compatible digest of the polled state."""
        switches = {}
        for name in self._targets:
            view = self.views[name]
            table = view.table
            switches[name] = {
                "polls": view.polls,
                "poll_errors": view.poll_errors,
                "flows": len(view.flows),
                "flows_at": view.flows_at,
                "rtt_s": view.last_rtt_s,
                "occupancy": (
                    table.active_count / table.capacity
                    if table is not None and table.capacity
                    else None
                ),
                "lookups": table.lookup_count if table is not None else None,
                "matched": (
                    table.matched_count if table is not None else None
                ),
                "rule_churn": {
                    "added": view.rules_added,
                    "removed": view.rules_removed,
                },
            }
        return {
            "period_s": self.period_s,
            "ticks": self.ticks,
            "rounds_started": self.rounds_started,
            "rounds_completed": self.rounds_completed,
            "switches": switches,
            "heavy_hitters": self.heavy_hitters,
            "port_loss": self.port_loss,
        }


# ----------------------------------------------------------------------
# evaluation-only oracle comparison
# ----------------------------------------------------------------------
def reconcile_with_oracle(poller: StatsPoller, network) -> dict:
    """Quantify staleness/error of the polled view vs the ground truth.

    This is the *evaluation harness* for the telemetry subsystem — the
    only place the poller's data meets oracle reads of switch internals.
    The poller itself never touches ``network``.

    Per switch: the polled per-rule packet counts against the live
    :class:`~repro.network.flow.FlowStats`, the polled-view age, and the
    worst per-rule error.  The acceptance bound is one polling window:
    every discrepancy must be attributable to traffic after the last
    poll.
    """
    now = network.sim.now
    switches: dict[str, dict] = {}
    max_error = 0
    max_age = 0.0
    for name in sorted(poller.views):
        view = poller.views[name]
        switch = network.switches[name]
        oracle = {
            (entry.match.prefix_len, entry.match.network): stats.packets
            for entry, stats in switch.table.entries_with_stats()
        }
        polled = {key: e.packet_count for key, e in view.flows.items()}
        keys = set(oracle) | set(polled)
        worst = max(
            (
                abs(oracle.get(key, 0) - polled.get(key, 0))
                for key in keys
            ),
            default=0,
        )
        age = now - view.flows_at if view.flows_at is not None else None
        switches[name] = {
            "rules_polled": len(polled),
            "rules_oracle": len(oracle),
            "packets_polled": sum(polled.values()),
            "packets_oracle": sum(oracle.values()),
            "max_rule_error_packets": worst,
            "age_s": age,
        }
        max_error = max(max_error, worst)
        if age is not None:
            max_age = max(max_age, age)
    return {
        "switches": switches,
        "max_rule_error_packets": max_error,
        "max_age_s": max_age,
    }
