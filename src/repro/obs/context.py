"""The per-deployment observability bundle.

One :class:`Observability` object is created per deployment (the
``Pleroma`` facade makes one and threads it through the fabric, the
controllers, the federation and the metrics collector).  It owns the
metrics registry, the tracer and any periodic samplers, and renders the
whole lot into a single snapshot document.

Live bundles are tracked in a weak set so the benchmark harness
(``benchmarks/conftest.py``) can export whatever registries a benchmark
created without plumbing handles through every fixture.
"""

from __future__ import annotations

import weakref

from repro.obs.flight import FlightRecorder
from repro.obs.registry import MetricsRegistry
from repro.obs.samplers import (
    LinkUtilizationProbe,
    PeriodicSampler,
    TcamOccupancyProbe,
)
from repro.obs.trace import Tracer

__all__ = ["Observability", "live_observabilities"]

_live: "weakref.WeakSet[Observability]" = weakref.WeakSet()


def live_observabilities() -> list["Observability"]:
    """Every bundle still alive, in creation order."""
    return sorted(_live, key=lambda obs: obs._serial)


class Observability:
    """Registry + tracer + samplers for one deployment."""

    _next_serial = 0

    def __init__(self, sim, registry: MetricsRegistry | None = None) -> None:
        self.sim = sim
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = Tracer(clock=lambda: sim.now)
        self.samplers: list[PeriodicSampler] = []
        self.flight: FlightRecorder | None = None
        self._flight_network = None
        # in-band telemetry (repro.obs.telemetry / repro.obs.alerts);
        # populated by attach_telemetry, typically via
        # Pleroma.enable_telemetry
        self.telemetry = None
        self.alerts = None
        Observability._next_serial += 1
        self._serial = Observability._next_serial
        _live.add(self)

    # ------------------------------------------------------------------
    # samplers
    # ------------------------------------------------------------------
    def start_sampling(self, network, period_s: float) -> PeriodicSampler:
        """Begin periodic link-utilization and TCAM-occupancy sampling."""
        sampler = PeriodicSampler(
            self.sim,
            period_s,
            [
                LinkUtilizationProbe(network, self.registry),
                TcamOccupancyProbe(network, self.registry),
            ],
        )
        self.samplers.append(sampler)
        return sampler.start()

    def poke_samplers(self) -> None:
        """Re-arm samplers paused by a quiet period (call on traffic)."""
        for sampler in self.samplers:
            sampler.poke()

    def stop_sampling(self) -> None:
        for sampler in self.samplers:
            sampler.stop()

    # ------------------------------------------------------------------
    # in-band telemetry
    # ------------------------------------------------------------------
    def attach_telemetry(self, poller, engine=None) -> None:
        """Register a started :class:`~repro.obs.telemetry.StatsPoller`
        (and optionally an :class:`~repro.obs.alerts.AlertEngine`) with
        this bundle.

        The poller joins the sampler list so traffic pokes re-arm it, and
        the engine (if any) is subscribed to completed poll rounds.  The
        snapshot document then grows ``telemetry`` / ``alerts`` sections.
        """
        self.telemetry = poller
        self.alerts = engine
        if poller not in self.samplers:
            self.samplers.append(poller)
        if engine is not None:
            poller.round_listeners.append(engine.evaluate)

    # ------------------------------------------------------------------
    # data-plane flight recorder
    # ------------------------------------------------------------------
    def enable_flight(
        self,
        network,
        sample_every: int = 1,
        capacity: int = 65_536,
        seed: int = 0,
    ) -> FlightRecorder:
        """Attach a data-plane flight recorder to every device of
        ``network`` (idempotent: re-enabling replaces the recorder)."""
        sim = self.sim
        self.flight = FlightRecorder(
            clock=lambda: sim.now,
            sample_every=sample_every,
            capacity=capacity,
            seed=seed,
        )
        self._flight_network = network
        network.attach_flight_recorder(self.flight)
        return self.flight

    def disable_flight(self) -> None:
        """Detach the flight recorder (records are discarded)."""
        if self._flight_network is not None:
            self._flight_network.attach_flight_recorder(None)
        self.flight = None
        self._flight_network = None

    def flight_report(self):
        """Path analytics over the recorded hop histories."""
        from repro.obs.paths import analyze_flight

        if self.flight is None:
            raise ValueError("no flight recorder enabled")
        topology = (
            self._flight_network.topology
            if self._flight_network is not None
            else None
        )
        return analyze_flight(self.flight, topology)

    # ------------------------------------------------------------------
    # snapshotting
    # ------------------------------------------------------------------
    def snapshot(self, include_spans: bool = True) -> dict:
        """The full observability state as a JSON-compatible document."""
        flight_summary = None
        if self.flight is not None:
            report = self.flight_report()
            # summary gauges land in the registry before it is rendered
            report.record_gauges(self.registry)
            flight_summary = report.summary()
        document = {
            "sim_time_s": self.sim.now,
            "metrics": self.registry.snapshot(),
            "trace_summary": self.tracer.summary(),
        }
        if flight_summary is not None:
            document["flight"] = flight_summary
        if self.telemetry is not None:
            document["telemetry"] = self.telemetry.summary()
        if self.alerts is not None:
            document["alerts"] = self.alerts.summary()
        if include_spans:
            document["spans"] = self.tracer.to_dicts()
        return document

    def __repr__(self) -> str:
        return (
            f"Observability({self.registry!r}, {self.tracer!r}, "
            f"{len(self.samplers)} sampler(s))"
        )
