"""The metrics registry: named counters, gauges and sim-time histograms.

Components register instruments once (at construction) and mutate them on
the hot path; the registry renders a deterministic snapshot on demand.
Instruments are identified by a metric name plus a sorted label set, e.g.
``switch.packets_received{switch=R1}`` — the flat naming production SDN
controllers expose, so a run summary can be grepped and diffed.

Determinism contract: snapshots never contain wall-clock quantities, and
every mapping is emitted in sorted key order, so equal runs serialise to
byte-identical JSON regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DELAY_BUCKETS_S",
    "OCCUPANCY_BUCKETS",
]

#: Fixed bucket edges (seconds) for end-to-end and control-plane delays:
#: 100 us .. 1 s in 1-2.5-5 steps, bracketing the paper's ~1 ms regime.
DELAY_BUCKETS_S: tuple[float, ...] = (
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1.0,
)

#: Fixed bucket edges for occupancy/utilization fractions.
OCCUPANCY_BUCKETS: tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A fixed-bucket histogram of sim-time observations.

    ``edges`` are the inclusive upper bounds of the first ``len(edges)``
    buckets; one overflow bucket catches everything above the last edge.
    Fixed edges keep snapshots of different runs structurally comparable.
    """

    __slots__ = ("edges", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, edges: Iterable[float]) -> None:
        self.edges = tuple(sorted(edges))
        if not self.edges:
            raise ValueError("histogram needs at least one bucket edge")
        self.bucket_counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def reset(self) -> None:
        """Zero in place so held references stay valid across resets."""
        self.bucket_counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-edge estimate of the q-quantile (1.0 past the last edge
        returns the observed maximum)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for edge, n in zip(self.edges, self.bucket_counts):
            seen += n
            if seen >= target:
                return edge
        return self.max if self.max is not None else self.edges[-1]

    def snapshot(self) -> dict:
        return {
            "edges": list(self.edges),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }


def _key(name: str, labels: Mapping[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create home for every instrument of one deployment."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        return self._counters.setdefault(_key(name, labels), Counter())

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._gauges.setdefault(_key(name, labels), Gauge())

    def histogram(
        self,
        name: str,
        edges: Iterable[float] = DELAY_BUCKETS_S,
        **labels: str,
    ) -> Histogram:
        key = _key(name, labels)
        found = self._histograms.get(key)
        if found is None:
            found = self._histograms[key] = Histogram(edges)
        return found

    # ------------------------------------------------------------------
    def gauge_values(self, name: str) -> dict[str, float]:
        """Current value of every gauge series of one metric name, keyed
        by the full instrument key, in sorted order.

        The alert engine evaluates its rules over these series: a rule
        names a metric, and every label set of that metric is one
        independently tracked series.
        """
        prefix = name + "{"
        return {
            key: self._gauges[key].value
            for key in sorted(self._gauges)
            if key == name or key.startswith(prefix)
        }

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero every counter and histogram (gauges keep their last value).

        Used by ``Network.reset_counters`` to open a fresh measurement
        window after warm-up, mirroring the paper's steady-state runs.
        """
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-compatible dump with deterministically sorted keys."""
        return {
            "counters": {
                k: self._counters[k].value for k in sorted(self._counters)
            },
            "gauges": {
                k: self._gauges[k].value for k in sorted(self._gauges)
            },
            "histograms": {
                k: self._histograms[k].snapshot()
                for k in sorted(self._histograms)
            },
        }

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, "
            f"{len(self._histograms)} histograms)"
        )
