"""The data-plane flight recorder: per-packet hop histories.

PR 1's control-plane spans can explain what the *controller* did to a
request, but not why one delivered event took 4.2 ms or which switch ate a
packet.  This module closes that gap in the NetSight/ndb "postcard" style:
every traversal point of the simulated data plane — :meth:`Host.send`,
:meth:`Switch.receive`, :meth:`Link.transmit`, :meth:`Host.receive` and the
application hand-off — appends a :class:`HopRecord` for sampled packets
into a bounded ring buffer keyed by ``packet_id``.

Design constraints, in priority order:

* **off by default, near-zero cost when off** — devices hold a
  ``_flight`` attribute that is ``None`` until a recorder is attached;
  the hot-path hook is one attribute load and an ``is not None`` test;
* **deterministic** — the 1-in-N sampling decision is drawn per new
  ``packet_id`` from a :class:`random.Random` seeded at construction, so
  two identical-seed runs sample the same packets and serialise to
  byte-identical trace exports (packet ids are allocated in event order,
  which the simulator makes deterministic);
* **bounded** — hop records live in a ``deque(maxlen=capacity)``; old
  packets are evicted oldest-first and the eviction count is reported,
  never silently hidden.

Reconstruction of paths, delay attribution and drop forensics on top of
these records lives in :mod:`repro.obs.paths`.
"""

from __future__ import annotations

import random
from collections import OrderedDict, deque
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

__all__ = [
    "FlightRecorder",
    "HopRecord",
    "TRAVERSAL_POINTS",
    "DROP_REASONS",
]

#: The instrumented traversal points, in the order a delivery visits them.
TRAVERSAL_POINTS: tuple[str, ...] = (
    "host_send",    # Host.send — the packet enters the network
    "switch_recv",  # Switch.receive — TCAM lookup (hit, miss or diversion)
    "link_tx",      # Link.transmit — serialization + queueing + propagation
    "host_recv",    # Host.receive — NIC arrival, ingest-queue admission
    "host_deliver", # Host._process — handed to the application
)

#: The complete drop taxonomy.  Every lost packet copy is attributed to
#: exactly one of these reasons at the point where it died.
DROP_REASONS: tuple[str, ...] = (
    "table-miss",           # no flow matched at a switch
    "no-link",              # matched action's output port has no link
    "link-down",            # transmitted into a failed link
    "switch-down",          # arrived at a crashed switch
    "host-queue-overflow",  # subscriber ingest queue was full
    "ingress-bounce",       # action would forward back out the ingress port
)


@dataclass
class HopRecord:
    """One observation of one packet at one traversal point.

    ``drop`` is ``None`` for a surviving hop, or one of
    :data:`DROP_REASONS` when this record is where the packet (copy)
    died.  ``detail`` carries point-specific attribution data: lookup
    delay at a switch, the serialization/queueing/propagation split on a
    link, queue wait at a host.
    """

    __slots__ = ("packet_id", "t", "point", "node", "drop", "detail")

    packet_id: int
    t: float
    point: str
    node: str
    drop: str | None
    detail: dict

    def to_dict(self) -> dict:
        return {
            "packet_id": self.packet_id,
            "t": self.t,
            "point": self.point,
            "node": self.node,
            "drop": self.drop,
            "detail": {k: self.detail[k] for k in sorted(self.detail)},
        }


@dataclass
class FlightStats:
    """Bookkeeping the recorder maintains alongside the ring buffer."""

    packets_seen: int = 0      # distinct packet ids a sampling decision
    packets_sampled: int = 0   # ... and how many of them were sampled
    records_appended: int = 0  # total appends (>= len(ring) after eviction)
    records_evicted: int = 0   # appends that pushed an old record out
    drop_counts: dict = field(default_factory=dict)  # reason -> count

    def to_dict(self) -> dict:
        return {
            "packets_seen": self.packets_seen,
            "packets_sampled": self.packets_sampled,
            "records_appended": self.records_appended,
            "records_evicted": self.records_evicted,
            "drop_counts": {
                k: self.drop_counts[k] for k in sorted(self.drop_counts)
            },
        }


class FlightRecorder:
    """Bounded, sampled hop-history store for the simulated data plane.

    Devices call :meth:`wants` with a packet id before computing any
    record detail, then :meth:`add` for sampled packets.  Analysis code
    reads :attr:`records` (insertion order equals sim-time order, since
    the simulator never runs backwards) or :meth:`by_packet`.
    """

    #: Decisions memoised per packet id; bounded FIFO so a long run cannot
    #: grow memory without bound (a re-queried evicted id re-draws, which
    #: is deterministic for identical runs).
    DECISION_CAPACITY_FACTOR = 4

    def __init__(
        self,
        clock: Callable[[], float],
        sample_every: int = 1,
        capacity: int = 65_536,
        seed: int = 0,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._clock = clock
        self.sample_every = sample_every
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._decisions: OrderedDict[int, bool] = OrderedDict()
        self._decision_capacity = self.DECISION_CAPACITY_FACTOR * capacity
        self.records: deque[HopRecord] = deque(maxlen=capacity)
        self.stats = FlightStats()

    # ------------------------------------------------------------------
    # recording (device-facing, hot path)
    # ------------------------------------------------------------------
    def wants(self, packet_id: int) -> bool:
        """Should this packet's hops be recorded?  Memoised 1-in-N."""
        decision = self._decisions.get(packet_id)
        if decision is None:
            self.stats.packets_seen += 1
            if self.sample_every == 1:
                decision = True
            else:
                decision = self._rng.randrange(self.sample_every) == 0
            if decision:
                self.stats.packets_sampled += 1
            self._decisions[packet_id] = decision
            if len(self._decisions) > self._decision_capacity:
                self._decisions.popitem(last=False)
        return decision

    def add(
        self,
        packet_id: int,
        point: str,
        node: str,
        drop: str | None = None,
        **detail,
    ) -> None:
        """Append one hop record (caller already checked :meth:`wants`)."""
        if len(self.records) == self.capacity:
            self.stats.records_evicted += 1
        self.stats.records_appended += 1
        if drop is not None:
            counts = self.stats.drop_counts
            counts[drop] = counts.get(drop, 0) + 1
        self.records.append(
            HopRecord(
                packet_id=packet_id,
                t=self._clock(),
                point=point,
                node=node,
                drop=drop,
                detail=detail,
            )
        )

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[HopRecord]:
        return iter(self.records)

    def by_packet(self) -> dict[int, list[HopRecord]]:
        """Hop histories grouped by packet id, each in traversal order.

        Packets whose early hops were evicted from the ring still appear
        (with a truncated history); :mod:`repro.obs.paths` detects and
        reports incomplete histories rather than mis-attributing them.
        """
        grouped: dict[int, list[HopRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.packet_id, []).append(record)
        return grouped

    def clear(self) -> None:
        """Drop all records and decisions; keeps the RNG state (clearing
        mid-run must not re-align sampling with a fresh run)."""
        self.records.clear()
        self._decisions.clear()
        self.stats = FlightStats()

    def to_dicts(self) -> list[dict]:
        """Every record as a JSON-compatible dict, in traversal order."""
        return [record.to_dict() for record in self.records]

    def __repr__(self) -> str:
        return (
            f"FlightRecorder({len(self.records)} records, "
            f"1-in-{self.sample_every} sampling, "
            f"{self.stats.packets_sampled}/{self.stats.packets_seen} "
            f"packets sampled)"
        )
