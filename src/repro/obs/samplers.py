"""Periodic samplers driven by the simulator clock.

A :class:`PeriodicSampler` reschedules itself on the discrete-event engine
and runs its probes every ``period_s`` of *simulated* time.  To keep
``sim.run()`` terminating, the sampler pauses whenever a whole period
passes in which the simulator executed nothing but the sampler's own tick
(a quiet network); traffic sources re-arm it via :meth:`poke` (the
``Pleroma`` facade does this on every publish).

Two probes ship with the middleware:

* :class:`LinkUtilizationProbe` — byte-counter deltas of every
  switch-to-switch link, converted to a fraction of link capacity;
* :class:`TcamOccupancyProbe` — flow-table fill fraction per switch
  (requirement 3: TCAM capacity is the scarce resource).

Probes write gauges (latest value) and histograms (distribution over the
run) into the shared :class:`~repro.obs.registry.MetricsRegistry`.  The
module only duck-types the simulator and network to stay at the bottom of
the layer stack.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from collections.abc import Callable, Iterable

from repro.exceptions import TopologyError
from repro.obs.registry import OCCUPANCY_BUCKETS, MetricsRegistry

__all__ = [
    "PeriodicSampler",
    "LinkSample",
    "LinkUtilizationProbe",
    "TcamOccupancyProbe",
]

Probe = Callable[[float], None]


@dataclass(frozen=True)
class LinkSample:
    """One utilization observation for one link."""

    time: float
    utilization: float
    bytes_delta: int


class PeriodicSampler:
    """Runs probes every ``period_s`` of sim time; pauses when idle."""

    def __init__(self, sim, period_s: float, probes: Iterable[Probe]) -> None:
        if period_s <= 0:
            raise ValueError("sampling period must be positive")
        self.sim = sim
        self.period_s = period_s
        self.probes = list(probes)
        self.ticks = 0
        self._handle = None
        self._started = False
        self._processed_at_arm = 0

    # ------------------------------------------------------------------
    def start(self) -> "PeriodicSampler":
        self._started = True
        if self._handle is None:
            self._arm()
        return self

    def stop(self) -> None:
        self._started = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def poke(self) -> None:
        """Re-arm a sampler paused by a quiet period (called on traffic)."""
        if self._started and self._handle is None:
            self._arm()

    @property
    def running(self) -> bool:
        return self._handle is not None

    # ------------------------------------------------------------------
    def _arm(self) -> None:
        self._processed_at_arm = self.sim.processed_events
        self._handle = self.sim.schedule(self.period_s, self._tick)

    def _tick(self) -> None:
        self._handle = None
        self.ticks += 1
        for probe in self.probes:
            probe(self.sim.now)
        # Only the tick itself ran since arming: the network is quiet —
        # pause so draining the event queue terminates.
        if self.sim.processed_events - self._processed_at_arm > 1:
            self._arm()


class LinkUtilizationProbe:
    """Samples switch-to-switch link load into the registry.

    Per link: gauge ``link.utilization{link=a<->b}`` (load during the last
    window), one shared histogram ``link.utilization`` of every sample,
    and a bounded per-link :class:`LinkSample` history readable through
    :meth:`latest` / :meth:`history` / :meth:`hottest`.

    This is the single link-utilization implementation; the legacy
    ``repro.network.stats.LinkUtilizationSampler`` is a deprecation shim
    delegating here.
    """

    def __init__(
        self,
        network,
        registry: MetricsRegistry,
        history_maxlen: int = 256,
    ) -> None:
        self.network = network
        self.registry = registry
        self._last_bytes: dict[str, int] = {}
        self._last_time: float | None = None
        self._keys: list[tuple[str, frozenset]] = sorted(
            (("<->".join(sorted(key)), key) for key in network.links
             if all(name in network.switches for name in key)),
        )
        self._histories: dict[frozenset, deque[LinkSample]] = {}
        for label, key in self._keys:
            self._last_bytes[label] = network.links[key].total_bytes
            self._histories[key] = deque(maxlen=history_maxlen)
        self._histogram = registry.histogram(
            "link.utilization", OCCUPANCY_BUCKETS
        )

    def __call__(self, now: float) -> dict[frozenset, LinkSample]:
        window = (
            now - self._last_time if self._last_time is not None else now
        )
        results: dict[frozenset, LinkSample] = {}
        for label, key in self._keys:
            link = self.network.links[key]
            delta = link.total_bytes - self._last_bytes[label]
            self._last_bytes[label] = link.total_bytes
            utilization = (
                (delta * 8.0) / (link.bandwidth_bps * window)
                if window > 0
                else 0.0
            )
            self.registry.gauge("link.utilization", link=label).set(
                utilization
            )
            self._histogram.observe(utilization)
            sample = LinkSample(
                time=now, utilization=utilization, bytes_delta=delta
            )
            self._histories[key].append(sample)
            results[key] = sample
        self._last_time = now
        return results

    # ------------------------------------------------------------------
    # history accessors (the former LinkUtilizationSampler API)
    # ------------------------------------------------------------------
    def latest(self, a: str, b: str) -> LinkSample:
        history = self._histories.get(frozenset((a, b)))
        if history is None or not history:
            raise TopologyError(f"no samples for link {a!r}<->{b!r}")
        return history[-1]

    def history(self, a: str, b: str) -> list[LinkSample]:
        history = self._histories.get(frozenset((a, b)))
        if history is None:
            raise TopologyError(f"unknown link {a!r}<->{b!r}")
        return list(history)

    def hottest(self) -> tuple[frozenset, LinkSample]:
        """The link with the highest latest utilization."""
        best_key = None
        best: LinkSample | None = None
        for _label, key in self._keys:
            history = self._histories[key]
            if not history:
                continue
            sample = history[-1]
            if best is None or sample.utilization > best.utilization:
                best_key, best = key, sample
        if best is None or best_key is None:
            raise TopologyError("no samples taken yet")
        return best_key, best


class TcamOccupancyProbe:
    """Samples per-switch flow-table occupancy into the registry."""

    def __init__(self, network, registry: MetricsRegistry) -> None:
        self.network = network
        self.registry = registry
        self._histogram = registry.histogram(
            "switch.tcam_occupancy", OCCUPANCY_BUCKETS
        )

    def __call__(self, now: float) -> None:
        for name in sorted(self.network.switches):
            switch = self.network.switches[name]
            occupancy = len(switch.table) / switch.table.capacity
            self.registry.gauge("switch.tcam_occupancy", switch=name).set(
                occupancy
            )
            self.registry.gauge("switch.flow_entries", switch=name).set(
                float(len(switch.table))
            )
            self._histogram.observe(occupancy)
