"""Path analytics over flight-recorder hop histories.

Turns the raw :class:`~repro.obs.flight.HopRecord` stream into first-class
queryable facts:

* **delivery trees** — for every sampled packet, the chain of nodes each
  delivered copy traversed, reconstructed by walking ``link_tx`` records
  backwards from the subscriber (loop-free trees visit a node at most
  once, so node names key the walk);
* **delay attribution** — each delivery's end-to-end delay split into
  TCAM lookup vs. link serialization vs. link queueing vs. propagation
  vs. host queue wait vs. host service time, with any residual reported
  as ``unattributed_s`` instead of silently absorbed;
* **drop forensics** — every recorded drop classified by exactly one
  reason from :data:`~repro.obs.flight.DROP_REASONS`;
* **path stretch** — actual hop count over the topology's shortest path
  between publisher and subscriber (1.0 means shortest-path delivery);
* **duplicate detection** — more than one application hand-off of the
  same packet id at the same host.

The report serialises deterministically (sorted keys, sim-time floats
only) and can push summary gauges into a
:class:`~repro.obs.registry.MetricsRegistry`; ``chrome_trace`` renders
the records as Chrome trace-event JSON (load in ``chrome://tracing`` or
Perfetto).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.flight import FlightRecorder, HopRecord

__all__ = [
    "DeliveryTrace",
    "FlightReport",
    "analyze_flight",
    "blackout_windows",
    "chrome_trace",
    "render_timeline",
    "render_link_hotness",
]

#: Breakdown components, in reporting order.
_COMPONENTS: tuple[str, ...] = (
    "lookup_s",
    "serialization_s",
    "queueing_s",
    "propagation_s",
    "host_wait_s",
    "host_service_s",
)


@dataclass
class DeliveryTrace:
    """One reconstructed delivery of one sampled packet."""

    packet_id: int
    host: str
    publisher: str | None      # None when the send record was evicted
    send_time: float | None
    deliver_time: float
    delay_s: float | None
    path: list[str]            # publisher .. host, traversal order
    hops: int                  # links traversed
    shortest_hops: int | None  # None without a topology
    stretch: float | None
    breakdown: dict[str, float]
    complete: bool             # chain reached a host_send record

    def to_dict(self) -> dict:
        return {
            "packet_id": self.packet_id,
            "host": self.host,
            "publisher": self.publisher,
            "send_time": self.send_time,
            "deliver_time": self.deliver_time,
            "delay_s": self.delay_s,
            "path": list(self.path),
            "hops": self.hops,
            "shortest_hops": self.shortest_hops,
            "stretch": self.stretch,
            "breakdown": {k: self.breakdown[k] for k in sorted(self.breakdown)},
            "complete": self.complete,
        }


@dataclass
class FlightReport:
    """Everything the analytics derive from one recorder's contents."""

    deliveries: list[DeliveryTrace] = field(default_factory=list)
    drops: list[dict] = field(default_factory=list)
    drop_counts: dict[str, int] = field(default_factory=dict)
    duplicates: list[dict] = field(default_factory=list)
    link_hotness: dict[str, int] = field(default_factory=dict)
    recorder_stats: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """The compact digest embedded in observability snapshots."""
        complete = [d for d in self.deliveries if d.delay_s is not None]
        attribution = {
            component: sum(d.breakdown.get(component, 0.0) for d in complete)
            for component in _COMPONENTS
        }
        attribution["unattributed_s"] = sum(
            d.breakdown.get("unattributed_s", 0.0) for d in complete
        )
        stretches = [d.stretch for d in self.deliveries if d.stretch is not None]
        return {
            "deliveries": len(self.deliveries),
            "incomplete_deliveries": sum(
                1 for d in self.deliveries if not d.complete
            ),
            "drops": sum(self.drop_counts.values()),
            "drop_counts": {
                k: self.drop_counts[k] for k in sorted(self.drop_counts)
            },
            "duplicates": len(self.duplicates),
            "delay_attribution_s": {
                k: attribution[k] for k in sorted(attribution)
            },
            "mean_stretch": (
                sum(stretches) / len(stretches) if stretches else None
            ),
            "max_stretch": max(stretches) if stretches else None,
            "recorder": dict(self.recorder_stats),
        }

    def to_dict(self) -> dict:
        return {
            "deliveries": [d.to_dict() for d in self.deliveries],
            "drops": list(self.drops),
            "drop_counts": {
                k: self.drop_counts[k] for k in sorted(self.drop_counts)
            },
            "duplicates": list(self.duplicates),
            "link_hotness": {
                k: self.link_hotness[k] for k in sorted(self.link_hotness)
            },
            "summary": self.summary(),
        }

    def record_gauges(self, registry) -> None:
        """Publish the summary into a metrics registry (gauges only, so
        repeated snapshots stay idempotent)."""
        summary = self.summary()
        registry.gauge("flight.deliveries").set(float(summary["deliveries"]))
        registry.gauge("flight.duplicates").set(float(summary["duplicates"]))
        registry.gauge("flight.drops").set(float(summary["drops"]))
        for reason, count in summary["drop_counts"].items():
            registry.gauge("flight.drops", reason=reason).set(float(count))
        if summary["mean_stretch"] is not None:
            registry.gauge("flight.mean_stretch").set(summary["mean_stretch"])
        for component, total in summary["delay_attribution_s"].items():
            registry.gauge(
                "flight.delay_attribution_s", component=component
            ).set(total)


# ----------------------------------------------------------------------
# reconstruction
# ----------------------------------------------------------------------
def _reconstruct_delivery(
    deliver: HopRecord,
    link_by_dst: dict[str, HopRecord],
    switch_recv: dict[str, HopRecord],
    host_recv: dict[str, HopRecord],
    send: HopRecord | None,
    topology,
) -> DeliveryTrace:
    host = deliver.node
    breakdown: dict[str, float] = dict.fromkeys(_COMPONENTS, 0.0)
    arrival = host_recv.get(host)
    if arrival is not None:
        breakdown["host_wait_s"] += arrival.detail.get("wait_s", 0.0)
        breakdown["host_service_s"] += arrival.detail.get("service_s", 0.0)
    path = [host]
    hops = 0
    cursor = host
    # Walk back towards the publisher; trees are loop-free, so each node
    # appears at most once and a seen-set guards corrupt histories.
    seen = {host}
    while True:
        link = link_by_dst.get(cursor)
        if link is None:
            break
        hops += 1
        breakdown["serialization_s"] += link.detail.get("serialization_s", 0.0)
        breakdown["queueing_s"] += link.detail.get("queueing_s", 0.0)
        breakdown["propagation_s"] += link.detail.get("propagation_s", 0.0)
        cursor = link.detail["src"]
        if cursor in seen:  # corrupt/looping history: stop, mark incomplete
            break
        seen.add(cursor)
        path.append(cursor)
        lookup = switch_recv.get(cursor)
        if lookup is not None:
            breakdown["lookup_s"] += lookup.detail.get("lookup_s", 0.0)
    path.reverse()
    complete = send is not None and cursor == send.node
    publisher = send.node if send is not None else None
    send_time = send.t if send is not None else None
    delay_s = deliver.t - send_time if complete and send_time is not None else None
    if delay_s is not None:
        breakdown["unattributed_s"] = delay_s - sum(
            breakdown[c] for c in _COMPONENTS
        )
    shortest = None
    stretch = None
    if complete and topology is not None and publisher is not None:
        shortest = len(topology.shortest_path(publisher, host)) - 1
        if shortest > 0:
            stretch = hops / shortest
    return DeliveryTrace(
        packet_id=deliver.packet_id,
        host=host,
        publisher=publisher,
        send_time=send_time,
        deliver_time=deliver.t,
        delay_s=delay_s,
        path=path,
        hops=hops,
        shortest_hops=shortest,
        stretch=stretch,
        breakdown=breakdown,
        complete=complete,
    )


def analyze_flight(recorder: FlightRecorder, topology=None) -> FlightReport:
    """Reconstruct deliveries, drops and link hotness from a recorder."""
    report = FlightReport(recorder_stats=recorder.stats.to_dict())
    for records in recorder.by_packet().values():
        send: HopRecord | None = None
        link_by_dst: dict[str, HopRecord] = {}
        switch_recv: dict[str, HopRecord] = {}
        host_recv: dict[str, HopRecord] = {}
        delivers: list[HopRecord] = []
        for record in records:
            if record.drop is not None:
                report.drops.append(
                    {
                        "packet_id": record.packet_id,
                        "t": record.t,
                        "node": record.node,
                        "point": record.point,
                        "reason": record.drop,
                    }
                )
                report.drop_counts[record.drop] = (
                    report.drop_counts.get(record.drop, 0) + 1
                )
                continue
            if record.point == "host_send":
                send = record
            elif record.point == "link_tx":
                dst = record.detail["dst"]
                link_by_dst.setdefault(dst, record)
                edge = f"{record.detail['src']}->{dst}"
                report.link_hotness[edge] = (
                    report.link_hotness.get(edge, 0) + 1
                )
            elif record.point == "switch_recv":
                switch_recv.setdefault(record.node, record)
            elif record.point == "host_recv":
                host_recv.setdefault(record.node, record)
            elif record.point == "host_deliver":
                delivers.append(record)
        per_host: dict[str, int] = {}
        for deliver in delivers:
            per_host[deliver.node] = per_host.get(deliver.node, 0) + 1
            report.deliveries.append(
                _reconstruct_delivery(
                    deliver, link_by_dst, switch_recv, host_recv, send,
                    topology,
                )
            )
        for host, count in sorted(per_host.items()):
            if count > 1:
                report.duplicates.append(
                    {
                        "packet_id": delivers[0].packet_id,
                        "host": host,
                        "count": count,
                    }
                )
    # deterministic ordering regardless of grouping order
    report.deliveries.sort(key=lambda d: (d.deliver_time, d.packet_id, d.host))
    report.drops.sort(key=lambda d: (d["t"], d["packet_id"], d["node"]))
    report.duplicates.sort(key=lambda d: (d["packet_id"], d["host"]))
    return report


# ----------------------------------------------------------------------
# blackout measurement
# ----------------------------------------------------------------------
def blackout_windows(
    report: FlightReport,
    window: tuple[float, float] | None = None,
) -> dict[str, dict]:
    """Per-host outage windows, measured purely from delivery gaps.

    For each subscriber host that received at least two deliveries, find
    the largest gap between consecutive deliveries — optionally restricted
    to gaps overlapping ``window`` (an injected failure interval).  Under a
    steady publish rate the largest gap brackets the blackout: its start is
    the last delivery before the failure bit, its end the first delivery
    after repair took effect.  This is the *measured* counterpart of a
    chaos schedule's injected interval; the recovery SLOs compare the two.

    Returns ``{host: {"start": t, "end": t, "gap_s": dt}}`` with hosts in
    sorted order (deterministic serialisation).
    """
    per_host: dict[str, list[float]] = {}
    for delivery in report.deliveries:
        per_host.setdefault(delivery.host, []).append(delivery.deliver_time)
    out: dict[str, dict] = {}
    for host in sorted(per_host):
        times = sorted(per_host[host])
        best: tuple[float, float] | None = None
        for t0, t1 in zip(times, times[1:]):
            if window is not None and (t1 <= window[0] or t0 >= window[1]):
                continue
            if best is None or (t1 - t0) > (best[1] - best[0]):
                best = (t0, t1)
        if best is not None:
            out[host] = {
                "start": best[0],
                "end": best[1],
                "gap_s": best[1] - best[0],
            }
    return out


# ----------------------------------------------------------------------
# renderers / exporters
# ----------------------------------------------------------------------
def render_timeline(records: list[HopRecord]) -> str:
    """A terminal-friendly per-event timeline of one packet's hops."""
    if not records:
        return "(no records)"
    t0 = records[0].t
    lines = []
    for record in records:
        offset_us = (record.t - t0) * 1e6
        if record.drop is not None:
            what = f"DROP {record.drop}"
        elif record.point == "switch_recv":
            lookup = record.detail.get("lookup_s")
            hit = record.detail.get("tcam_hit")
            if record.detail.get("to_controller"):
                what = "divert to controller"
            elif hit:
                what = f"tcam hit (lookup {lookup * 1e6:.2f} us)"
            else:
                what = "tcam lookup"
        elif record.point == "link_tx":
            what = (
                f"-> {record.detail['dst']} "
                f"(ser {record.detail['serialization_s'] * 1e6:.2f} us, "
                f"queue {record.detail['queueing_s'] * 1e6:.2f} us, "
                f"prop {record.detail['propagation_s'] * 1e6:.2f} us)"
            )
        elif record.point == "host_recv":
            what = (
                f"nic arrival (wait {record.detail['wait_s'] * 1e6:.2f} us)"
            )
        elif record.point == "host_deliver":
            what = "delivered to application"
        elif record.point == "host_send":
            what = "published"
        else:
            what = record.point
        lines.append(f"  {offset_us:10.2f} us  {record.node:<10} {what}")
    return "\n".join(lines)


def render_link_hotness(link_hotness: dict[str, int], top: int = 0) -> str:
    """A per-directed-link packet-count table, hottest first."""
    if not link_hotness:
        return "(no link transmissions recorded)"
    rows = sorted(link_hotness.items(), key=lambda kv: (-kv[1], kv[0]))
    if top:
        rows = rows[:top]
    width = max(len(edge) for edge, _ in rows)
    return "\n".join(
        f"  {edge.ljust(width)}  {count}" for edge, count in rows
    )


def chrome_trace(recorder: FlightRecorder) -> dict:
    """The hop records as a Chrome trace-event document.

    One trace "thread" per network node (deterministic tid assignment by
    sorted node name); durations are the recorded delay components, drops
    are instant events in the ``drop`` category.  Times are microseconds
    of sim time, as the trace-event format requires.
    """
    nodes = sorted({record.node for record in recorder.records})
    tids = {node: i + 1 for i, node in enumerate(nodes)}
    events: list[dict] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": tids[node],
            "name": "thread_name",
            "args": {"name": node},
        }
        for node in nodes
    ]
    for record in recorder.records:
        base = {
            "pid": 1,
            "tid": tids[record.node],
            "ts": record.t * 1e6,
            "args": {
                "packet_id": record.packet_id,
                **{k: record.detail[k] for k in sorted(record.detail)},
            },
        }
        if record.drop is not None:
            events.append(
                {
                    **base,
                    "ph": "i",
                    "s": "t",
                    "cat": "drop",
                    "name": f"drop:{record.drop}",
                }
            )
            continue
        duration_s = 0.0
        if record.point == "switch_recv":
            duration_s = record.detail.get("lookup_s", 0.0)
        elif record.point == "link_tx":
            duration_s = (
                record.detail.get("serialization_s", 0.0)
                + record.detail.get("queueing_s", 0.0)
                + record.detail.get("propagation_s", 0.0)
            )
        elif record.point == "host_recv":
            duration_s = record.detail.get("wait_s", 0.0) + record.detail.get(
                "service_s", 0.0
            )
        if duration_s > 0.0:
            events.append(
                {
                    **base,
                    "ph": "X",
                    "cat": "flight",
                    "name": record.point,
                    "dur": duration_s * 1e6,
                }
            )
        else:
            events.append(
                {
                    **base,
                    "ph": "i",
                    "s": "t",
                    "cat": "flight",
                    "name": record.point,
                }
            )
    return {"displayTimeUnit": "ms", "traceEvents": events}
