"""Structured sim-time tracing for the control plane.

Every control-plane operation — an ADV/SUB/UNSUB/UNADV request, a flow-mod
batch, a tree merge, a federation exchange — is recorded as a
:class:`Span`: kind, name, start/end *simulation* time, an outcome, and a
dictionary of attributes (per-switch flow-mod counts, tree ids, borders).
The resulting trace is queryable in-process and serialises into the run
snapshot.

Spans deliberately carry no wall-clock data: traces of two runs with the
same seed compare equal byte-for-byte.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Callable, Iterator

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One traced control-plane operation."""

    span_id: int
    kind: str
    name: str
    start: float
    end: float | None = None
    outcome: str = "ok"
    attributes: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Elapsed sim time (0 for operations the simulator models as
        instantaneous, e.g. direct-applier requests)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "kind": self.kind,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "outcome": self.outcome,
            "attributes": {
                k: self.attributes[k] for k in sorted(self.attributes)
            },
        }


class Tracer:
    """Collects spans against an injected clock (``lambda: sim.now``)."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._next_id = 0
        self.spans: list[Span] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def begin(self, kind: str, name: str, **attributes) -> Span:
        """Open a span; pair with :meth:`finish`."""
        self._next_id += 1
        span = Span(
            span_id=self._next_id,
            kind=kind,
            name=name,
            start=self._clock(),
            attributes=dict(attributes),
        )
        self.spans.append(span)
        return span

    def finish(self, span: Span, outcome: str = "ok", **attributes) -> Span:
        span.end = self._clock()
        span.outcome = outcome
        span.attributes.update(attributes)
        return span

    @contextmanager
    def span(self, kind: str, name: str, **attributes) -> Iterator[Span]:
        """Record one operation; an escaping exception marks it ``error``."""
        span = self.begin(kind, name, **attributes)
        try:
            yield span
        except BaseException:
            self.finish(span, outcome="error")
            raise
        else:
            if span.end is None:
                self.finish(span, outcome=span.outcome)

    def event(self, kind: str, name: str, **attributes) -> Span:
        """A zero-duration span (an instantaneous occurrence)."""
        span = self.begin(kind, name, **attributes)
        return self.finish(span)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def spans_of(self, kind: str, name: str | None = None) -> list[Span]:
        return [
            s
            for s in self.spans
            if s.kind == kind and (name is None or s.name == name)
        ]

    def summary(self) -> dict:
        """Per-(kind, name) aggregates: count, errors, total/max duration."""
        out: dict[str, dict] = {}
        for span in self.spans:
            entry = out.setdefault(
                f"{span.kind}:{span.name}",
                {"count": 0, "errors": 0, "total_duration_s": 0.0,
                 "max_duration_s": 0.0},
            )
            entry["count"] += 1
            if span.outcome != "ok":
                entry["errors"] += 1
            entry["total_duration_s"] += span.duration_s
            entry["max_duration_s"] = max(
                entry["max_duration_s"], span.duration_s
            )
        return {k: out[k] for k in sorted(out)}

    def to_dicts(self) -> list[dict]:
        return [span.to_dict() for span in self.spans]

    def __repr__(self) -> str:
        return f"Tracer({len(self.spans)} spans)"
