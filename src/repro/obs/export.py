"""Snapshot exporters and the run-report renderer.

Snapshots (from :meth:`Observability.snapshot` or
:meth:`MetricsRegistry.snapshot`) are plain dictionaries; this module
serialises them to JSON (sorted keys, so equal runs produce byte-identical
files) or CSV (one row per instrument, friendly to spreadsheets and
pandas), and renders the human-readable summary behind
``python -m repro report``.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

__all__ = [
    "write_json",
    "load_json",
    "write_csv",
    "metrics_csv",
    "merge_metrics",
    "prometheus_text",
    "write_prometheus",
    "render_report",
]


def write_json(document: dict, path: str | Path) -> Path:
    """Serialise a snapshot deterministically (sorted keys, fixed floats)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(document, sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    return path


def load_json(path: str | Path) -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def metrics_csv(metrics: dict) -> str:
    """Render a registry snapshot as ``kind,name,value`` CSV text."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(["kind", "name", "value"])
    for name in sorted(metrics.get("counters", {})):
        writer.writerow(["counter", name, metrics["counters"][name]])
    for name in sorted(metrics.get("gauges", {})):
        writer.writerow(["gauge", name, repr(metrics["gauges"][name])])
    for name in sorted(metrics.get("histograms", {})):
        h = metrics["histograms"][name]
        mean = h["sum"] / h["count"] if h["count"] else 0.0
        writer.writerow(
            ["histogram", name, f"count={h['count']};mean={mean!r};"
                                f"min={h['min']!r};max={h['max']!r}"]
        )
    return out.getvalue()


def write_csv(document: dict, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    metrics = document.get("metrics", document)
    path.write_text(metrics_csv(metrics), encoding="utf-8")
    return path


def merge_metrics(snapshots: list[dict]) -> dict:
    """Combine registry snapshots: counters and histogram buckets add up,
    gauges keep the last written value.  Used by the benchmark harness to
    aggregate every deployment a session created."""
    merged: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            merged["gauges"][name] = value
        for name, h in snap.get("histograms", {}).items():
            into = merged["histograms"].get(name)
            if into is None or into["edges"] != h["edges"]:
                merged["histograms"][name] = {
                    "edges": list(h["edges"]),
                    "bucket_counts": list(h["bucket_counts"]),
                    "count": h["count"],
                    "sum": h["sum"],
                    "min": h["min"],
                    "max": h["max"],
                }
                continue
            into["bucket_counts"] = [
                a + b for a, b in zip(into["bucket_counts"], h["bucket_counts"])
            ]
            into["count"] += h["count"]
            into["sum"] += h["sum"]
            for side, pick in (("min", min), ("max", max)):
                if h[side] is not None:
                    into[side] = (
                        h[side]
                        if into[side] is None
                        else pick(into[side], h[side])
                    )
    return {
        "counters": dict(sorted(merged["counters"].items())),
        "gauges": dict(sorted(merged["gauges"].items())),
        "histograms": dict(sorted(merged["histograms"].items())),
    }


# ----------------------------------------------------------------------
# Prometheus / OpenMetrics text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    """Registry metric name -> Prometheus metric name (dots and every
    other illegal character become underscores)."""
    return "".join(
        c if c.isalnum() or c == "_" else "_" for c in name
    )


def _split_key(key: str) -> tuple[str, list[tuple[str, str]]]:
    """``name{a=x,b=y}`` -> (name, [(a, x), (b, y)])."""
    if not key.endswith("}") or "{" not in key:
        return key, []
    name, _, inner = key.partition("{")
    labels = []
    for part in inner[:-1].split(","):
        label, _, value = part.partition("=")
        labels.append((label, value))
    return name, labels


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _prom_labels(labels: list[tuple[str, str]]) -> str:
    if not labels:
        return ""
    quoted = ",".join(
        f'{_prom_name(k)}="{_prom_escape(v)}"' for k, v in labels
    )
    return "{" + quoted + "}"


def _prom_value(value: float) -> str:
    """Canonical float formatting (repr keeps runs byte-comparable)."""
    if isinstance(value, int):
        return str(value)
    return repr(value)


def prometheus_text(metrics: dict) -> str:
    """Render a registry snapshot in Prometheus/OpenMetrics text format.

    Counters get a ``_total`` suffix, histograms expand to cumulative
    ``_bucket{le=...}`` series plus ``_sum`` / ``_count``.  Families and
    series are emitted in sorted order and floats use ``repr``, so equal
    runs produce byte-identical exposition text.
    """
    families: dict[str, list[str]] = {}

    def add(family: str, kind: str, line: str) -> None:
        lines = families.setdefault(f"# TYPE {family} {kind}", [])
        lines.append(line)

    for key in sorted(metrics.get("counters", {})):
        name, labels = _split_key(key)
        family = _prom_name(name) + "_total"
        add(family, "counter",
            f"{family}{_prom_labels(labels)} "
            f"{_prom_value(metrics['counters'][key])}")
    for key in sorted(metrics.get("gauges", {})):
        name, labels = _split_key(key)
        family = _prom_name(name)
        add(family, "gauge",
            f"{family}{_prom_labels(labels)} "
            f"{_prom_value(metrics['gauges'][key])}")
    for key in sorted(metrics.get("histograms", {})):
        name, labels = _split_key(key)
        family = _prom_name(name)
        h = metrics["histograms"][key]
        cumulative = 0
        for edge, count in zip(h["edges"], h["bucket_counts"]):
            cumulative += count
            add(family, "histogram",
                f"{family}_bucket"
                f"{_prom_labels([*labels, ('le', _prom_value(float(edge)))])} "
                f"{cumulative}")
        cumulative += h["bucket_counts"][-1]
        add(family, "histogram",
            f"{family}_bucket{_prom_labels([*labels, ('le', '+Inf')])} "
            f"{cumulative}")
        add(family, "histogram",
            f"{family}_sum{_prom_labels(labels)} {_prom_value(h['sum'])}")
        add(family, "histogram",
            f"{family}_count{_prom_labels(labels)} {h['count']}")

    out: list[str] = []
    for header in sorted(families):
        out.append(header)
        out.extend(families[header])
    out.append("# EOF")
    return "\n".join(out) + "\n"


def write_prometheus(document: dict, path: str | Path) -> Path:
    """Write the ``metrics`` section of a snapshot as exposition text."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    metrics = document.get("metrics", document)
    path.write_text(prometheus_text(metrics), encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# report rendering
# ----------------------------------------------------------------------
def _rows(title: str, rows: list[tuple[str, str]], out: list[str]) -> None:
    if not rows:
        return
    out.append(f"\n{title}")
    out.append("-" * len(title))
    width = max(len(name) for name, _ in rows)
    for name, value in rows:
        out.append(f"{name.ljust(width)}  {value}")


#: Counter-name prefixes that represent lost packets; the report surfaces
#: them in a dedicated forensics section so a lossy run is obvious at a
#: glance (they used to be buried in — or absent from — the counter dump).
_DROP_COUNTER_PREFIXES = (
    "switch.packets_dropped",
    "host.packets_dropped",
    "link.packets_lost_down",
)


#: Status gauges rendered in the drops/forensics block: a down link or
#: switch is the usual root cause of the losses listed right above it.
_STATUS_GAUGE_PREFIXES = (
    ("link.admin_up{link=", "link", "admin down"),
    ("link.oper_up{link=", "link", "oper down"),
    ("switch.up{switch=", "switch", "down"),
)


def _status_rows(gauges: dict) -> list[tuple[str, str]]:
    """Rows for every link/switch whose status gauge reads down (0)."""
    rows = []
    for name, value in sorted(gauges.items()):
        if value:
            continue
        for prefix, kind, status in _STATUS_GAUGE_PREFIXES:
            if name.startswith(prefix):
                subject = name[len(prefix):-1]  # strip trailing '}'
                rows.append((f"{kind} {subject}", status))
                break
    return rows


def _drop_rows(counters: dict) -> list[tuple[str, str]]:
    rows = [
        (name, str(value))
        for name, value in sorted(counters.items())
        if value and name.startswith(_DROP_COUNTER_PREFIXES)
    ]
    if rows:
        total = sum(int(v) for _, v in rows)
        rows.append(("total packets lost", str(total)))
    return rows


def render_report(document: dict) -> str:
    """A terminal-friendly run summary of one exported snapshot."""
    out: list[str] = []
    metrics = document.get("metrics", document)
    sim_time = document.get("sim_time_s")
    out.append("run summary" + (f" (sim time {sim_time:.6f} s)"
                                if sim_time is not None else ""))
    _rows("down devices", _status_rows(metrics.get("gauges", {})), out)
    _rows("drops", _drop_rows(metrics.get("counters", {})), out)
    _rows(
        "counters",
        [(n, str(v)) for n, v in sorted(metrics.get("counters", {}).items())],
        out,
    )
    _rows(
        "gauges",
        [(n, f"{v:.6g}") for n, v in sorted(metrics.get("gauges", {}).items())],
        out,
    )
    hist_rows = []
    for name, h in sorted(metrics.get("histograms", {}).items()):
        if not h["count"]:
            continue
        mean = h["sum"] / h["count"]
        hist_rows.append(
            (name, f"count={h['count']} mean={mean:.6g} "
                   f"min={h['min']:.6g} max={h['max']:.6g}")
        )
    _rows("histograms", hist_rows, out)
    trace_rows = [
        (name, f"count={entry['count']} errors={entry['errors']} "
               f"max={entry['max_duration_s']:.6g}s")
        for name, entry in sorted(document.get("trace_summary", {}).items())
    ]
    _rows("control-plane trace", trace_rows, out)
    flight = document.get("flight")
    if flight:
        flight_rows = [
            ("deliveries", str(flight.get("deliveries", 0))),
            ("duplicates", str(flight.get("duplicates", 0))),
            ("drops", str(flight.get("drops", 0))),
        ]
        for reason, count in sorted(flight.get("drop_counts", {}).items()):
            flight_rows.append((f"drops[{reason}]", str(count)))
        for component, total in sorted(
            flight.get("delay_attribution_s", {}).items()
        ):
            flight_rows.append((f"delay[{component}]", f"{total:.6g} s"))
        if flight.get("mean_stretch") is not None:
            flight_rows.append(
                ("mean path stretch", f"{flight['mean_stretch']:.4g}")
            )
        _rows("data-plane flight recorder", flight_rows, out)
    telemetry = document.get("telemetry")
    if telemetry:
        hitter_rows = [
            (f"#{rank} dz={hh['dz']}",
             f"packets={hh['packets']} "
             f"peak rate={hh.get('peak_rate_pps', hh['rate_pps']):.6g} pps")
            for rank, hh in enumerate(telemetry.get("heavy_hitters", []), 1)
        ]
        _rows("heavy hitters (polled)", hitter_rows, out)
        loss_rows = [
            (f"{entry['switch']} port {entry['port']}",
             f"tx_dropped={entry['tx_dropped']} "
             f"loss={entry['loss_pps']:.6g} pps "
             f"skew={entry['skew_packets']}")
            for entry in telemetry.get("port_loss", [])
        ]
        _rows("inferred port loss", loss_rows, out)
        poll_rows = [
            (name,
             f"flows={view['flows']} polls={view['polls']} "
             f"occupancy={view['occupancy']:.4g}"
             if view.get("occupancy") is not None
             else f"flows={view['flows']} polls={view['polls']}")
            for name, view in sorted(
                telemetry.get("switches", {}).items()
            )
        ]
        _rows("telemetry polling", poll_rows, out)
    alerts = document.get("alerts")
    if alerts:
        alert_rows = [
            (f"{alert['rule']}",
             f"{'ACTIVE' if alert['cleared_at'] is None else 'cleared'} "
             f"{alert['series']} value={alert['value']:.6g} "
             f"fired_at={alert['fired_at']:.6g}s")
            for alert in alerts.get("history", [])
        ]
        if not alert_rows:
            alert_rows = [("(no alerts fired)",
                           f"{alerts.get('evaluations', 0)} evaluations")]
        _rows("alerts", alert_rows, out)
    return "\n".join(out) + "\n"
