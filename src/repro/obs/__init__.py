"""Sim-time observability: metrics registry, tracing, samplers, exporters.

The layer every other component reports into (see ``docs/observability.md``):

* :mod:`repro.obs.registry` — counters, gauges and fixed-bucket sim-time
  histograms, registered by name + labels;
* :mod:`repro.obs.trace` — structured spans for control-plane operations
  (requests, flow-mod batches, tree merges, federation exchanges);
* :mod:`repro.obs.samplers` — periodic link-utilization and TCAM-occupancy
  probes driven by the simulator clock;
* :mod:`repro.obs.export` — JSON/CSV exporters and the run-report renderer
  behind ``python -m repro report``;
* :mod:`repro.obs.context` — the :class:`Observability` bundle a deployment
  shares between its components.

Everything here is deterministic: snapshots contain only sim-time
quantities and sorted keys, so two runs with the same seed serialise to
byte-identical documents regardless of ``PYTHONHASHSEED``.
"""

from repro.obs.context import Observability, live_observabilities
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DELAY_BUCKETS_S,
    OCCUPANCY_BUCKETS,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "Observability",
    "live_observabilities",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DELAY_BUCKETS_S",
    "OCCUPANCY_BUCKETS",
    "Span",
    "Tracer",
]
