"""Sim-time observability: metrics registry, tracing, samplers, exporters.

The layer every other component reports into (see ``docs/observability.md``):

* :mod:`repro.obs.registry` — counters, gauges and fixed-bucket sim-time
  histograms, registered by name + labels;
* :mod:`repro.obs.trace` — structured spans for control-plane operations
  (requests, flow-mod batches, tree merges, federation exchanges);
* :mod:`repro.obs.samplers` — periodic link-utilization and TCAM-occupancy
  probes driven by the simulator clock;
* :mod:`repro.obs.flight` — the data-plane flight recorder: sampled
  per-packet hop histories (sends, TCAM lookups, link transmissions,
  host arrivals, drops) in a bounded ring buffer;
* :mod:`repro.obs.paths` — path analytics over flight records: delivery
  trees, per-component delay attribution, drop forensics, path stretch,
  duplicate detection and Chrome trace-event export;
* :mod:`repro.obs.telemetry` — the in-band :class:`StatsPoller`: the
  controller-side view reconstructed purely from OpenFlow statistics
  replies (no oracle reads), with heavy-hitter / churn / loss analytics;
* :mod:`repro.obs.alerts` — declarative threshold alerting with
  fire/clear hysteresis over the polled series;
* :mod:`repro.obs.export` — JSON/CSV/Prometheus exporters and the
  run-report renderer behind ``python -m repro report``;
* :mod:`repro.obs.context` — the :class:`Observability` bundle a deployment
  shares between its components.

:mod:`repro.obs.telemetry` is intentionally *not* imported here: it
depends on :mod:`repro.network.openflow`, which sits above this package
in the layer stack — import it directly where needed.

Everything here is deterministic: snapshots contain only sim-time
quantities and sorted keys, so two runs with the same seed serialise to
byte-identical documents regardless of ``PYTHONHASHSEED``.
"""

from repro.obs.alerts import (
    DEFAULT_ALERT_RULES,
    Alert,
    AlertEngine,
    AlertRule,
)
from repro.obs.context import Observability, live_observabilities
from repro.obs.export import prometheus_text
from repro.obs.flight import (
    DROP_REASONS,
    TRAVERSAL_POINTS,
    FlightRecorder,
    HopRecord,
)
from repro.obs.paths import (
    DeliveryTrace,
    FlightReport,
    analyze_flight,
    chrome_trace,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DELAY_BUCKETS_S,
    OCCUPANCY_BUCKETS,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "Observability",
    "live_observabilities",
    "Alert",
    "AlertEngine",
    "AlertRule",
    "DEFAULT_ALERT_RULES",
    "prometheus_text",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DELAY_BUCKETS_S",
    "OCCUPANCY_BUCKETS",
    "Span",
    "Tracer",
    "FlightRecorder",
    "HopRecord",
    "TRAVERSAL_POINTS",
    "DROP_REASONS",
    "DeliveryTrace",
    "FlightReport",
    "analyze_flight",
    "chrome_trace",
]
