"""Declarative alerting over polled telemetry series.

An :class:`AlertRule` names a gauge metric and a threshold; the
:class:`AlertEngine` evaluates every rule against every label series of
that metric (see :meth:`~repro.obs.registry.MetricsRegistry.gauge_values`)
in *simulated* time — the stats poller calls :meth:`AlertEngine.evaluate`
after each completed poll round, so alerting latency is bounded by the
polling period plus control-channel delay, exactly as in a real SDN
deployment.

Fire/clear semantics follow production alerting systems:

* a rule *fires* after the breach condition held for ``for_windows``
  consecutive evaluations (debouncing one-window spikes);
* a fired alert *clears* only when the value crosses back over
  ``clear_threshold`` (hysteresis — the band between the two thresholds
  never flaps the alert);
* every transition is a structured :class:`Alert` record, and the engine
  keeps registry counters ``alerts.fired{rule=}`` / ``alerts.cleared{rule=}``
  and the gauge ``alerts.active``.

Rate rules are threshold rules over rate series: the poller publishes
per-window rates (e.g. ``telemetry.subspace_rate_pps``) as gauges, so
"subspace hotter than N events/s" is simply a threshold on that metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.registry import MetricsRegistry

__all__ = ["Alert", "AlertRule", "AlertEngine", "DEFAULT_ALERT_RULES"]


@dataclass(frozen=True)
class AlertRule:
    """One declarative threshold rule over a gauge metric.

    ``comparison`` is ``">"`` (breach above) or ``"<"`` (breach below).
    ``clear_threshold`` defaults to the firing threshold (no hysteresis
    band); for a ``">"`` rule it must be <= ``threshold``, for ``"<"``
    >= — the value must retreat past it before the alert clears.
    """

    name: str
    metric: str
    threshold: float
    comparison: str = ">"
    clear_threshold: float | None = None
    for_windows: int = 1

    def __post_init__(self) -> None:
        if self.comparison not in (">", "<"):
            raise ValueError(f"comparison must be '>' or '<', got "
                             f"{self.comparison!r}")
        if self.for_windows < 1:
            raise ValueError("for_windows must be >= 1")
        clear = self.clear_threshold
        if clear is not None:
            ok = (clear <= self.threshold if self.comparison == ">"
                  else clear >= self.threshold)
            if not ok:
                raise ValueError(
                    "clear_threshold must be on the safe side of threshold"
                )

    def breaches(self, value: float) -> bool:
        return (value > self.threshold if self.comparison == ">"
                else value < self.threshold)

    def clears(self, value: float) -> bool:
        clear = (self.threshold if self.clear_threshold is None
                 else self.clear_threshold)
        return value < clear if self.comparison == ">" else value > clear


@dataclass
class Alert:
    """One firing of a rule on one series (cleared in place later)."""

    rule: str
    series: str
    value: float
    fired_at: float
    cleared_at: float | None = None

    @property
    def active(self) -> bool:
        return self.cleared_at is None

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "series": self.series,
            "value": self.value,
            "fired_at": self.fired_at,
            "cleared_at": self.cleared_at,
        }


#: Conservative defaults wired by ``Pleroma.enable_telemetry`` when the
#: caller supplies no rules: TCAM pressure and any inferred port loss.
DEFAULT_ALERT_RULES: tuple[AlertRule, ...] = (
    AlertRule(
        name="tcam-occupancy-high",
        metric="telemetry.tcam_occupancy",
        threshold=0.9,
        clear_threshold=0.75,
    ),
    AlertRule(
        name="port-loss",
        metric="telemetry.port_loss_pps",
        threshold=0.0,
    ),
)


@dataclass
class AlertEngine:
    """Evaluates rules against registry gauges; keeps alert state."""

    registry: MetricsRegistry
    rules: tuple[AlertRule, ...] = DEFAULT_ALERT_RULES
    history: list[Alert] = field(default_factory=list)
    evaluations: int = 0

    def __post_init__(self) -> None:
        self.rules = tuple(self.rules)
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names in {names}")
        self._streaks: dict[tuple[str, str], int] = {}
        self._active: dict[tuple[str, str], Alert] = {}
        self._g_active = self.registry.gauge("alerts.active")

    # ------------------------------------------------------------------
    def evaluate(self, now: float) -> list[Alert]:
        """Run every rule once; returns alerts that fired this round."""
        self.evaluations += 1
        fired: list[Alert] = []
        for rule in self.rules:
            for series, value in self.registry.gauge_values(
                rule.metric
            ).items():
                key = (rule.name, series)
                alert = self._active.get(key)
                if alert is not None:
                    if rule.clears(value):
                        alert.cleared_at = now
                        del self._active[key]
                        self._streaks[key] = 0
                        self.registry.counter(
                            "alerts.cleared", rule=rule.name
                        ).inc()
                    continue
                if rule.breaches(value):
                    streak = self._streaks.get(key, 0) + 1
                    self._streaks[key] = streak
                    if streak >= rule.for_windows:
                        alert = Alert(
                            rule=rule.name, series=series,
                            value=value, fired_at=now,
                        )
                        self._active[key] = alert
                        self.history.append(alert)
                        fired.append(alert)
                        self.registry.counter(
                            "alerts.fired", rule=rule.name
                        ).inc()
                elif rule.clears(value):
                    # inside the hysteresis band the streak is kept
                    self._streaks[key] = 0
        self._g_active.set(float(len(self._active)))
        return fired

    # ------------------------------------------------------------------
    def active_alerts(self) -> list[Alert]:
        """Currently firing alerts, sorted by (rule, series)."""
        return [self._active[key] for key in sorted(self._active)]

    def summary(self) -> dict:
        """Deterministic JSON-compatible digest of the alert state."""
        return {
            "evaluations": self.evaluations,
            "rules": [
                {
                    "name": rule.name,
                    "metric": rule.metric,
                    "comparison": rule.comparison,
                    "threshold": rule.threshold,
                    "clear_threshold": rule.clear_threshold,
                    "for_windows": rule.for_windows,
                }
                for rule in self.rules
            ],
            "active": [alert.to_dict() for alert in self.active_alerts()],
            "history": [alert.to_dict() for alert in self.history],
        }
