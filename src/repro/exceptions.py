"""Exception hierarchy for the PLEROMA reproduction.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch one type at the API boundary.  Subclasses are organised per subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SpatialIndexError(ReproError):
    """Invalid dz-expression, event-space mismatch, or decomposition failure."""


class AddressingError(ReproError):
    """A dz-expression cannot be embedded into the multicast address range."""


class SchemaError(ReproError):
    """An event or subscription does not conform to the event-space schema."""


class TopologyError(ReproError):
    """Invalid network topology: unknown node, missing link, bad port."""


class FlowTableError(ReproError):
    """Malformed flow entry or inconsistent flow-table operation."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation engine."""


class ControllerError(ReproError):
    """Violation of controller invariants (tree disjointness, unknown host)."""


class FederationError(ReproError):
    """Multi-partition interoperability failure (unknown partition, loop)."""


class WorkloadError(ReproError):
    """Invalid workload-generator configuration."""
