"""PLEROMA: a SDN-based high performance publish/subscribe middleware.

A full reproduction of Tariq, Koldehofe, Bhowmik & Rothermel, *PLEROMA: A
SDN-based High Performance Publish/Subscribe Middleware*, Middleware 2014.

The public API is re-exported here; see ``README.md`` for a quickstart and
``DESIGN.md`` for the system inventory.  Typical usage::

    from repro import Pleroma, Filter, Event, paper_fat_tree

    middleware = Pleroma(paper_fat_tree(), dimensions=2)
    publisher = middleware.publisher("h1")
    subscriber = middleware.subscriber("h8")
    publisher.advertise(Filter.of(attr0=(0, 511)))
    subscriber.subscribe(Filter.of(attr0=(0, 255)))
    publisher.publish(Event.of(attr0=100, attr1=7))
    middleware.run()
    assert subscriber.matched
"""

from repro.analysis import (
    FprReport,
    assign_round_robin,
    evaluate_fpr,
)
from repro.core import (
    Advertisement,
    Attribute,
    Dz,
    DzSet,
    Event,
    EventSpace,
    Filter,
    RangePredicate,
    SpatialIndexer,
    Subscription,
)
from repro.controller import PleromaController
from repro.interop import Federation
from repro.middleware import MetricsCollector, Pleroma, Publisher, Subscriber
from repro.network import (
    Network,
    NetworkParams,
    Topology,
    line,
    mininet_fat_tree,
    paper_fat_tree,
    ring,
    star,
)
from repro.sim import Simulator
from repro.workloads import (
    UniformWorkload,
    ZipfianWorkload,
    paper_uniform,
    paper_zipfian,
    zipfian_type,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core data model
    "Advertisement",
    "Attribute",
    "Dz",
    "DzSet",
    "Event",
    "EventSpace",
    "Filter",
    "RangePredicate",
    "SpatialIndexer",
    "Subscription",
    # system components
    "PleromaController",
    "Federation",
    "Pleroma",
    "Publisher",
    "Subscriber",
    "MetricsCollector",
    "Network",
    "NetworkParams",
    "Simulator",
    # topologies
    "Topology",
    "paper_fat_tree",
    "mininet_fat_tree",
    "ring",
    "line",
    "star",
    # workloads
    "UniformWorkload",
    "ZipfianWorkload",
    "paper_uniform",
    "paper_zipfian",
    "zipfian_type",
    # analysis
    "FprReport",
    "assign_round_robin",
    "evaluate_fpr",
]
