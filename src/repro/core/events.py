"""Event-space schema, attributes, and events.

PLEROMA follows the content-based subscription model (Sec. 2): an event is a
set of attribute/value pairs, i.e. a point in a multi-dimensional event space
Omega whose dimensions are the schema attributes.  The evaluation (Sec. 6.1)
uses a schema of up to 10 attributes, each with domain ``[0, 1023]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping, Sequence

from repro.exceptions import SchemaError

__all__ = ["Attribute", "EventSpace", "Event"]


@dataclass(frozen=True)
class Attribute:
    """One dimension of the event space.

    ``low`` is inclusive, ``high`` exclusive; normalisation maps the domain
    onto ``[0, 1)``.  The paper's integer attributes "in the range [0, 1023]"
    are modelled with ``low=0, high=1024, grain=1``.

    ``grain`` is the value resolution of the attribute: for integer-valued
    attributes it is 1, meaning a closed predicate bound ``high`` really
    covers the half-open raw interval ``[low, high + 1)``.  The spatial
    index uses it so that events sitting exactly on a subscription's upper
    bound are never lost to a half-open cell boundary (no false negatives).
    Continuous attributes use ``grain=0``; for them boundary points have
    measure zero.
    """

    name: str
    low: float = 0.0
    high: float = 1024.0
    grain: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if not self.high > self.low:
            raise SchemaError(
                f"attribute {self.name!r}: high ({self.high}) must exceed "
                f"low ({self.low})"
            )
        if self.grain < 0:
            raise SchemaError(
                f"attribute {self.name!r}: grain must be non-negative"
            )

    def normalize(self, value: float) -> float:
        """Map a raw value into ``[0, 1)``; raises if outside the domain."""
        if not (self.low <= value < self.high):
            raise SchemaError(
                f"value {value!r} outside domain [{self.low}, {self.high}) "
                f"of attribute {self.name!r}"
            )
        return (value - self.low) / (self.high - self.low)

    def denormalize(self, fraction: float) -> float:
        """Inverse of :meth:`normalize` (fraction in ``[0, 1)``)."""
        return self.low + fraction * (self.high - self.low)


@dataclass(frozen=True)
class EventSpace:
    """An ordered collection of attributes defining Omega.

    The attribute order matters: spatial indexing cycles through dimensions
    round-robin, so dimension ``i`` owns dz bits ``i, i+k, i+2k, ...`` where
    ``k`` is the number of dimensions.
    """

    attributes: tuple[Attribute, ...]
    _index: Mapping[str, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in {names}")
        if not names:
            raise SchemaError("event space needs at least one attribute")
        object.__setattr__(
            self, "_index", {a.name: i for i, a in enumerate(self.attributes)}
        )

    @classmethod
    def of(cls, *attributes: Attribute | str) -> "EventSpace":
        """Build a space from attributes or bare names (default domain)."""
        return cls(
            tuple(
                a if isinstance(a, Attribute) else Attribute(a)
                for a in attributes
            )
        )

    @classmethod
    def paper_schema(cls, dimensions: int = 10) -> "EventSpace":
        """The evaluation schema: ``dimensions`` attributes over [0, 1024)."""
        if not 1 <= dimensions <= 26:
            raise SchemaError("paper schema supports 1..26 dimensions")
        return cls(
            tuple(
                Attribute(f"attr{i}", low=0.0, high=1024.0, grain=1.0)
                for i in range(dimensions)
            )
        )

    @property
    def dimensions(self) -> int:
        return len(self.attributes)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}") from None

    def attribute(self, name: str) -> Attribute:
        return self.attributes[self.index_of(name)]

    def restrict(self, names: Sequence[str]) -> "EventSpace":
        """The sub-space over the given attributes, in the given order.

        Dimension selection (Sec. 5) re-indexes the system over the selected
        subset Omega_D; this method produces that reduced space.
        """
        return EventSpace(tuple(self.attribute(n) for n in names))

    def point(self, event: "Event") -> tuple[float, ...]:
        """Normalised coordinates of an event in this space.

        Only the attributes of *this* space are read, so a full-schema event
        projects naturally onto a restricted space.
        """
        return tuple(
            a.normalize(event.value(a.name)) for a in self.attributes
        )


@dataclass(frozen=True)
class Event:
    """A single publication: attribute/value pairs (a point in Omega)."""

    values: Mapping[str, float]
    event_id: int = 0

    @classmethod
    def of(cls, event_id: int = 0, **values: float) -> "Event":
        return cls(values=dict(values), event_id=event_id)

    def value(self, name: str) -> float:
        try:
            return self.values[name]
        except KeyError:
            raise SchemaError(f"event lacks attribute {name!r}") from None

    def names(self) -> Iterable[str]:
        return self.values.keys()

    def __str__(self) -> str:
        body = ", ".join(f"{k}={v:g}" for k, v in sorted(self.values.items()))
        return f"Event#{self.event_id}({body})"
