"""ASCII rendering of 2-D event-space decompositions.

Debugging the spatial index is much easier when you can *see* it: these
helpers draw a DZ region over a two-dimensional event space as a character
grid (first dimension = x, left to right; second dimension = y, bottom to
top, like Fig. 2 of the paper), and print DZ sets as indented trees.

    >>> space = EventSpace.of(Attribute("A", 0, 100), Attribute("B", 0, 100))
    >>> indexer = SpatialIndexer(space, max_dz_length=8)
    >>> print(render_region(indexer, DzSet.of("100", "110")))  # Fig. 2 Adv
"""

from __future__ import annotations

from repro.core.dz import Dz
from repro.core.dzset import DzSet
from repro.core.spatial_index import SpatialIndexer
from repro.core.subscription import Filter
from repro.exceptions import SpatialIndexError

__all__ = ["render_region", "render_filter", "render_dz_tree"]


def render_region(
    indexer: SpatialIndexer,
    region: DzSet,
    width: int = 32,
    height: int = 16,
    fill: str = "#",
    empty: str = ".",
) -> str:
    """Draw a DZ region of a 2-D space as a ``width`` x ``height`` grid.

    Each character samples the centre of its grid cell: ``fill`` if the
    point lies inside the region, ``empty`` otherwise.  The top row is the
    high end of the second dimension.
    """
    if indexer.space.dimensions != 2:
        raise SpatialIndexError(
            "render_region draws 2-D spaces only "
            f"(got {indexer.space.dimensions} dimensions)"
        )
    if width < 1 or height < 1:
        raise SpatialIndexError("grid must be at least 1x1")
    rows: list[str] = []
    probe_len = indexer.max_dz_length
    for row in range(height):
        y = 1.0 - (row + 0.5) / height  # top row = high y
        cells = []
        for col in range(width):
            x = (col + 0.5) / width
            probe = indexer.point_to_dz((x, y), length=probe_len)
            cells.append(fill if region.overlaps_dz(probe) else empty)
        rows.append("".join(cells))
    return "\n".join(rows)


def render_filter(
    indexer: SpatialIndexer,
    filt: Filter,
    width: int = 32,
    height: int = 16,
) -> str:
    """Draw a filter's enclosing DZ approximation over its exact box.

    ``#`` marks cells inside both the approximation and the true box,
    ``+`` marks approximation-only cells (the false-positive fringe),
    ``.`` marks cells outside the approximation.
    """
    if indexer.space.dimensions != 2:
        raise SpatialIndexError("render_filter draws 2-D spaces only")
    region = indexer.filter_to_dzset(filt)
    box = filt.normalized_box(indexer.space)
    rows: list[str] = []
    for row in range(height):
        y = 1.0 - (row + 0.5) / height
        cells = []
        for col in range(width):
            x = (col + 0.5) / width
            probe = indexer.point_to_dz((x, y), length=indexer.max_dz_length)
            in_region = region.overlaps_dz(probe)
            in_box = all(
                lo <= coord < hi
                for coord, (lo, hi) in zip((x, y), box)
            )
            if in_region and in_box:
                cells.append("#")
            elif in_region:
                cells.append("+")
            else:
                cells.append(".")
        rows.append("".join(cells))
    return "\n".join(rows)


def render_dz_tree(region: DzSet) -> str:
    """Print a DZ set as an indented binary-trie sketch.

    Members are marked ``*``; internal prefixes show the path structure::

        <root>
          0
            00 *
          1
            10
              101 *
    """
    members = set(region.members)
    needed: set[str] = set()
    for dz in members:
        for i in range(len(dz.bits) + 1):
            needed.add(dz.bits[:i])
    lines: list[str] = []

    def visit(bits: str, depth: int) -> None:
        label = bits if bits else "<root>"
        marker = " *" if Dz(bits) in members else ""
        lines.append("  " * depth + label + marker)
        for bit in ("0", "1"):
            child = bits + bit
            if child in needed:
                visit(child, depth + 1)

    visit("", 0)
    return "\n".join(lines)
