"""Subscriptions and advertisements as attribute-range predicates.

A subscription (or advertisement) constrains a subset of the schema
attributes to closed intervals; unconstrained attributes accept any value.
Figure 2 of the paper shows the running example
``Adv = { A = [50, 75], B = [0, 100] }`` and its decomposition into the DZ
set ``{110, 100}`` — that conversion lives in
:mod:`repro.core.spatial_index`; this module is the predicate model itself.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from collections.abc import Iterator, Mapping

from repro.core.events import Event, EventSpace
from repro.exceptions import SchemaError

__all__ = ["RangePredicate", "Filter", "Subscription", "Advertisement"]

_id_counter = itertools.count(1)


@dataclass(frozen=True)
class RangePredicate:
    """A closed interval constraint ``low <= value <= high``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise SchemaError(
                f"range high ({self.high}) below low ({self.low})"
            )

    def matches(self, value: float) -> bool:
        return self.low <= value <= self.high

    def overlaps(self, other: "RangePredicate") -> bool:
        return self.low <= other.high and other.low <= self.high

    def contains(self, other: "RangePredicate") -> bool:
        return self.low <= other.low and other.high <= self.high

    def __str__(self) -> str:
        return f"[{self.low:g}, {self.high:g}]"


@dataclass(frozen=True)
class Filter:
    """A conjunction of range predicates over named attributes.

    The common behaviour of subscriptions and advertisements: both are
    rectangular regions ("boxes") of the event space.
    """

    predicates: Mapping[str, RangePredicate]

    @classmethod
    def of(cls, **ranges: tuple[float, float]) -> "Filter":
        """Build a filter from ``name=(low, high)`` keyword pairs."""
        return cls(
            predicates={
                name: RangePredicate(low, high)
                for name, (low, high) in ranges.items()
            }
        )

    def constrained_names(self) -> Iterator[str]:
        return iter(self.predicates.keys())

    def predicate_for(self, name: str) -> RangePredicate | None:
        """The constraint on ``name``, or None if unconstrained."""
        return self.predicates.get(name)

    def matches(self, event: Event) -> bool:
        """True iff the event satisfies every predicate."""
        return all(
            pred.matches(event.value(name))
            for name, pred in self.predicates.items()
        )

    def matches_along(self, name: str, event: Event) -> bool:
        """True iff the event satisfies the constraint on one dimension.

        Dimension selection (Sec. 5) counts, per dimension ``d``, the
        subscriptions an event matches *along d alone*; this is that test.
        An unconstrained dimension matches everything.
        """
        pred = self.predicates.get(name)
        return pred is None or pred.matches(event.value(name))

    def normalized_box(
        self, space: EventSpace
    ) -> tuple[tuple[float, float], ...]:
        """The filter as half-open normalised intervals per space dimension.

        Unconstrained dimensions yield ``(0.0, 1.0)``.  The closed raw
        interval ``[low, high]`` maps to the half-open normalised interval
        ``[low, high + grain)``: for integer attributes (grain 1) the upper
        bound stays inside the box so boundary events are never lost; for
        continuous attributes (grain 0) the bound is exact and boundary
        points have measure zero.
        """
        box: list[tuple[float, float]] = []
        for attr in space.attributes:
            pred = self.predicates.get(attr.name)
            if pred is None:
                box.append((0.0, 1.0))
                continue
            lo = attr.normalize(max(pred.low, attr.low))
            raw_high = min(pred.high + attr.grain, attr.high)
            if raw_high >= attr.high:
                hi = 1.0
            else:
                hi = attr.normalize(raw_high)
            box.append((lo, max(hi, lo)))
        return tuple(box)

    def overlaps(self, other: "Filter") -> bool:
        """True iff the two boxes intersect (per-dimension interval overlap)."""
        for name, pred in self.predicates.items():
            other_pred = other.predicates.get(name)
            if other_pred is not None and not pred.overlaps(other_pred):
                return False
        return True

    def __str__(self) -> str:
        body = ", ".join(
            f"{k}={v}" for k, v in sorted(self.predicates.items())
        )
        return "{" + body + "}"


@dataclass(frozen=True)
class Subscription:
    """A consumer's interest: a filter plus a stable identity."""

    filter: Filter
    sub_id: int = field(default_factory=lambda: next(_id_counter))

    @classmethod
    def of(cls, **ranges: tuple[float, float]) -> "Subscription":
        return cls(filter=Filter.of(**ranges))

    def matches(self, event: Event) -> bool:
        return self.filter.matches(event)

    def __str__(self) -> str:
        return f"Sub#{self.sub_id}{self.filter}"


@dataclass(frozen=True)
class Advertisement:
    """A producer's declared publication region: a filter plus identity."""

    filter: Filter
    adv_id: int = field(default_factory=lambda: next(_id_counter))

    @classmethod
    def of(cls, **ranges: tuple[float, float]) -> "Advertisement":
        return cls(filter=Filter.of(**ranges))

    def covers(self, event: Event) -> bool:
        return self.filter.matches(event)

    def __str__(self) -> str:
        return f"Adv#{self.adv_id}{self.filter}"
