"""Spatial indexing: between filters/events and dz-expressions.

Implements the decomposition illustrated in Fig. 2 of the paper.  The event
space is bisected recursively, cycling through the dimensions round-robin:
dz bit ``j`` halves dimension ``j mod k`` (``k`` = number of dimensions).  A
subspace of length-``L`` dz therefore fixes roughly ``L / k`` bits of every
dimension.

Three conversions are provided:

* ``dz -> box``: the normalised half-open hyper-rectangle of a subspace;
* ``event -> dz``: the maximum-length dz containing the event's point
  (this is what a publisher stamps into the packet's destination address);
* ``filter -> DzSet``: an *enclosing approximation* of a subscription or
  advertisement box as a set of subspaces.  Cells entirely inside the box
  are emitted as-is; cells partially overlapping are refined until the dz
  length limit (or a cell budget) is reached and then emitted whole, so the
  approximation never loses events (no false negatives) but may admit false
  positives — the paper's Sec. 6.4 quantifies exactly this effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.dz import Dz, ROOT
from repro.core.dzset import DzSet
from repro.core.events import Event, EventSpace
from repro.core.subscription import Filter
from repro.exceptions import SpatialIndexError

__all__ = ["SpatialIndexer", "DEFAULT_MAX_DZ_LENGTH"]

#: dz bits available inside an IPv6 multicast address after the ff0e prefix
#: is 112; the evaluation typically uses much shorter expressions.
DEFAULT_MAX_DZ_LENGTH = 24

Box = tuple[tuple[float, float], ...]


def _cell_of(dz: Dz, dimensions: int) -> Box:
    """The normalised half-open hyper-rectangle denoted by ``dz``."""
    lows = [0.0] * dimensions
    highs = [1.0] * dimensions
    for j, bit in enumerate(dz.bits):
        dim = j % dimensions
        mid = (lows[dim] + highs[dim]) / 2.0
        if bit == "0":
            highs[dim] = mid
        else:
            lows[dim] = mid
    return tuple(zip(lows, highs))


def _box_relation(cell: Box, box: Box) -> str:
    """Classify ``cell`` against ``box``: 'inside', 'disjoint' or 'partial'."""
    inside = True
    for (c_lo, c_hi), (b_lo, b_hi) in zip(cell, box):
        if c_lo >= b_hi or b_lo >= c_hi:
            return "disjoint"
        if c_lo < b_lo or c_hi > b_hi:
            inside = False
    return "inside" if inside else "partial"


@dataclass(frozen=True)
class SpatialIndexer:
    """Converts between the event space of a schema and dz-expressions.

    Parameters
    ----------
    space:
        The (possibly dimension-selected) event space to index.
    max_dz_length:
        The ``L_dz`` limit — the number of dz bits the reserved multicast
        address range can carry (Sec. 6.4).
    max_cells:
        Budget on the number of subspaces used to approximate one filter.
        When refinement would exceed the budget, partially-overlapping
        cells are emitted whole (a coarser enclosing approximation).
    """

    space: EventSpace
    max_dz_length: int = DEFAULT_MAX_DZ_LENGTH
    max_cells: int = 64

    def __post_init__(self) -> None:
        if self.max_dz_length < 1:
            raise SpatialIndexError("max_dz_length must be >= 1")
        if self.max_cells < 1:
            raise SpatialIndexError("max_cells must be >= 1")

    # ------------------------------------------------------------------
    # dz -> geometry
    # ------------------------------------------------------------------
    def cell(self, dz: Dz) -> Box:
        """The normalised box of a subspace in this space."""
        return _cell_of(dz, self.space.dimensions)

    # ------------------------------------------------------------------
    # events -> dz
    # ------------------------------------------------------------------
    def point_to_dz(
        self, point: Sequence[float], length: int | None = None
    ) -> Dz:
        """The dz of given length containing a normalised point.

        Bit interleaving: bit ``j`` of the dz is bit ``j // k`` of the binary
        expansion of coordinate ``j mod k``.
        """
        length = self.max_dz_length if length is None else length
        k = self.space.dimensions
        if len(point) != k:
            raise SpatialIndexError(
                f"point has {len(point)} coordinates, space has {k}"
            )
        for coordinate in point:
            if not (0.0 <= coordinate < 1.0):
                raise SpatialIndexError(
                    f"normalised coordinate {coordinate!r} outside [0, 1)"
                )
        lows = [0.0] * k
        highs = [1.0] * k
        bits: list[str] = []
        for j in range(length):
            dim = j % k
            mid = (lows[dim] + highs[dim]) / 2.0
            if point[dim] < mid:
                bits.append("0")
                highs[dim] = mid
            else:
                bits.append("1")
                lows[dim] = mid
        return Dz("".join(bits))

    def event_to_dz(self, event: Event, length: int | None = None) -> Dz:
        """The dz a publisher stamps into an event's destination address."""
        return self.point_to_dz(self.space.point(event), length)

    # ------------------------------------------------------------------
    # filters -> DZ sets
    # ------------------------------------------------------------------
    def filter_to_dzset(
        self, filt: Filter, max_len: int | None = None
    ) -> DzSet:
        """An enclosing approximation of a filter box as a DZ set.

        Breadth-first refinement: a frontier of candidate cells is split as
        long as splitting is allowed by both the dz-length limit and the
        cell budget.  Cells fully inside the box are final; partially
        overlapping cells on a frontier that can no longer refine are
        emitted whole, guaranteeing the result covers the box.
        """
        max_len = self.max_dz_length if max_len is None else max_len
        if max_len < 1:
            raise SpatialIndexError("max_len must be >= 1")
        box = filt.normalized_box(self.space)
        k = self.space.dimensions

        final: list[Dz] = []
        frontier: list[Dz] = [ROOT]
        while frontier:
            next_frontier: list[Dz] = []
            for dz in frontier:
                relation = _box_relation(_cell_of(dz, k), box)
                if relation == "disjoint":
                    continue
                if relation == "inside" or len(dz) >= max_len:
                    final.append(dz)
                else:
                    next_frontier.append(dz)
            # Each partial cell splits into two; stop refining when the
            # worst-case output would exceed the budget.
            if len(final) + 2 * len(next_frontier) > self.max_cells:
                final.extend(next_frontier)
                break
            frontier = [
                child
                for dz in next_frontier
                for child in (dz.child(0), dz.child(1))
            ]
        return DzSet(frozenset(final))

    def matches(self, dzset: DzSet, event: Event) -> bool:
        """True iff the event's maximal dz falls inside the DZ region.

        This is the network-level matching PLEROMA performs: the TCAM
        compares the event's dz (in the destination IP) against installed
        prefixes, i.e. against the members of a DZ set.
        """
        return dzset.overlaps_dz(self.event_to_dz(event))
