"""Wire codecs: JSON-dict encoding of the core data model.

A deployable middleware needs interchange formats: clients serialise
events and subscriptions onto the wire, controllers persist and exchange
state.  This module provides lossless, versioned dict encodings (JSON-
compatible: only ``str``/``int``/``float``/``list``/``dict``) for every
core object, plus bytes helpers.

Every codec is a pair ``encode_x`` / ``decode_x`` with
``decode_x(encode_x(v)) == v`` (property-tested).  Identities
(``sub_id``/``adv_id``/``event_id``) round-trip, so a decoded object is
the *same* logical entity.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from typing import Any

from repro.core.dz import Dz
from repro.core.dzset import DzSet
from repro.core.events import Attribute, Event, EventSpace
from repro.core.subscription import (
    Advertisement,
    Filter,
    RangePredicate,
    Subscription,
)
from repro.exceptions import SchemaError

__all__ = [
    "encode_event",
    "decode_event",
    "encode_filter",
    "decode_filter",
    "encode_subscription",
    "decode_subscription",
    "encode_advertisement",
    "decode_advertisement",
    "encode_dzset",
    "decode_dzset",
    "encode_space",
    "decode_space",
    "to_bytes",
    "from_bytes",
]

_VERSION = 1


def _envelope(kind: str, body: Mapping[str, Any]) -> dict[str, Any]:
    return {"v": _VERSION, "kind": kind, **body}


def _check(payload: Mapping[str, Any], kind: str) -> None:
    if payload.get("v") != _VERSION:
        raise SchemaError(
            f"unsupported codec version {payload.get('v')!r}"
        )
    if payload.get("kind") != kind:
        raise SchemaError(
            f"expected a {kind!r} payload, got {payload.get('kind')!r}"
        )


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------
def encode_event(event: Event) -> dict[str, Any]:
    return _envelope(
        "event",
        {"id": event.event_id, "values": dict(event.values)},
    )


def decode_event(payload: Mapping[str, Any]) -> Event:
    _check(payload, "event")
    return Event(values=dict(payload["values"]), event_id=payload["id"])


# ----------------------------------------------------------------------
# filters / subscriptions / advertisements
# ----------------------------------------------------------------------
def encode_filter(filt: Filter) -> dict[str, Any]:
    return _envelope(
        "filter",
        {
            "predicates": {
                name: [pred.low, pred.high]
                for name, pred in filt.predicates.items()
            }
        },
    )


def decode_filter(payload: Mapping[str, Any]) -> Filter:
    _check(payload, "filter")
    return Filter(
        predicates={
            name: RangePredicate(low, high)
            for name, (low, high) in payload["predicates"].items()
        }
    )


def encode_subscription(sub: Subscription) -> dict[str, Any]:
    body = encode_filter(sub.filter)
    body.pop("kind")
    return _envelope("subscription", {"id": sub.sub_id, **body})


def decode_subscription(payload: Mapping[str, Any]) -> Subscription:
    _check(payload, "subscription")
    filt = decode_filter(
        {"v": _VERSION, "kind": "filter", "predicates": payload["predicates"]}
    )
    return Subscription(filter=filt, sub_id=payload["id"])


def encode_advertisement(adv: Advertisement) -> dict[str, Any]:
    body = encode_filter(adv.filter)
    body.pop("kind")
    return _envelope("advertisement", {"id": adv.adv_id, **body})


def decode_advertisement(payload: Mapping[str, Any]) -> Advertisement:
    _check(payload, "advertisement")
    filt = decode_filter(
        {"v": _VERSION, "kind": "filter", "predicates": payload["predicates"]}
    )
    return Advertisement(filter=filt, adv_id=payload["id"])


# ----------------------------------------------------------------------
# dz sets and event spaces
# ----------------------------------------------------------------------
def encode_dzset(dzset: DzSet) -> dict[str, Any]:
    return _envelope("dzset", {"members": [dz.bits for dz in dzset]})


def decode_dzset(payload: Mapping[str, Any]) -> DzSet:
    _check(payload, "dzset")
    return DzSet(frozenset(Dz(bits) for bits in payload["members"]))


def encode_space(space: EventSpace) -> dict[str, Any]:
    return _envelope(
        "space",
        {
            "attributes": [
                {
                    "name": a.name,
                    "low": a.low,
                    "high": a.high,
                    "grain": a.grain,
                }
                for a in space.attributes
            ]
        },
    )


def decode_space(payload: Mapping[str, Any]) -> EventSpace:
    _check(payload, "space")
    return EventSpace(
        tuple(
            Attribute(
                name=a["name"], low=a["low"], high=a["high"], grain=a["grain"]
            )
            for a in payload["attributes"]
        )
    )


# ----------------------------------------------------------------------
# bytes helpers
# ----------------------------------------------------------------------
def to_bytes(payload: Mapping[str, Any]) -> bytes:
    """Compact UTF-8 JSON bytes of any encoded payload."""
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode()


def from_bytes(data: bytes) -> dict[str, Any]:
    try:
        payload = json.loads(data.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise SchemaError(f"malformed payload: {exc}") from None
    if not isinstance(payload, dict):
        raise SchemaError("payload must be a JSON object")
    return payload
