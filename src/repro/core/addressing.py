"""Embedding dz-expressions into IPv6 multicast addresses.

PLEROMA installs flows only on fields corresponding to IP multicast
addresses (Sec. 2) so that content filtering coexists with other services.
Section 3.3.2 gives the encoding: a subspace ``dz`` maps to the IPv6
multicast address whose first 16 bits are ``ff0e`` and whose next ``|dz|``
bits are the dz string, zero-padded — matched with a CIDR mask of length
``16 + |dz|``.  Examples from the paper (both verified in the test suite):

* ``dz = 101``     -> ``ff0e:a000::/19``
* ``dz = 101101``  -> ``ff0e:b400::/22``

Longest-prefix/priority matching on these addresses then implements the dz
covering relation in TCAM hardware: a finer event address matches every
coarser installed prefix.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass

from repro.core.dz import Dz
from repro.exceptions import AddressingError

__all__ = [
    "MulticastPrefix",
    "dz_to_prefix",
    "prefix_to_dz",
    "dz_to_address",
    "address_to_dz",
    "PUBSUB_CONTROL_ADDRESS",
    "MULTICAST_BASE",
    "MAX_DZ_BITS",
]

#: ff0e::/16 — the transient, global-scope IPv6 multicast range the paper
#: reserves for publish/subscribe.
MULTICAST_BASE = 0xFF0E << 112
_BASE_MASK_LEN = 16

#: Address bits available to carry dz bits.
MAX_DZ_BITS = 128 - _BASE_MASK_LEN

#: The reserved address hosts use to reach the controller (the paper's
#: ``IP_pub/sub``): switches never install flows for it, so such packets go
#: to the control plane.
PUBSUB_CONTROL_ADDRESS = MULTICAST_BASE | 0xFFFF_FFFF_FFFF_FFFF_FFFF_FFFF_FFFF


@dataclass(frozen=True, order=True)
class MulticastPrefix:
    """An IPv6 CIDR prefix: 128-bit network address plus mask length.

    This is the match field of a PLEROMA flow entry.  Ordering is by
    ``(prefix_len, network)`` so longer (finer) prefixes sort last.
    """

    prefix_len: int
    network: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_len <= 128:
            raise AddressingError(f"bad prefix length {self.prefix_len}")
        if not 0 <= self.network < (1 << 128):
            raise AddressingError("network address outside 128-bit range")
        if self.network & ~self.mask:
            raise AddressingError(
                "network address has bits set outside its mask"
            )

    @property
    def mask(self) -> int:
        """The 128-bit netmask as an integer."""
        if self.prefix_len == 0:
            return 0
        return ((1 << self.prefix_len) - 1) << (128 - self.prefix_len)

    def matches(self, address: int) -> bool:
        """TCAM semantics: the address agrees on all masked bits."""
        return (address & self.mask) == self.network

    def covers(self, other: "MulticastPrefix") -> bool:
        """CIDR containment: shorter prefix matching the other's network."""
        return self.prefix_len <= other.prefix_len and self.matches(
            other.network
        )

    def __str__(self) -> str:
        return f"{ipaddress.IPv6Address(self.network)}/{self.prefix_len}"


def dz_to_prefix(dz: Dz) -> MulticastPrefix:
    """The CIDR prefix a flow uses to match all events inside ``dz``."""
    if len(dz) > MAX_DZ_BITS:
        raise AddressingError(
            f"dz of length {len(dz)} exceeds the {MAX_DZ_BITS} bits "
            "available after the ff0e prefix"
        )
    network = MULTICAST_BASE | (dz.value << (MAX_DZ_BITS - len(dz)))
    return MulticastPrefix(prefix_len=_BASE_MASK_LEN + len(dz), network=network)


def prefix_to_dz(prefix: MulticastPrefix) -> Dz:
    """Recover the dz carried by a publish/subscribe CIDR prefix."""
    if prefix.prefix_len < _BASE_MASK_LEN:
        raise AddressingError(f"prefix {prefix} shorter than the ff0e base")
    if (prefix.network >> 112) != 0xFF0E:
        raise AddressingError(f"prefix {prefix} outside ff0e::/16")
    dz_len = prefix.prefix_len - _BASE_MASK_LEN
    value = (prefix.network >> (MAX_DZ_BITS - dz_len)) & ((1 << dz_len) - 1) \
        if dz_len else 0
    return Dz.from_value(value, dz_len)


def dz_to_address(dz: Dz) -> int:
    """The concrete destination address of an event stamped with ``dz``.

    Events carry a dz "of maximum length" (Sec. 2); the address is simply
    the network address of the corresponding prefix.
    """
    return dz_to_prefix(dz).network


def address_to_dz(address: int, dz_len: int) -> Dz:
    """Recover the leading ``dz_len`` bits of an event's address."""
    if not 0 <= dz_len <= MAX_DZ_BITS:
        raise AddressingError(f"bad dz length {dz_len}")
    if (address >> 112) != 0xFF0E:
        raise AddressingError(
            f"address {ipaddress.IPv6Address(address)} outside ff0e::/16"
        )
    value = (address >> (MAX_DZ_BITS - dz_len)) & ((1 << dz_len) - 1) \
        if dz_len else 0
    return Dz.from_value(value, dz_len)
