"""Core data model: dz algebra, spatial indexing, addressing, events."""

from repro.core.addressing import (
    MAX_DZ_BITS,
    MULTICAST_BASE,
    PUBSUB_CONTROL_ADDRESS,
    MulticastPrefix,
    address_to_dz,
    dz_to_address,
    dz_to_prefix,
    prefix_to_dz,
)
from repro.core.codec import (
    decode_advertisement,
    decode_dzset,
    decode_event,
    decode_filter,
    decode_space,
    decode_subscription,
    encode_advertisement,
    encode_dzset,
    encode_event,
    encode_filter,
    encode_space,
    encode_subscription,
    from_bytes,
    to_bytes,
)
from repro.core.dz import ROOT, Dz
from repro.core.render import render_dz_tree, render_filter, render_region
from repro.core.dzset import EMPTY, OMEGA, DzSet
from repro.core.events import Attribute, Event, EventSpace
from repro.core.spatial_index import DEFAULT_MAX_DZ_LENGTH, SpatialIndexer
from repro.core.subscription import (
    Advertisement,
    Filter,
    RangePredicate,
    Subscription,
)

__all__ = [
    "Dz",
    "ROOT",
    "DzSet",
    "EMPTY",
    "OMEGA",
    "Attribute",
    "Event",
    "EventSpace",
    "SpatialIndexer",
    "DEFAULT_MAX_DZ_LENGTH",
    "Advertisement",
    "Filter",
    "RangePredicate",
    "Subscription",
    "MulticastPrefix",
    "dz_to_prefix",
    "prefix_to_dz",
    "dz_to_address",
    "address_to_dz",
    "MULTICAST_BASE",
    "MAX_DZ_BITS",
    "PUBSUB_CONTROL_ADDRESS",
    "render_region",
    "render_filter",
    "render_dz_tree",
    "encode_event",
    "decode_event",
    "encode_filter",
    "decode_filter",
    "encode_subscription",
    "decode_subscription",
    "encode_advertisement",
    "decode_advertisement",
    "encode_dzset",
    "decode_dzset",
    "encode_space",
    "decode_space",
    "to_bytes",
    "from_bytes",
]
