"""DZ sets: canonical collections of dz-expressions.

Advertisements, subscriptions and spanning trees in PLEROMA are all described
by a *set* of dz-expressions, written ``DZ`` in the paper.  This module gives
that set a canonical form and the containment/overlap algebra the controller
relies on (Algorithm 1 computes ``DZ(t) ∩ dz_i``, uncovered remainders, and
covering checks between DZ sets).

Canonical form invariants:

* no member covers another member (redundant members removed);
* no two members are complete siblings (``...0`` and ``...1`` merge into
  their parent, applied to a fixed point).

Canonicalisation makes equality semantic: two DZ sets describing the same
region compare equal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator

from repro.core.dz import Dz, ROOT

__all__ = ["DzSet", "EMPTY", "OMEGA"]


def _canonicalize(members: Iterable[Dz]) -> frozenset[Dz]:
    """Reduce ``members`` to canonical form (cover-free, sibling-merged)."""
    # Drop members covered by another member.  Sorting by length means any
    # cover of m precedes m, so a single pass with a prefix check suffices.
    pending = sorted(set(members), key=lambda d: (len(d), d.bits))
    kept: list[Dz] = []
    for dz in pending:
        if not any(k.covers(dz) for k in kept):
            kept.append(dz)
    # Merge complete sibling pairs to a fixed point.  Each merge may enable
    # another one level up, hence the loop.
    current = set(kept)
    changed = True
    while changed:
        changed = False
        for dz in sorted(current, key=len, reverse=True):
            if dz not in current or dz.is_root:
                continue
            sib = dz.sibling()
            if sib in current:
                current.discard(dz)
                current.discard(sib)
                current.add(dz.parent())
                changed = True
    return frozenset(current)


@dataclass(frozen=True)
class DzSet:
    """An immutable, canonical set of disjoint dz-expressions."""

    members: frozenset[Dz] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        object.__setattr__(self, "members", _canonicalize(self.members))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, *dz: Dz | str) -> "DzSet":
        """Build a DzSet from dz-expressions or plain bit strings."""
        return cls(frozenset(d if isinstance(d, Dz) else Dz(d) for d in dz))

    @classmethod
    def from_iterable(cls, dzs: Iterable[Dz | str]) -> "DzSet":
        return cls.of(*dzs)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Dz]:
        return iter(sorted(self.members, key=lambda d: (len(d), d.bits)))

    def __len__(self) -> int:
        return len(self.members)

    def __bool__(self) -> bool:
        return bool(self.members)

    def __contains__(self, dz: Dz) -> bool:
        return dz in self.members

    def __str__(self) -> str:
        return "{" + ", ".join(str(d) for d in self) + "}"

    @property
    def is_empty(self) -> bool:
        return not self.members

    # ------------------------------------------------------------------
    # region algebra
    # ------------------------------------------------------------------
    def covers_dz(self, dz: Dz) -> bool:
        """True iff the region fully contains the subspace ``dz``.

        Because members are canonical (sibling-merged), full containment of
        ``dz`` is witnessed by a single member covering it.
        """
        return any(m.covers(dz) for m in self.members)

    def overlaps_dz(self, dz: Dz) -> bool:
        """True iff the region intersects the subspace ``dz``."""
        return any(m.overlaps(dz) for m in self.members)

    def covers(self, other: "DzSet") -> bool:
        """True iff every subspace of ``other`` lies inside this region."""
        return all(self.covers_dz(m) for m in other.members)

    def overlaps(self, other: "DzSet") -> bool:
        """True iff the two regions intersect anywhere."""
        return any(self.overlaps_dz(m) for m in other.members)

    def intersect_dz(self, dz: Dz) -> "DzSet":
        """The part of this region inside the subspace ``dz``."""
        parts = [m.intersect(dz) for m in self.members]
        return DzSet(frozenset(p for p in parts if p is not None))

    def intersect(self, other: "DzSet") -> "DzSet":
        """Region intersection (the paper's ``DZ_i ∩ DZ_j``)."""
        parts: set[Dz] = set()
        for m in self.members:
            for o in other.members:
                hit = m.intersect(o)
                if hit is not None:
                    parts.add(hit)
        return DzSet(frozenset(parts))

    def union(self, other: "DzSet") -> "DzSet":
        return DzSet(self.members | other.members)

    def subtract_dz(self, dz: Dz) -> "DzSet":
        """The part of this region outside the subspace ``dz``."""
        parts: list[Dz] = []
        for m in self.members:
            parts.extend(m.subtract(dz))
        return DzSet(frozenset(parts))

    def subtract(self, other: "DzSet") -> "DzSet":
        """Region difference (the paper's uncovered remainder, Alg. 1 l.10)."""
        result = self
        for o in other.members:
            result = result.subtract_dz(o)
            if result.is_empty:
                break
        return result

    def truncate(self, max_len: int) -> "DzSet":
        """Coarsen every member to at most ``max_len`` bits (L_dz limit)."""
        return DzSet(frozenset(m.truncate(max_len) for m in self.members))

    def coarsen_to_common_prefix(self) -> Dz:
        """The finest single dz covering the whole region.

        Used by tree merging (Sec. 3.2): e.g. ``{0000, 0010}`` and
        ``{0001, 0011}`` merge into the single coarser subspace ``00``.
        """
        if self.is_empty:
            return ROOT
        members = list(self.members)
        prefix = members[0]
        for m in members[1:]:
            prefix = prefix.common_prefix(m)
        return prefix

    def total_measure(self) -> float:
        """The fraction of the event space covered (members are disjoint)."""
        return sum(2.0 ** -len(m) for m in self.members)


#: The empty region.
EMPTY = DzSet(frozenset())
#: The whole event space.
OMEGA = DzSet(frozenset({ROOT}))
