"""dz-expressions: binary identifiers for event-space subspaces.

PLEROMA (Sec. 2) identifies every regular subspace of the multi-dimensional
event space by a binary string called a *dz-expression* (``dz``).  The string
is produced by recursively bisecting the event space, cycling through the
indexed dimensions round-robin: bit 0 splits dimension 0 in half, bit 1 splits
dimension 1, ..., bit k splits dimension 0 again into quarters, and so on.

The algebra used throughout the paper reduces to prefix relations:

* the **empty** dz denotes the whole event space Omega;
* ``dz_i`` **covers** ``dz_j`` (written ``dz_i >= dz_j`` in the paper) iff
  ``dz_i`` is a prefix of ``dz_j``;
* two dz **overlap** iff one covers the other, and the overlap is the longer
  of the two;
* the **difference** ``dz_i - dz_j`` of overlapping, non-identical subspaces
  is the set of sibling subspaces hanging off the path from the shorter to
  the longer string (e.g. ``0 - 000 = {001, 01}`` before canonical
  re-splitting; the paper's example lists ``{001, 010, 011}`` which is the
  same region one level finer).

This module implements the dz string itself; set-level operations over
collections of dz live in :mod:`repro.core.dzset`.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from repro.exceptions import SpatialIndexError

__all__ = ["Dz", "ROOT"]

_VALID_BITS = frozenset("01")


@dataclass(frozen=True, order=True)
class Dz:
    """An immutable dz-expression.

    ``bits`` is a string over the alphabet ``{'0', '1'}``.  The empty string
    is the root subspace (the whole event space).  Ordering is lexicographic
    on ``bits``, which conveniently sorts siblings together and parents
    before children.
    """

    bits: str = ""

    def __post_init__(self) -> None:
        if not set(self.bits) <= _VALID_BITS:
            raise SpatialIndexError(f"dz must be a binary string, got {self.bits!r}")

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.bits)

    def __str__(self) -> str:
        return self.bits or "<root>"

    @property
    def is_root(self) -> bool:
        """True for the empty dz, which denotes the whole event space."""
        return not self.bits

    @property
    def value(self) -> int:
        """The bits interpreted as an unsigned integer (0 for the root)."""
        return int(self.bits, 2) if self.bits else 0

    def child(self, bit: int) -> "Dz":
        """The half subspace obtained by appending ``bit`` (0 or 1)."""
        if bit not in (0, 1):
            raise SpatialIndexError(f"child bit must be 0 or 1, got {bit!r}")
        return Dz(self.bits + str(bit))

    def parent(self) -> "Dz":
        """The enclosing subspace one level up; the root has no parent."""
        if self.is_root:
            raise SpatialIndexError("the root dz has no parent")
        return Dz(self.bits[:-1])

    def sibling(self) -> "Dz":
        """The other half of this dz's parent subspace."""
        if self.is_root:
            raise SpatialIndexError("the root dz has no sibling")
        last = "1" if self.bits[-1] == "0" else "0"
        return Dz(self.bits[:-1] + last)

    def ancestors(self) -> Iterator["Dz"]:
        """All strict prefixes, from the root down to the direct parent."""
        for i in range(len(self.bits)):
            yield Dz(self.bits[:i])

    def truncate(self, max_len: int) -> "Dz":
        """This dz limited to ``max_len`` bits (the enclosing coarser cell).

        The paper calls this the ``L_dz`` constraint (Sec. 6.4): when the
        multicast address range only accommodates ``L_dz`` bits, finer
        subspaces collapse onto their length-``L_dz`` ancestor.
        """
        if max_len < 0:
            raise SpatialIndexError("max_len must be non-negative")
        return Dz(self.bits[:max_len])

    # ------------------------------------------------------------------
    # the covering algebra (paper Sec. 2, properties 1-4)
    # ------------------------------------------------------------------
    def covers(self, other: "Dz") -> bool:
        """True iff this subspace contains ``other`` (prefix relation).

        A dz covers itself.
        """
        return other.bits.startswith(self.bits)

    def covered_by(self, other: "Dz") -> bool:
        """True iff ``other`` contains this subspace."""
        return other.covers(self)

    def overlaps(self, other: "Dz") -> bool:
        """True iff the two subspaces intersect (one is a prefix of the other)."""
        return self.covers(other) or other.covers(self)

    def intersect(self, other: "Dz") -> "Dz" | None:
        """The overlap of two subspaces: the longer dz, or None if disjoint."""
        if self.covers(other):
            return other
        if other.covers(self):
            return self
        return None

    def subtract(self, other: "Dz") -> list["Dz"]:
        """The region of this subspace not covered by ``other``.

        Returns a minimal list of disjoint dz-expressions.  If the two are
        disjoint the result is ``[self]``; if ``other`` covers ``self`` the
        result is empty.  Otherwise ``other`` is strictly finer and the
        result consists of the siblings along the refinement path: for each
        extra bit of ``other`` we keep the half *not* taken.
        """
        if other.covers(self):
            return []
        if not self.covers(other):
            return [self]
        remainder: list[Dz] = []
        prefix = self.bits
        for bit in other.bits[len(self.bits):]:
            flipped = "1" if bit == "0" else "0"
            remainder.append(Dz(prefix + flipped))
            prefix += bit
        return remainder

    def common_prefix(self, other: "Dz") -> "Dz":
        """The finest subspace covering both dz (longest common prefix)."""
        limit = min(len(self.bits), len(other.bits))
        i = 0
        while i < limit and self.bits[i] == other.bits[i]:
            i += 1
        return Dz(self.bits[:i])

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_value(cls, value: int, length: int) -> "Dz":
        """Build a dz of exactly ``length`` bits from an unsigned integer."""
        if length < 0:
            raise SpatialIndexError("length must be non-negative")
        if value < 0 or (length < value.bit_length()):
            raise SpatialIndexError(
                f"value {value} does not fit in {length} bits"
            )
        if length == 0:
            return cls("")
        return cls(format(value, f"0{length}b"))


#: The whole event space.
ROOT = Dz("")
