"""Seeded chaos scenarios: link cuts, flap trains, crashes, partitions.

A :class:`ChaosSchedule` is a deterministic list of failure injections
drawn from a ``random.Random(seed)`` over the *sorted* element lists of a
topology, so the same seed yields the same schedule on every run and
platform.  The :class:`ChaosRunner` arms the schedule against a deployed
:class:`~repro.middleware.pleroma.Pleroma`: injections touch **only the
data plane** (``Link.fail``/``restore``, ``Switch.fail``/``restore``,
carrier loss via ``Link.set_oper``) — the control plane must notice through
the :class:`~repro.resilience.detector.FailureDetector`'s probes, which is
the whole point of measuring recovery rather than assuming it.

Scenario kinds:

* ``link-cut`` — one switch link down for a sustained window, then healed;
* ``link-flap`` — a train of short down/up pulses on one link, sized near
  the detector's miss budget so the detection machinery is exercised at
  its boundary;
* ``switch-crash`` — a whole switch dies (TCAM volatile: its flow table is
  lost) and every attached link loses carrier; later it revives cold;
* ``partition`` — every switch link of a victim switch is cut at once,
  splitting the fabric; the degraded-mode repair must keep the primary
  component in service and resume the rest on heal.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.exceptions import TopologyError
from repro.network.topology import Topology
from repro.resilience.detector import FailureDetector
from repro.resilience.orchestrator import RecoveryOrchestrator

__all__ = ["ChaosAction", "ChaosSchedule", "ChaosRunner", "CHAOS_KINDS"]

CHAOS_KINDS = ("link-cut", "link-flap", "switch-crash", "partition")

#: Flap pulse geometry: the down pulse (8 ms) is exactly at the edge of a
#: 2 ms-probe / 3-miss detection budget, the up pulse (10 ms) long enough
#: for the recovering echo to land before the next pulse.
FLAP_DOWN_S = 8e-3
FLAP_UP_S = 10e-3


@dataclass(frozen=True)
class ChaosAction:
    """One injected failure episode with its heal time."""

    kind: str                           # one of CHAOS_KINDS
    at: float                           # sim time of the first injection
    heal_at: float                      # sim time the element(s) come back
    edges: tuple[tuple[str, str], ...] = ()   # affected switch links
    switch: str | None = None           # victim (crash / partition)
    flaps: int = 0                      # down pulses (link-flap only)
    flap_down_s: float = FLAP_DOWN_S
    flap_up_s: float = FLAP_UP_S

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "at": self.at,
            "heal_at": self.heal_at,
            "edges": [list(edge) for edge in self.edges],
            "switch": self.switch,
            "flaps": self.flaps,
        }


@dataclass
class ChaosSchedule:
    """A deterministic sequence of :class:`ChaosAction` episodes."""

    actions: list[ChaosAction] = field(default_factory=list)
    horizon: float = 0.0
    seed: int = 0

    @classmethod
    def generate(
        cls,
        topology: Topology,
        seed: int = 0,
        kinds: tuple[str, ...] = CHAOS_KINDS,
        start_at: float = 0.02,
        spacing: float = 0.06,
        heal_after: float = 0.02,
        margin: float = 0.04,
    ) -> "ChaosSchedule":
        """Draw one episode per requested kind over sorted element lists.

        Episodes are spaced so each one's detect/repair/heal cycle has
        settled (and steady traffic resumed) before the next begins;
        ``horizon`` leaves ``margin`` after the last heal for the final
        recovery to be observed.
        """
        for kind in kinds:
            if kind not in CHAOS_KINDS:
                raise TopologyError(f"unknown chaos kind {kind!r}")
        edges = sorted(
            tuple(sorted((spec.a, spec.b)))
            for spec in topology.links()
            if topology.is_switch(spec.a) and topology.is_switch(spec.b)
        )
        if not edges:
            raise TopologyError(
                "chaos needs at least one switch-to-switch link"
            )
        switches = sorted(topology.switches())
        hostless = [
            s
            for s in switches
            if not any(topology.is_host(n) for n in topology.neighbors(s))
        ]
        rng = random.Random(seed)
        actions: list[ChaosAction] = []
        at = start_at
        for kind in kinds:
            if kind == "link-cut":
                edge = edges[rng.randrange(len(edges))]
                actions.append(
                    ChaosAction(
                        kind, at, at + heal_after, edges=(edge,)
                    )
                )
            elif kind == "link-flap":
                edge = edges[rng.randrange(len(edges))]
                flaps = 2
                heal_at = (
                    at + (flaps - 1) * (FLAP_DOWN_S + FLAP_UP_S) + FLAP_DOWN_S
                )
                actions.append(
                    ChaosAction(
                        kind, at, heal_at, edges=(edge,), flaps=flaps
                    )
                )
            elif kind == "switch-crash":
                pool = hostless if hostless else switches
                victim = pool[rng.randrange(len(pool))]
                touched = tuple(e for e in edges if victim in e)
                actions.append(
                    ChaosAction(
                        kind,
                        at,
                        at + heal_after,
                        edges=touched,
                        switch=victim,
                    )
                )
            elif kind == "partition":
                victim = switches[rng.randrange(len(switches))]
                touched = tuple(e for e in edges if victim in e)
                actions.append(
                    ChaosAction(
                        kind,
                        at,
                        at + heal_after,
                        edges=touched,
                        switch=victim,
                    )
                )
            at += spacing
        horizon = max(a.heal_at for a in actions) + margin
        return cls(actions=actions, horizon=horizon, seed=seed)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "horizon": self.horizon,
            "actions": [a.to_dict() for a in self.actions],
        }


class ChaosRunner:
    """Arms a schedule against a deployment and runs it to completion."""

    def __init__(
        self,
        middleware,
        schedule: ChaosSchedule,
        detector: FailureDetector,
        orchestrator: RecoveryOrchestrator,
    ) -> None:
        self.middleware = middleware
        self.schedule = schedule
        self.detector = detector
        self.orchestrator = orchestrator
        self.sim = middleware.sim
        self.network = middleware.network
        self._armed = False

    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Schedule every injection; idempotent."""
        if self._armed:
            return
        self._armed = True
        for action in self.schedule.actions:
            if action.kind == "link-cut" or action.kind == "partition":
                for edge in action.edges:
                    self.sim.schedule_at(action.at, self._cut_link, edge)
                    self.sim.schedule_at(
                        action.heal_at, self._heal_link, edge
                    )
            elif action.kind == "link-flap":
                (edge,) = action.edges
                pulse = action.flap_down_s + action.flap_up_s
                for i in range(action.flaps):
                    down_at = action.at + i * pulse
                    self.sim.schedule_at(down_at, self._cut_link, edge)
                    self.sim.schedule_at(
                        down_at + action.flap_down_s, self._heal_link, edge
                    )
            elif action.kind == "switch-crash":
                self.sim.schedule_at(
                    action.at, self._crash_switch, action.switch
                )
                self.sim.schedule_at(
                    action.heal_at, self._revive_switch, action.switch
                )

    def run(self) -> None:
        """Run the armed schedule: horizon, stop probing, drain in-flight."""
        self.arm()
        self.sim.run(until=self.schedule.horizon)
        self.detector.stop()
        self.sim.run()

    # ------------------------------------------------------------------
    # injections (data plane only — no oracle callbacks)
    # ------------------------------------------------------------------
    def _cut_link(self, edge: tuple[str, str]) -> None:
        self.network.link_between(*edge).fail()

    def _heal_link(self, edge: tuple[str, str]) -> None:
        self.network.link_between(*edge).restore()

    def _crash_switch(self, name: str) -> None:
        self.network.switches[name].fail()
        # Every attached link (host links included) loses carrier.  The
        # physical fabric is authoritative here — the planning topology may
        # already lack edges the orchestrator removed on detection.
        for link in self._attached_links(name):
            link.set_oper(False)

    def _revive_switch(self, name: str) -> None:
        self.network.switches[name].restore()
        for link in self._attached_links(name):
            link.set_oper(True)

    def _attached_links(self, name: str):
        return [
            link
            for key, link in sorted(
                self.network.links.items(), key=lambda kv: sorted(kv[0])
            )
            if name in key
        ]
