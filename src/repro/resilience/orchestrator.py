"""Recovery orchestration: execute repair plans against a controller.

The :class:`RecoveryOrchestrator` is the glue between detection and the
existing control plane.  It subscribes to :class:`FailureDetector` events
and, on every link verdict:

1. syncs the controller's *planning topology* with the detector's view
   (removing edges believed down, restoring them — with their original
   delay and bandwidth — when echoes return);
2. asks the :class:`~repro.resilience.repair.RepairPlanner` for a plan;
3. executes it inside one ``repair`` control request: suspend cut-off
   clients, swap tree structures, let the existing ledger/reconciler
   machinery derive the desired flow state and apply the minimal diff,
   resume clients whose component rejoined;
4. proves the repaired deployment with the :mod:`repro.analysis` static
   verifier and records a :class:`RepairRecord` with the modeled repair
   latency (flow mods x control-channel round trip — wall-clock compute
   time is deliberately excluded so records are deterministic).

Execution order inside a pass matters: suspension must come *before* the
tree rebuilds (a detached member would make path installation fail), and
resumption *after* them (resuming first would lay paths over structures
about to be replaced).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.verify import verify_controller
from repro.controller.controller import PleromaController
from repro.network.topology import LinkSpec
from repro.obs.context import Observability
from repro.resilience.detector import FailureDetector, FailureEvent
from repro.resilience.repair import RepairPlanner, SuspendedClient

__all__ = ["RecoveryOrchestrator", "RepairRecord"]


@dataclass(frozen=True)
class RepairRecord:
    """Outcome of one detect-triggered repair pass."""

    time: float                # sim time the repair executed (== detection)
    trigger_kind: str          # detector event kind that triggered it
    trigger_subject: str       # "a<->b" or switch name
    degraded: bool             # surviving switch graph was split
    trees_rebuilt: int
    flow_mods: int
    suspended: int             # clients withdrawn by this pass
    resumed: int               # clients restored by this pass
    repair_latency_s: float    # modeled: flow_mods x flow_mod_latency_s
    verifier_ok: bool
    violations: int

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "trigger_kind": self.trigger_kind,
            "trigger_subject": self.trigger_subject,
            "degraded": self.degraded,
            "trees_rebuilt": self.trees_rebuilt,
            "flow_mods": self.flow_mods,
            "suspended": self.suspended,
            "resumed": self.resumed,
            "repair_latency_s": self.repair_latency_s,
            "verifier_ok": self.verifier_ok,
            "violations": self.violations,
        }


class RecoveryOrchestrator:
    """Listens to a detector; repairs one controller's deployment."""

    def __init__(
        self,
        controller: PleromaController,
        detector: FailureDetector,
        obs: Observability | None = None,
        verify: bool = True,
    ) -> None:
        self.controller = controller
        self.detector = detector
        self.obs = obs if obs is not None else controller.obs
        self.verify = verify
        self.planner = RepairPlanner(controller)
        self.records: list[RepairRecord] = []
        self._down_edges: set[frozenset[str]] = set()
        self._saved_specs: dict[frozenset[str], LinkSpec] = {}
        self._suspended_advs: dict[int, SuspendedClient] = {}
        self._suspended_subs: dict[int, SuspendedClient] = {}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def suspended_clients(self) -> int:
        return len(self._suspended_advs) + len(self._suspended_subs)

    def down_edges(self) -> list[tuple[str, str]]:
        return sorted(tuple(sorted(edge)) for edge in self._down_edges)

    # ------------------------------------------------------------------
    # detector listener
    # ------------------------------------------------------------------
    def on_event(self, event: FailureEvent) -> None:
        """React to one detector verdict.

        Switch verdicts are informational only — they always arrive
        together with the port verdicts of the switch's links, and those
        carry all the information repair needs.
        """
        if event.kind == "port-down":
            key = frozenset(event.subject)
            if key in self._down_edges:
                return
            self._down_edges.add(key)
            self._remove_planning_edge(*event.subject)
            self._repair(event)
        elif event.kind == "port-up":
            key = frozenset(event.subject)
            if key not in self._down_edges:
                return
            self._down_edges.discard(key)
            self._restore_planning_edge(*event.subject)
            self._repair(event)

    # ------------------------------------------------------------------
    # planning-topology sync
    # ------------------------------------------------------------------
    def _remove_planning_edge(self, a: str, b: str) -> None:
        topology = self.controller.topology
        if topology.graph.has_edge(a, b):
            self._saved_specs[frozenset((a, b))] = topology.link_between(a, b)
            topology.remove_link(a, b)

    def _restore_planning_edge(self, a: str, b: str) -> None:
        topology = self.controller.topology
        spec = self._saved_specs.pop(frozenset((a, b)), None)
        if not topology.graph.has_edge(a, b):
            topology.add_link(
                a,
                b,
                delay_s=spec.delay_s if spec is not None else None,
                bandwidth_bps=spec.bandwidth_bps if spec is not None else None,
            )

    # ------------------------------------------------------------------
    # repair execution
    # ------------------------------------------------------------------
    def _repair(self, trigger: FailureEvent) -> None:
        controller = self.controller
        plan = self.planner.plan(self._suspended_advs, self._suspended_subs)
        mods_before = controller.total_flow_mods
        rebuilt = 0
        with self.obs.tracer.span(
            "resilience",
            "repair",
            trigger=trigger.kind,
            subject="<->".join(trigger.subject),
            degraded=plan.degraded,
        ):
            if plan.is_noop:
                self._record(trigger, plan, rebuilt=0, flow_mods=0)
                return
            with controller._request("repair"):
                for sub_id in plan.suspend_subs:
                    state = controller.subscriptions[sub_id]
                    self._suspended_subs[sub_id] = SuspendedClient(
                        sub_id,
                        state.endpoint.name,
                        state.endpoint.switch,
                        state.dz_set,
                        state.subscription,
                    )
                    controller.unsubscribe(sub_id)
                for adv_id in plan.suspend_advs:
                    state = controller.advertisements[adv_id]
                    self._suspended_advs[adv_id] = SuspendedClient(
                        adv_id,
                        state.endpoint.name,
                        state.endpoint.switch,
                        state.dz_set,
                        state.advertisement,
                    )
                    controller.unadvertise(adv_id)
                for repair in plan.tree_repairs:
                    tree = next(
                        (
                            t
                            for t in controller.trees
                            if t.tree_id == repair.tree_id
                        ),
                        None,
                    )
                    if tree is None:
                        continue  # retired by the suspension pass
                    changed = controller.ledger.remove_keys_where(
                        tree_id=repair.tree_id
                    )
                    tree.root = repair.root
                    tree.replace_structure(repair.parents)
                    controller._withdraw(changed)
                    for adv_id, member in sorted(tree.publishers.items()):
                        adv = controller.advertisements.get(adv_id)
                        if adv is None:
                            tree.leave_publisher(adv_id)
                            continue
                        controller._add_flow_mult_sub(tree, adv, member.overlap)
                    rebuilt += 1
                for adv_id in plan.resume_advs:
                    client = self._suspended_advs.pop(adv_id)
                    controller.advertise(
                        client.host,
                        client.request,
                        dz_set=client.dz_set,
                        adv_id=adv_id,
                    )
                for sub_id in plan.resume_subs:
                    client = self._suspended_subs.pop(sub_id)
                    controller.subscribe(
                        client.host,
                        client.request,
                        dz_set=client.dz_set,
                        sub_id=sub_id,
                    )
            self._record(
                trigger,
                plan,
                rebuilt=rebuilt,
                flow_mods=controller.total_flow_mods - mods_before,
            )

    def _record(self, trigger, plan, rebuilt: int, flow_mods: int) -> None:
        verifier_ok, violations = True, 0
        if self.verify:
            report = verify_controller(self.controller)
            verifier_ok = report.ok
            violations = len(report.violations)
        record = RepairRecord(
            time=self.controller.network.sim.now,
            trigger_kind=trigger.kind,
            trigger_subject="<->".join(trigger.subject),
            degraded=plan.degraded,
            trees_rebuilt=rebuilt,
            flow_mods=flow_mods,
            suspended=len(plan.suspend_subs) + len(plan.suspend_advs),
            resumed=len(plan.resume_subs) + len(plan.resume_advs),
            repair_latency_s=flow_mods * self.controller.flow_mod_latency_s,
            verifier_ok=verifier_ok,
            violations=violations,
        )
        self.records.append(record)

    def __repr__(self) -> str:
        return (
            f"RecoveryOrchestrator({len(self.records)} repairs, "
            f"{len(self._down_edges)} edges down, "
            f"{self.suspended_clients} clients suspended)"
        )
