"""Self-healing control plane: detect → plan → repair → verify.

The paper's conclusion asks for "mechanisms to detect and react" to
dynamic network conditions; :mod:`repro.controller.overload` covers the
overload case, this package covers *failures*:

* :mod:`repro.resilience.detector` — a deterministic LLDP-style echo
  prober that turns data-plane link/switch death into ``PortDown`` /
  ``SwitchDown`` events after a configurable miss threshold.  Detection
  latency is a measured quantity of the probing schedule, never an oracle
  callback from the failure injection site.
* :mod:`repro.resilience.repair` — the :class:`RepairPlanner`: given the
  surviving switch graph, decide which trees to rebuild (and around what
  roots), and which clients must be suspended because a partition split
  cut them off.
* :mod:`repro.resilience.orchestrator` — the
  :class:`RecoveryOrchestrator` executes plans against a controller: it
  suspends/resumes clients, swaps tree structures, re-derives the desired
  flow state through the existing ledger/reconciler machinery, applies the
  minimal diff and proves the result with the :mod:`repro.analysis` static
  verifier.
* :mod:`repro.resilience.chaos` — a seeded :class:`ChaosSchedule` of link
  cuts, flap trains, switch crash/revive and partition cut/heal, plus the
  runner wiring it to a deployment.
* :mod:`repro.resilience.slo` — recovery SLO computation: detection
  latency, repair latency, blackout window, packets lost during blackout
  and delivery continuity, exported deterministically.
"""

from repro.resilience.chaos import ChaosAction, ChaosRunner, ChaosSchedule
from repro.resilience.detector import FailureDetector, FailureEvent
from repro.resilience.orchestrator import RecoveryOrchestrator, RepairRecord
from repro.resilience.repair import RepairPlan, RepairPlanner, TreeRepair
from repro.resilience.slo import build_slo_report

__all__ = [
    "ChaosAction",
    "ChaosRunner",
    "ChaosSchedule",
    "FailureDetector",
    "FailureEvent",
    "RecoveryOrchestrator",
    "RepairRecord",
    "RepairPlan",
    "RepairPlanner",
    "TreeRepair",
    "build_slo_report",
]
