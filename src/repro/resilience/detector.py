"""Failure detection: seeded sim-time echo probes over switch links.

The :class:`FailureDetector` monitors every switch-to-switch link of a
fabric the way LLDP/BFD keepalives do: each link is probed once per
``period_s`` of simulated time, the probe's echo travels the link's real
round trip (twice propagation plus a small processing cost), and a link
whose probes go unanswered ``miss_threshold`` times in a row is declared
down.  The first echo heard after that declares it up again.

Two properties matter more than realism of the wire format:

* **no oracle** — the detector never learns of a failure from the
  injection site.  ``Link.fail()`` flips data-plane state; the detector
  finds out because echoes stop arriving, so *detection latency is a
  measured quantity* (phase of the probe schedule + miss budget), exactly
  what the recovery SLOs report.
* **determinism** — probe phases are drawn per link (in sorted key order)
  from a ``random.Random(seed)``, all scheduling goes through the
  simulator, and event history is recorded in fire order.  Identical
  seeds give byte-identical event streams across processes.

Switch death has no probe of its own: a switch is declared down when every
monitored link touching it is down (indistinguishable, from the control
plane, from the switch being unreachable — which needs the same repair).

Events fan out to registered listeners (the
:class:`~repro.resilience.orchestrator.RecoveryOrchestrator`), to
``repro.obs`` trace events and to registry counters/gauges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Callable

from repro.exceptions import TopologyError
from repro.network.fabric import Network
from repro.obs.context import Observability

__all__ = [
    "FailureDetector",
    "FailureEvent",
    "DEFAULT_PROBE_PERIOD_S",
    "DEFAULT_MISS_THRESHOLD",
    "PROBE_PROCESSING_S",
]

#: One probe per link every 2 ms of sim time — fast-BFD territory, sized
#: so recovery completes within the paper's ~ms reconfiguration regime.
DEFAULT_PROBE_PERIOD_S = 2e-3
#: Consecutive unanswered probes before a link is declared down.  Three
#: misses tolerates a probe lost to a transient (e.g. a flap shorter than
#: one period) without flapping the control plane.
DEFAULT_MISS_THRESHOLD = 3
#: Per-end probe processing cost added to the echo round trip.
PROBE_PROCESSING_S = 10e-6


@dataclass(frozen=True)
class FailureEvent:
    """One detector verdict, stamped with the sim time it was reached."""

    kind: str                  # "port-down" | "port-up" | "switch-down" | "switch-up"
    subject: tuple[str, ...]   # (a, b) sorted for links, (name,) for switches
    time: float
    misses: int = 0            # consecutive misses behind a down verdict

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "subject": list(self.subject),
            "time": self.time,
            "misses": self.misses,
        }


class _LinkProbeState:
    """Detector-side view of one monitored link."""

    __slots__ = ("seq", "awaiting", "misses", "view_up", "handle")

    def __init__(self) -> None:
        self.seq = 0
        self.awaiting = False   # last probe sent, echo not yet heard
        self.misses = 0
        self.view_up = True
        self.handle = None      # pending probe-tick ScheduledEvent


class FailureDetector:
    """Probes switch-to-switch links; emits Port/Switch up/down events."""

    def __init__(
        self,
        network: Network,
        obs: Observability | None = None,
        period_s: float = DEFAULT_PROBE_PERIOD_S,
        miss_threshold: int = DEFAULT_MISS_THRESHOLD,
        seed: int = 0,
    ) -> None:
        if period_s <= 0:
            raise TopologyError("probe period must be positive")
        if miss_threshold < 1:
            raise TopologyError("miss threshold must be >= 1")
        self.network = network
        self.sim = network.sim
        self.obs = obs if obs is not None else Observability(network.sim)
        self.period_s = period_s
        self.miss_threshold = miss_threshold
        self.seed = seed
        topology = network.topology
        #: Monitored links, in deterministic sorted order of (a, b) names.
        self.monitored: list[tuple[str, str]] = sorted(
            tuple(sorted((spec.a, spec.b)))
            for spec in topology.links()
            if topology.is_switch(spec.a) and topology.is_switch(spec.b)
        )
        rng = random.Random(seed)
        #: Per-link probe phase: staggered so a fabric-wide tick does not
        #: synchronise every probe into one sim instant (and so detection
        #: latencies vary per link the way real schedules do).
        self._phase = {
            key: rng.uniform(0.0, period_s) for key in self.monitored
        }
        self._state = {key: _LinkProbeState() for key in self.monitored}
        self._switch_view_down: set[str] = set()
        self._running = False
        self.events: list[FailureEvent] = []
        self.listeners: list[Callable[[FailureEvent], None]] = []
        registry = self.obs.registry
        self._c_probes = registry.counter("resilience.probes_sent")
        self._c_echoes = registry.counter("resilience.echoes_received")
        self._c_events = {
            kind: registry.counter("resilience.events", kind=kind)
            for kind in ("port-down", "port-up", "switch-down", "switch-up")
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "FailureDetector":
        """Begin probing.  Each link's first probe fires at its phase
        offset; ticks then self-reschedule every period."""
        if self._running:
            return self
        self._running = True
        for key in self.monitored:
            state = self._state[key]
            state.handle = self.sim.schedule(
                self._phase[key], self._probe, key
            )
        return self

    def stop(self) -> None:
        """Cancel all pending probe ticks so the simulator can drain."""
        self._running = False
        for state in self._state.values():
            if state.handle is not None:
                state.handle.cancel()
                state.handle = None

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def link_view_up(self, a: str, b: str) -> bool:
        """The detector's current belief about a link (not ground truth)."""
        return self._state[tuple(sorted((a, b)))].view_up

    def down_edges(self) -> list[tuple[str, str]]:
        """Every link currently believed down, in sorted order."""
        return [key for key in self.monitored if not self._state[key].view_up]

    def down_switches(self) -> list[str]:
        """Every switch currently believed down, in sorted order."""
        return sorted(self._switch_view_down)

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------
    def _probe(self, key: tuple[str, str]) -> None:
        if not self._running:
            return
        state = self._state[key]
        if state.awaiting:
            # previous probe went unanswered
            state.misses += 1
            if state.view_up and state.misses >= self.miss_threshold:
                self._mark_link(key, up=False, misses=state.misses)
        state.seq += 1
        state.awaiting = True
        self._c_probes.inc()
        link = self.network.link_between(*key)
        a, b = key
        endpoints_alive = (
            self.network.switches[a].up and self.network.switches[b].up
        )
        if link.up and endpoints_alive:
            # The probe traverses the physical medium: it only comes back
            # if the link (and both ends) are still alive *on arrival* too.
            rtt = 2.0 * (link.delay_s + PROBE_PROCESSING_S)
            self.sim.schedule(rtt, self._echo, key, state.seq)
        state.handle = self.sim.schedule(self.period_s, self._probe, key)

    def _echo(self, key: tuple[str, str], seq: int) -> None:
        if not self._running:
            return
        state = self._state[key]
        if seq != state.seq:
            return  # a newer probe superseded this echo
        link = self.network.link_between(*key)
        a, b = key
        if not (
            link.up
            and self.network.switches[a].up
            and self.network.switches[b].up
        ):
            return  # the link died while the echo was in flight
        self._c_echoes.inc()
        state.awaiting = False
        state.misses = 0
        if not state.view_up:
            self._mark_link(key, up=True)

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------
    def _mark_link(
        self, key: tuple[str, str], up: bool, misses: int = 0
    ) -> None:
        state = self._state[key]
        state.view_up = up
        self._emit(
            FailureEvent(
                kind="port-up" if up else "port-down",
                subject=key,
                time=self.sim.now,
                misses=misses,
            )
        )
        # switch inference: a switch with every monitored link down is
        # declared down; any link back up revives it.
        for switch in key:
            links = [k for k in self.monitored if switch in k]
            all_down = all(not self._state[k].view_up for k in links)
            if all_down and switch not in self._switch_view_down:
                self._switch_view_down.add(switch)
                self._emit(
                    FailureEvent(
                        kind="switch-down",
                        subject=(switch,),
                        time=self.sim.now,
                    )
                )
            elif not all_down and switch in self._switch_view_down:
                self._switch_view_down.discard(switch)
                self._emit(
                    FailureEvent(
                        kind="switch-up",
                        subject=(switch,),
                        time=self.sim.now,
                    )
                )

    def _emit(self, event: FailureEvent) -> None:
        self.events.append(event)
        self._c_events[event.kind].inc()
        self.obs.tracer.event(
            "resilience",
            event.kind,
            subject="<->".join(event.subject),
            misses=event.misses,
        )
        for listener in list(self.listeners):
            listener(event)

    def __repr__(self) -> str:
        return (
            f"FailureDetector({len(self.monitored)} links, "
            f"period={self.period_s}, threshold={self.miss_threshold}, "
            f"{'running' if self._running else 'stopped'})"
        )
