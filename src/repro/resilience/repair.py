"""Repair planning: what to rebuild, what to suspend, what to resume.

The planner is pure computation over the controller's *planning view*
(its topology, from which the orchestrator has already removed the edges
believed down): it never mutates controller state, which makes it
unit-testable in isolation and keeps the orchestrator a thin executor.

Generalisation of ``reroute_tree_around_edge``:

* **multi-edge / switch loss** — the plan is computed against the whole
  surviving switch graph, not one removed edge, so any set of concurrent
  failures (including every link of a crashed switch) is handled by one
  pass;
* **degraded partial trees** — when the surviving graph is split, the
  *primary* component (largest; ties broken by smallest switch name, so
  the choice is deterministic) stays in service.  Trees are rebuilt as
  partial trees spanning only the primary component; clients attached
  elsewhere are **suspended** — withdrawn from the controller (their
  flows removed, their trees pruned or retired) but remembered with their
  DZ sets and ids, to be resumed verbatim when connectivity heals.  This
  keeps the deployed flow state *exactly consistent* with the controller's
  client set, which is what lets the :mod:`repro.analysis` verifier prove
  the repaired state loop- and blackhole-free with zero violations instead
  of reporting the cut-off subscribers as blackholes forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.controller.controller import PleromaController
from repro.core.dzset import DzSet
from repro.core.subscription import Advertisement, Subscription

__all__ = ["RepairPlanner", "RepairPlan", "TreeRepair", "SuspendedClient"]


@dataclass(frozen=True)
class SuspendedClient:
    """A withdrawn-but-remembered client (advertisement or subscription)."""

    client_id: int
    host: str
    switch: str
    dz_set: DzSet
    request: Advertisement | Subscription | None = None


@dataclass
class TreeRepair:
    """New structure for one surviving tree."""

    tree_id: int
    root: str                  # possibly re-rooted into the primary component
    parents: dict[str, str]    # spans exactly the primary component


@dataclass
class RepairPlan:
    """Everything one repair pass must do, in execution order."""

    components: list[list[str]] = field(default_factory=list)
    primary: set[str] = field(default_factory=set)
    degraded: bool = False
    #: client ids to withdraw because their switch left the primary component
    suspend_subs: list[int] = field(default_factory=list)
    suspend_advs: list[int] = field(default_factory=list)
    #: previously suspended client ids whose switch is reachable again
    resume_advs: list[int] = field(default_factory=list)
    resume_subs: list[int] = field(default_factory=list)
    tree_repairs: list[TreeRepair] = field(default_factory=list)

    @property
    def is_noop(self) -> bool:
        return not (
            self.suspend_subs
            or self.suspend_advs
            or self.resume_advs
            or self.resume_subs
            or self.tree_repairs
        )


class RepairPlanner:
    """Computes :class:`RepairPlan` instances for one controller."""

    def __init__(self, controller: PleromaController) -> None:
        self.controller = controller

    # ------------------------------------------------------------------
    def surviving_components(self) -> list[set[str]]:
        """Connected components of the planning-view switch graph, largest
        first, ties broken by smallest member name (deterministic)."""
        sg = self.controller.topology.switch_graph(self.controller.partition)
        return sorted(
            (set(c) for c in nx.connected_components(sg)),
            key=lambda c: (-len(c), min(c)),
        )

    # ------------------------------------------------------------------
    def plan(
        self,
        suspended_advs: dict[int, SuspendedClient],
        suspended_subs: dict[int, SuspendedClient],
    ) -> RepairPlan:
        """Decide suspensions, resumptions and tree rebuilds.

        ``suspended_*`` is the orchestrator's memory of clients withdrawn
        by earlier repair passes; the plan resumes those whose switch is
        back inside the primary component.
        """
        controller = self.controller
        components = self.surviving_components()
        primary = components[0]
        plan = RepairPlan(
            components=[sorted(c) for c in components],
            primary=primary,
            degraded=len(components) > 1,
        )
        plan.suspend_subs = sorted(
            sub_id
            for sub_id, state in controller.subscriptions.items()
            if state.endpoint.switch not in primary
        )
        plan.suspend_advs = sorted(
            adv_id
            for adv_id, state in controller.advertisements.items()
            if state.endpoint.switch not in primary
        )
        plan.resume_advs = sorted(
            adv_id
            for adv_id, client in suspended_advs.items()
            if client.switch in primary
        )
        plan.resume_subs = sorted(
            sub_id
            for sub_id, client in suspended_subs.items()
            if client.switch in primary
        )
        suspended_now = set(plan.suspend_advs)
        for tree in sorted(controller.trees, key=lambda t: t.tree_id):
            live_publishers = set(tree.publishers) - suspended_now
            if not live_publishers:
                # the suspension pass retires publisher-less trees itself
                continue
            if tree.switches == primary and tree.root in primary:
                # structurally intact: spans exactly the surviving primary
                # component and only over surviving edges
                if all(
                    self._edge_alive(child, parent)
                    for child, parent in tree.parents.items()
                ):
                    continue
            root = tree.root
            if root not in primary:
                # deterministic re-root: the smallest access switch of a
                # surviving publisher (all live publishers are in primary
                # by construction of the suspension set)
                root = min(
                    controller.advertisements[adv_id].endpoint.switch
                    for adv_id in live_publishers
                )
            parents = controller.trees.tree_builder(
                controller.topology, controller.partition, root
            )
            plan.tree_repairs.append(TreeRepair(tree.tree_id, root, parents))
        return plan

    # ------------------------------------------------------------------
    def _edge_alive(self, a: str, b: str) -> bool:
        """Does the planning topology still contain this edge?"""
        return self.controller.topology.graph.has_edge(a, b)
