"""Recovery SLO computation: what the chaos run *measured*.

Joins the four evidence streams of a chaos run — the injected schedule
(ground truth), the detector's event log, the orchestrator's repair
records and the flight recorder's delivery/drop forensics — into one
JSON-compatible report:

* **detection latency** — first matching detector verdict after the
  injection, minus the injection time.  Measured through the probe
  machinery, never oracle-derived.
* **repair latency** — modeled control-plane deployment time
  (flow mods x flow-mod round trip) of the repairs the episode triggered.
  Wall-clock compute time is deliberately excluded: the report must be
  byte-identical across runs.
* **blackout window** — the largest per-host delivery gap overlapping the
  episode, measured purely from the flight recorder's delivery times
  (:func:`repro.obs.paths.blackout_windows`).
* **packets lost** — drops attributed to ``link-down`` / ``switch-down``
  inside the episode's window.
* **continuity** — per-host delivery counts and the final static-verifier
  verdict over the healed deployment.

Every number is derived from simulated time or event counts, so two runs
with the same seeds serialise byte-identically regardless of host, hash
seed or machine load.
"""

from __future__ import annotations

from repro.analysis.verify import verify_controller
from repro.obs.paths import FlightReport, blackout_windows
from repro.resilience.chaos import ChaosSchedule
from repro.resilience.detector import FailureDetector
from repro.resilience.orchestrator import RecoveryOrchestrator

__all__ = ["build_slo_report"]

_LOSS_REASONS = ("link-down", "switch-down")


def _first_event(
    detector: FailureDetector,
    kinds: tuple[str, ...],
    subjects: set[tuple[str, ...]],
    not_before: float,
    not_after: float,
) -> float | None:
    for event in detector.events:
        if (
            event.kind in kinds
            and event.subject in subjects
            and not_before <= event.time < not_after
        ):
            return event.time
    return None


def build_slo_report(
    middleware,
    schedule: ChaosSchedule,
    detector: FailureDetector,
    orchestrator: RecoveryOrchestrator,
    report: FlightReport,
) -> dict:
    """Compute the recovery SLO report for one completed chaos run."""
    episodes = []
    ends = [a.at for a in schedule.actions[1:]] + [schedule.horizon]
    for action, window_end in zip(schedule.actions, ends):
        subjects: set[tuple[str, ...]] = {
            tuple(sorted(edge)) for edge in action.edges
        }
        detected_at = _first_event(
            detector, ("port-down",), subjects, action.at, window_end
        )
        healed_at = _first_event(
            detector, ("port-up",), subjects, action.heal_at, window_end
        )
        switch_detected_at = None
        if action.switch is not None:
            switch_detected_at = _first_event(
                detector,
                ("switch-down",),
                {(action.switch,)},
                action.at,
                window_end,
            )
        repairs = [
            r
            for r in orchestrator.records
            if action.at <= r.time < window_end
        ]
        lost = [
            d
            for d in report.drops
            if d["reason"] in _LOSS_REASONS
            and action.at <= d["t"] < window_end
        ]
        gaps = blackout_windows(report, window=(action.at, window_end))
        worst_gap = max(
            (g["gap_s"] for g in gaps.values()), default=None
        )
        episodes.append(
            {
                "action": action.to_dict(),
                "detection": {
                    "port_down_at": detected_at,
                    "latency_s": (
                        detected_at - action.at
                        if detected_at is not None
                        else None
                    ),
                    "switch_down_at": switch_detected_at,
                    "heal_port_up_at": healed_at,
                    "heal_latency_s": (
                        healed_at - action.heal_at
                        if healed_at is not None
                        else None
                    ),
                },
                "repair": {
                    "passes": len(repairs),
                    "trees_rebuilt": sum(r.trees_rebuilt for r in repairs),
                    "flow_mods": sum(r.flow_mods for r in repairs),
                    "latency_s": sum(r.repair_latency_s for r in repairs),
                    "suspended": sum(r.suspended for r in repairs),
                    "resumed": sum(r.resumed for r in repairs),
                    "degraded": any(r.degraded for r in repairs),
                    # Verdict of the LAST pass: a compound failure (e.g. a
                    # switch crash) is detected one link-verdict at a time,
                    # and a pass between verdicts can honestly verify dirty
                    # — the dead element is still believed reachable.  What
                    # the SLO judges is the converged state; the transient
                    # is surfaced separately, never hidden.
                    "verifier_ok": (
                        repairs[-1].verifier_ok if repairs else True
                    ),
                    "violations": (
                        repairs[-1].violations if repairs else 0
                    ),
                    "transient_dirty_passes": sum(
                        1 for r in repairs if not r.verifier_ok
                    ),
                },
                "blackout": {
                    "packets_lost": len(lost),
                    "loss_reasons": _count_reasons(lost),
                    "worst_gap_s": worst_gap,
                    "per_host": gaps,
                },
            }
        )
    metrics = middleware.metrics
    final = [verify_controller(c) for c in middleware.controllers]
    deliveries_per_host = metrics.deliveries_per_host()
    return {
        "schedule": schedule.to_dict(),
        "detector": {
            "probe_period_s": detector.period_s,
            "miss_threshold": detector.miss_threshold,
            "monitored_links": len(detector.monitored),
            "events": _count_event_kinds(detector),
        },
        "episodes": episodes,
        "continuity": {
            "published": metrics.published,
            "delivered": metrics.delivered,
            "deliveries_per_host": {
                host: deliveries_per_host[host]
                for host in sorted(deliveries_per_host)
            },
            "drop_counts": {
                k: report.drop_counts[k] for k in sorted(report.drop_counts)
            },
        },
        "final": {
            "verifier_ok": all(r.ok for r in final),
            "violations": sum(len(r.violations) for r in final),
            "repair_passes": len(orchestrator.records),
            "clients_suspended": orchestrator.suspended_clients,
            "edges_believed_down": [
                list(edge) for edge in orchestrator.down_edges()
            ],
        },
    }


def _count_reasons(drops: list[dict]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for drop in drops:
        counts[drop["reason"]] = counts.get(drop["reason"], 0) + 1
    return {k: counts[k] for k in sorted(counts)}


def _count_event_kinds(detector: FailureDetector) -> dict[str, int]:
    counts: dict[str, int] = {}
    for event in detector.events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return {k: counts[k] for k in sorted(counts)}
