"""A minimal, deterministic discrete-event simulation engine.

The network substrate (switches, links, hosts) and the control plane run on
this engine.  It is a classic calendar queue: callbacks scheduled at absolute
times, executed in time order, with FIFO tie-breaking via a monotonically
increasing sequence number so runs are fully deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Any

from repro.exceptions import SimulationError

__all__ = ["Simulator", "ScheduledEvent"]


@dataclass(order=True)
class ScheduledEvent:
    """A pending callback in the event queue."""

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the callback from firing (lazy deletion)."""
        self.cancelled = True


class Simulator:
    """Discrete-event simulator with absolute time in seconds."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[ScheduledEvent] = []
        self._seq = itertools.count()
        self._processed = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed so far (for tests and stats)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled callbacks still queued."""
        return sum(1 for ev in self._queue if not ev.cancelled)

    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Run ``callback(*args)`` after ``delay`` seconds of sim time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past ({delay=})")
        event = ScheduledEvent(
            time=self._now + delay,
            seq=next(self._seq),
            callback=callback,
            args=args,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Run ``callback(*args)`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        return self.schedule(time - self._now, callback, *args)

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the event queue.

        ``until`` stops the clock at an absolute time (events beyond it stay
        queued and ``now`` is advanced to ``until``); ``max_events`` bounds
        the number of executed callbacks (a runaway guard for tests).
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                return
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self._now = max(self._now, until)
                return
            self.step()
            executed += 1
        if until is not None:
            self._now = max(self._now, until)
