"""Discrete-event simulation substrate."""

from repro.sim.engine import ScheduledEvent, Simulator
from repro.sim.rng import ZipfSampler, make_numpy_rng, make_rng

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "make_rng",
    "make_numpy_rng",
    "ZipfSampler",
]
