"""Seeded randomness helpers.

Every stochastic component (workload generators, jitter models) draws from an
explicitly seeded :class:`random.Random` or :class:`numpy.random.Generator`
so that simulations are reproducible.  This module centralises construction
and provides the zipfian sampler used by the interest-popularity workload
(Sec. 6.1).
"""

from __future__ import annotations

import random
from collections.abc import Sequence

import numpy as np

from repro.exceptions import WorkloadError

__all__ = ["make_rng", "make_numpy_rng", "ZipfSampler"]


def make_rng(seed: int | None = 0) -> random.Random:
    """A standalone standard-library RNG (never the global one)."""
    return random.Random(seed)


def make_numpy_rng(seed: int | None = 0) -> np.random.Generator:
    """A standalone numpy generator for vectorised sampling."""
    return np.random.default_rng(seed)


class ZipfSampler:
    """Samples ranks ``0..n-1`` with probability proportional to 1/(r+1)^s.

    This is the bounded zipfian distribution the paper uses to pick hotspot
    regions ("interest popularity model", Sec. 6.1).  Unlike
    ``numpy.random.zipf`` it has bounded support, which is what choosing
    among exactly 7 hotspots requires.
    """

    def __init__(self, n: int, exponent: float = 1.0, rng: random.Random | None = None):
        if n < 1:
            raise WorkloadError(f"zipf support size must be >= 1, got {n}")
        if exponent <= 0:
            raise WorkloadError(f"zipf exponent must be > 0, got {exponent}")
        self.n = n
        self.exponent = exponent
        self._rng = rng if rng is not None else make_rng(0)
        weights = [1.0 / (rank + 1) ** exponent for rank in range(n)]
        total = sum(weights)
        self._cumulative: list[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cumulative.append(acc)
        self._cumulative[-1] = 1.0

    def sample(self) -> int:
        """Draw one rank."""
        u = self._rng.random()
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def sample_many(self, count: int) -> list[int]:
        """Draw ``count`` i.i.d. ranks."""
        return [self.sample() for _ in range(count)]

    def probabilities(self) -> Sequence[float]:
        """The probability of each rank (for tests)."""
        probs = [self._cumulative[0]]
        for i in range(1, self.n):
            probs.append(self._cumulative[i] - self._cumulative[i - 1])
        return probs
