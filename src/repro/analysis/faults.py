"""Seeded fault injection: the verifier's mutation-testing harness.

A static checker is only trustworthy if it demonstrably *fails* on broken
state.  Each injector here corrupts a live deployment the way a real
controller bug would — bypassing the bookkeeping, exactly like a lost
flow-mod or a missed cleanup — and declares which
:class:`~repro.analysis.invariants.Violation` kinds the verifier must then
report.  The test suite and ``python -m repro check --self-test`` run every
injector against fresh deployments and assert the detection.

Injectors mutate deterministically: selection is by sorted order plus an
explicit :class:`random.Random`, never by iteration order of a dict or set.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.controller.tree import SpanningTree
from repro.exceptions import ReproError
from repro.network.flow import Action, FlowEntry

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.controller.controller import PleromaController

__all__ = ["FaultInjection", "FAULT_INJECTORS", "inject_fault"]


class FaultInjectionError(ReproError):
    """The deployment holds no state the requested fault can corrupt."""


@dataclass(frozen=True)
class FaultInjection:
    """What an injector did, and what the verifier owes us for it."""

    name: str
    description: str
    expected_kinds: frozenset[str]


def _installed_entries(controller: "PleromaController"):
    """All (switch, entry) pairs, deterministically ordered."""
    pairs = []
    for name in sorted(controller.partition):
        for entry in controller.installed_table(name).entries():
            pairs.append((name, entry))
    pairs.sort(key=lambda pair: (pair[0], pair[1].dz.bits))
    return pairs


def drop_flow_mod(
    controller: "PleromaController", rng: random.Random
) -> FaultInjection:
    """A flow-mod the controller believes it sent never reached the TCAM."""
    pairs = _installed_entries(controller)
    if not pairs:
        raise FaultInjectionError("no installed flows to drop")
    switch, entry = pairs[rng.randrange(len(pairs))]
    controller.installed_table(switch).remove(entry.match)
    return FaultInjection(
        name="dropped_flow_mod",
        description=f"removed flow for dz {entry.dz} from {switch!r}",
        expected_kinds=frozenset({"drift"}),
    )


def flip_port(
    controller: "PleromaController", rng: random.Random
) -> FaultInjection:
    """A flow forwards out the wrong port (corrupted action)."""
    candidates = []
    for switch, entry in _installed_entries(controller):
        ports = sorted(controller.network.switches[switch].ports)
        for action in sorted(
            entry.actions,
            key=lambda a: (a.out_port, a.set_dest if a.set_dest is not None else -1),
        ):
            others = [p for p in ports if p != action.out_port]
            if others:
                candidates.append((switch, entry, action, others))
    if not candidates:
        raise FaultInjectionError("no multi-port switch flow to corrupt")
    switch, entry, action, others = candidates[rng.randrange(len(candidates))]
    flipped = Action(others[rng.randrange(len(others))], action.set_dest)
    actions = (entry.actions - {action}) | {flipped}
    controller.installed_table(switch).install(
        entry.with_actions(frozenset(actions))
    )
    return FaultInjection(
        name="flipped_port",
        description=(
            f"rewired dz {entry.dz} on {switch!r}: {action} -> {flipped}"
        ),
        expected_kinds=frozenset({"drift"}),
    )


def duplicate_tree_dz(
    controller: "PleromaController", rng: random.Random
) -> FaultInjection:
    """Two trees end up owning the same subspace (broken Sec. 3.2 invariant)."""
    trees = sorted(controller.trees, key=lambda t: t.tree_id)
    if not trees:
        raise FaultInjectionError("no tree whose DZ could be duplicated")
    victim = trees[rng.randrange(len(trees))]
    parents = controller.trees.tree_builder(
        controller.topology, controller.partition, victim.root
    )
    rogue = SpanningTree(
        root=victim.root, parents=parents, dz_set=victim.dz_set
    )
    controller.trees.trees[rogue.tree_id] = rogue
    return FaultInjection(
        name="duplicated_tree_dz",
        description=(
            f"injected tree {rogue.tree_id} duplicating DZ "
            f"{victim.dz_set} of tree {victim.tree_id}"
        ),
        expected_kinds=frozenset({"tree_overlap"}),
    )


def stale_entry_after_unsubscribe(
    controller: "PleromaController", rng: random.Random
) -> FaultInjection:
    """An unsubscribe forgets its cleanup: the subscription state vanishes
    but its ledger paths and flows stay installed (Sec. 3.3.3 gone wrong)."""
    sub_ids = sorted(
        sub_id
        for sub_id in controller.subscriptions
        if controller.ledger.keys_for(sub_id=sub_id)
    )
    if not sub_ids:
        raise FaultInjectionError("no subscription with installed paths")
    sub_id = sub_ids[rng.randrange(len(sub_ids))]
    del controller.subscriptions[sub_id]
    for tree in controller.trees:
        tree.leave_subscriber(sub_id)
    return FaultInjection(
        name="stale_entry_after_unsubscribe",
        description=(
            f"dropped subscription {sub_id} without withdrawing its flows"
        ),
        expected_kinds=frozenset({"stale_path"}),
    )


#: All injectors, keyed by fault-class name.
FAULT_INJECTORS: dict[
    str, Callable[["PleromaController", random.Random], FaultInjection]
] = {
    "dropped_flow_mod": drop_flow_mod,
    "flipped_port": flip_port,
    "duplicated_tree_dz": duplicate_tree_dz,
    "stale_entry_after_unsubscribe": stale_entry_after_unsubscribe,
}


def inject_fault(
    controller: "PleromaController", name: str, seed: int = 0
) -> FaultInjection:
    """Inject one named fault class with a seeded RNG."""
    try:
        injector = FAULT_INJECTORS[name]
    except KeyError:
        raise FaultInjectionError(
            f"unknown fault class {name!r}; "
            f"choose from {sorted(FAULT_INJECTORS)}"
        ) from None
    return injector(controller, random.Random(seed))
