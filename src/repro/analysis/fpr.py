"""False-positive-rate evaluation (the Sec. 6.4 measurement).

A host receives an event iff the union of its subscriptions' DZ regions —
at the deployed indexing granularity — overlaps the event's dz; the
delivery is a *false positive* when none of the host's actual
subscriptions matches the raw event.  The packet-level test suite
establishes that the simulated fabric implements exactly this predicate,
so large FPR sweeps (Fig. 7d/7e, the CLI's ``fpr`` command) evaluate it
directly without running packets.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.dzset import DzSet
from repro.core.events import Event
from repro.core.spatial_index import SpatialIndexer
from repro.core.subscription import Subscription
from repro.exceptions import WorkloadError

__all__ = ["FprReport", "HostAssignment", "assign_round_robin", "evaluate_fpr"]


@dataclass(frozen=True)
class FprReport:
    """Outcome of one FPR evaluation."""

    delivered: int
    unwanted: int

    @property
    def fpr_percent(self) -> float:
        """The paper's FPR: unwanted over total deliveries, in percent."""
        if self.delivered == 0:
            return 0.0
        return 100.0 * self.unwanted / self.delivered


@dataclass
class HostAssignment:
    """Subscriptions grouped per host, with the aggregated DZ region."""

    subscriptions: list[list[Subscription]]
    regions: list[DzSet]


def assign_round_robin(
    subscriptions: Sequence[Subscription],
    hosts: int,
    indexer: SpatialIndexer,
) -> HostAssignment:
    """Divide subscriptions among ``hosts`` end hosts, round-robin, and
    pre-compute each host's union DZ region under ``indexer``."""
    if hosts < 1:
        raise WorkloadError("need at least one host")
    if not subscriptions:
        raise WorkloadError("need at least one subscription")
    per_host: list[list[Subscription]] = [[] for _ in range(hosts)]
    regions: list[DzSet] = [DzSet(frozenset()) for _ in range(hosts)]
    for i, sub in enumerate(subscriptions):
        host = i % hosts
        per_host[host].append(sub)
        regions[host] = regions[host].union(
            indexer.filter_to_dzset(sub.filter)
        )
    return HostAssignment(subscriptions=per_host, regions=regions)


def evaluate_fpr(
    assignment: HostAssignment,
    events: Sequence[Event],
    indexer: SpatialIndexer,
) -> FprReport:
    """Count deliveries and false positives for an event stream."""
    if not events:
        raise WorkloadError("need at least one event")
    delivered = unwanted = 0
    for event in events:
        event_dz = indexer.event_to_dz(event)
        for host, region in enumerate(assignment.regions):
            if not region.overlaps_dz(event_dz):
                continue
            delivered += 1
            if not any(
                sub.matches(event)
                for sub in assignment.subscriptions[host]
            ):
                unwanted += 1
    return FprReport(delivered=delivered, unwanted=unwanted)
