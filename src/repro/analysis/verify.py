"""The flow-state verifier: prove a controller snapshot correct, statically.

:func:`verify_controller` runs every invariant check of
:mod:`repro.analysis.invariants` over one controller and folds the results
into a :class:`VerificationReport`; :func:`verify_deployment` does so for
every controller of a deployment (a :class:`~repro.middleware.pleroma.Pleroma`
facade or a bare controller list).

Results are observable: each run increments ``analysis.verify.runs`` and
per-kind ``analysis.verify.violations`` counters in the controller's
metrics registry and emits one trace event per run, so churn workloads can
correlate violations with the request that introduced them.

The verifier never mutates the state it inspects and raises nothing on
violations — callers decide whether a dirty report is fatal
(:class:`VerificationError` is provided for that, and is what the
controller's ``verify_after_each_request`` debug hook raises).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterable
from typing import TYPE_CHECKING

from repro.analysis.invariants import (
    Violation,
    check_forwarding,
    check_ledger,
    check_shadowing,
    check_table_drift,
    check_tree_disjointness,
    check_tree_structure,
)
from repro.exceptions import ReproError

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.controller.controller import PleromaController

__all__ = [
    "VerificationError",
    "VerificationReport",
    "verify_controller",
    "verify_deployment",
    "CHECKS",
]


class VerificationError(ReproError):
    """Raised when a caller asked for violations to be fatal."""

    def __init__(self, report: "VerificationReport") -> None:
        self.report = report
        super().__init__(report.summary())


#: The check suite, in the order it runs.  Structural checks come first so
#: a report reads from root cause (state corruption) to symptom (bad
#: forwarding).
CHECKS: tuple[tuple[str, Callable[..., list[Violation]]], ...] = (
    ("tree_structure", check_tree_structure),
    ("tree_disjointness", check_tree_disjointness),
    ("ledger", check_ledger),
    ("table_drift", check_table_drift),
    ("shadowing", check_shadowing),
    ("forwarding", check_forwarding),
)


@dataclass(frozen=True)
class VerificationReport:
    """The outcome of one verifier run over one controller."""

    controller: str
    violations: tuple[Violation, ...]
    checks_run: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.kind] = counts.get(violation.kind, 0) + 1
        return dict(sorted(counts.items()))

    def kinds(self) -> set[str]:
        return {v.kind for v in self.violations}

    def summary(self) -> str:
        if self.ok:
            return (
                f"controller {self.controller}: OK "
                f"({len(self.checks_run)} checks)"
            )
        breakdown = ", ".join(
            f"{kind}={count}" for kind, count in self.by_kind().items()
        )
        return (
            f"controller {self.controller}: {len(self.violations)} "
            f"violation(s) [{breakdown}]"
        )

    def to_dict(self) -> dict:
        return {
            "controller": self.controller,
            "ok": self.ok,
            "checks_run": list(self.checks_run),
            "violations": [v.to_dict() for v in self.violations],
        }

    def render(self) -> str:
        lines = [self.summary()]
        lines.extend(f"  {violation}" for violation in self.violations)
        return "\n".join(lines)


def verify_controller(
    controller: "PleromaController",
    *,
    include_forwarding: bool = True,
    raise_on_violation: bool = False,
) -> VerificationReport:
    """Run the full invariant suite over one controller snapshot.

    ``include_forwarding=False`` skips the (comparatively expensive)
    forwarding-graph dissemination — useful as a fast pre-check inside
    tight churn loops.  With ``raise_on_violation`` a dirty report raises
    :class:`VerificationError` carrying the report.
    """
    violations: list[Violation] = []
    checks_run: list[str] = []
    for name, check in CHECKS:
        if name == "forwarding" and not include_forwarding:
            continue
        violations.extend(check(controller))
        checks_run.append(name)
    report = VerificationReport(
        controller=controller.name,
        violations=tuple(violations),
        checks_run=tuple(checks_run),
    )
    _record(controller, report)
    if raise_on_violation and not report.ok:
        raise VerificationError(report)
    return report


def verify_deployment(
    deployment,
    *,
    include_forwarding: bool = True,
    raise_on_violation: bool = False,
) -> list[VerificationReport]:
    """Verify every controller of a deployment.

    ``deployment`` is either a :class:`~repro.middleware.pleroma.Pleroma`
    facade (its ``controllers`` attribute is used) or any iterable of
    controllers.
    """
    controllers: Iterable["PleromaController"] = getattr(
        deployment, "controllers", deployment
    )
    reports = [
        verify_controller(controller, include_forwarding=include_forwarding)
        for controller in controllers
    ]
    if raise_on_violation:
        dirty = [report for report in reports if not report.ok]
        if dirty:
            raise VerificationError(dirty[0])
    return reports


def _record(
    controller: "PleromaController", report: VerificationReport
) -> None:
    """Publish a run's outcome through the controller's obs bundle."""
    registry = controller.obs.registry
    registry.counter("analysis.verify.runs", controller=controller.name).inc()
    for kind, count in report.by_kind().items():
        registry.counter(
            "analysis.verify.violations",
            controller=controller.name,
            kind=kind,
        ).inc(count)
    controller.obs.tracer.event(
        "verify",
        "ok" if report.ok else "violation",
        controller=controller.name,
        checks=list(report.checks_run),
        violations=report.by_kind(),
    )
