"""Static invariants over the installed flow state (VeriFlow-style).

PLEROMA's Algorithm 1 compiles covering relations into TCAM prefix rules
that are supposed to be *correct by construction*.  This module makes that
claim checkable: each function inspects a controller snapshot — no packet
is injected — and returns structured :class:`Violation` records for every
breach of the data-plane contract it finds.

The invariants, mirroring the classic SDN verification literature
(VeriFlow, Header Space Analysis) specialised to the dz algebra:

* **Forwarding soundness** — for every dz prefix a tree disseminates, the
  forwarding graph carved out of the installed tables is acyclic, reaches
  every matching subscriber host (loop/blackhole freedom) and delivers to
  no host without a matching subscription.
* **Tree disjointness** — the DZ sets owned by distinct trees of one
  controller never overlap, so an event is disseminated in at most one
  tree (Sec. 3.2).
* **Dead rules** — no TCAM entry is fully shadowed by a coarser entry of
  strictly higher priority (such an entry can never win a lookup).
* **Drift** — every switch's installed table equals the desired state the
  reconciler derives from the contribution ledger, and the incremental
  :class:`~repro.controller.dztrie.DzTrie` agrees with the from-scratch
  reconciler.
* **Bookkeeping** — ledger paths reference live trees/advertisements/
  subscriptions; every (publisher, subscriber) pair that should be wired
  is; every advertised region is owned by a tree.

Each check is deterministic: iteration is over sorted keys only, so equal
states produce byte-identical violation lists.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.controller.reconciler import desired_flows
from repro.core.addressing import dz_to_address
from repro.core.dz import Dz
from repro.core.dzset import DzSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.controller.controller import PleromaController
    from repro.controller.state import Endpoint
    from repro.network.flow import FlowTable

__all__ = [
    "Violation",
    "VIOLATION_KINDS",
    "check_tree_structure",
    "check_tree_disjointness",
    "check_shadowing",
    "check_table_drift",
    "check_ledger",
    "check_forwarding",
]

#: Every violation kind the checks can emit, in severity-ish order.
VIOLATION_KINDS: tuple[str, ...] = (
    "loop",
    "blackhole",
    "misdelivery",
    "tree_cycle",
    "tree_overlap",
    "shadowed_rule",
    "drift",
    "foreign_flow",
    "stale_path",
    "missing_path",
    "uncovered_advertisement",
)


@dataclass(frozen=True)
class Violation:
    """One breach of a data-plane invariant.

    ``kind`` is one of :data:`VIOLATION_KINDS`; ``subject`` names the
    offending object (a switch, a tree id, a dz); ``details`` carries
    JSON-compatible context for reports and assertions.
    """

    kind: str
    controller: str
    subject: str
    message: str
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "controller": self.controller,
            "subject": self.subject,
            "message": self.message,
            "details": self.details,
        }

    def __str__(self) -> str:
        return f"[{self.kind}] {self.controller}/{self.subject}: {self.message}"


# ----------------------------------------------------------------------
# tree-level invariants
# ----------------------------------------------------------------------
def check_tree_structure(controller: "PleromaController") -> list[Violation]:
    """Every tree's parent map must be a cycle-free arborescence."""
    from repro.exceptions import ControllerError

    violations: list[Violation] = []
    for tree in _sorted_trees(controller):
        try:
            tree._validate()
        except ControllerError as exc:
            violations.append(
                Violation(
                    kind="tree_cycle",
                    controller=controller.name,
                    subject=f"tree:{tree.tree_id}",
                    message=str(exc),
                    details={"tree_id": tree.tree_id, "root": tree.root},
                )
            )
    return violations


def check_tree_disjointness(controller: "PleromaController") -> list[Violation]:
    """``DZ(t) ∩ DZ(t') = ∅`` for all distinct trees (Sec. 3.2)."""
    violations: list[Violation] = []
    trees = _sorted_trees(controller)
    for i, t1 in enumerate(trees):
        for t2 in trees[i + 1:]:
            if t1.dz_set.overlaps(t2.dz_set):
                violations.append(
                    Violation(
                        kind="tree_overlap",
                        controller=controller.name,
                        subject=f"tree:{t1.tree_id}+{t2.tree_id}",
                        message=(
                            f"trees {t1.tree_id} and {t2.tree_id} own "
                            f"overlapping DZ: {t1.dz_set} vs {t2.dz_set}"
                        ),
                        details={
                            "tree_ids": [t1.tree_id, t2.tree_id],
                            "dz_sets": [
                                sorted(d.bits for d in t1.dz_set),
                                sorted(d.bits for d in t2.dz_set),
                            ],
                        },
                    )
                )
    return violations


# ----------------------------------------------------------------------
# table-level invariants
# ----------------------------------------------------------------------
def check_shadowing(controller: "PleromaController") -> list[Violation]:
    """No installed entry may be dead: fully shadowed by a coarser entry
    of strictly higher priority.

    The TCAM executes only the best ``(priority, prefix_len)`` match.  A
    coarser prefix matches every packet a finer one does, so a coarser
    entry with higher priority makes the finer entry unreachable — with
    the controller's ``priority == |dz|`` rule this never happens, which
    makes the check a detector for corrupted priorities.
    """
    violations: list[Violation] = []
    for name in sorted(controller.partition):
        entries = controller.installed_table(name).entries()
        for shadowed in entries:
            for shadowing in entries:
                if shadowing.match == shadowed.match:
                    continue
                if (
                    shadowing.match.covers(shadowed.match)
                    and shadowing.priority > shadowed.priority
                ):
                    violations.append(
                        Violation(
                            kind="shadowed_rule",
                            controller=controller.name,
                            subject=name,
                            message=(
                                f"entry {shadowed} on {name} can never "
                                f"match: shadowed by {shadowing}"
                            ),
                            details={
                                "switch": name,
                                "dead_dz": shadowed.dz.bits,
                                "dead_priority": shadowed.priority,
                                "shadowing_dz": shadowing.dz.bits,
                                "shadowing_priority": shadowing.priority,
                            },
                        )
                    )
                    break  # one witness per dead entry is enough
    return violations


def check_table_drift(controller: "PleromaController") -> list[Violation]:
    """Installed tables must equal the ledger-derived desired state.

    In ``reconcile`` mode the desired table is unique and the comparison
    is exact (entries, action sets, priorities).  ``incremental`` mode
    legitimately leaves redundant entries behind, so the comparison is
    semantic: for every relevant dz the executed action set must match.
    The incremental DzTrie is also pinned against the from-scratch
    reconciler — drift between the two data structures is itself a bug.
    """
    violations: list[Violation] = []
    ledger_switches = set(controller.ledger.switches())
    for name in sorted(ledger_switches - controller.partition):
        violations.append(
            Violation(
                kind="foreign_flow",
                controller=controller.name,
                subject=name,
                message=(
                    f"controller {controller.name} holds contributions on "
                    f"switch {name!r} outside its partition"
                ),
                details={"switch": name},
            )
        )
    for name in sorted(controller.partition):
        table = controller.installed_table(name)
        contributions = controller.ledger.contributions(name)
        desired = desired_flows(contributions)
        trie = controller.ledger.trie(name)
        for dz in sorted(contributions, key=lambda d: (len(d), d.bits)):
            if trie.desired_entry(dz) != desired.get(dz):
                violations.append(
                    Violation(
                        kind="drift",
                        controller=controller.name,
                        subject=name,
                        message=(
                            f"DzTrie and reconciler disagree on {name} at "
                            f"dz {dz}"
                        ),
                        details={
                            "switch": name,
                            "dz": dz.bits,
                            "reason": "trie_mismatch",
                        },
                    )
                )
        if controller.install_mode == "reconcile":
            violations.extend(
                _exact_drift(controller.name, name, table, desired)
            )
        else:
            violations.extend(
                _semantic_drift(controller.name, name, table, desired)
            )
    return violations


def _exact_drift(
    controller_name: str,
    switch: str,
    table: "FlowTable",
    desired: dict[Dz, frozenset],
) -> Iterator[Violation]:
    installed = {entry.dz: entry for entry in table.entries()}
    for dz in sorted(
        set(installed) | set(desired), key=lambda d: (len(d), d.bits)
    ):
        entry = installed.get(dz)
        want = desired.get(dz)
        if entry is None:
            yield Violation(
                kind="drift",
                controller=controller_name,
                subject=switch,
                message=f"missing flow for dz {dz} on {switch}",
                details={
                    "switch": switch,
                    "dz": dz.bits,
                    "reason": "missing_entry",
                    "desired_actions": sorted(str(a) for a in (want or ())),
                },
            )
        elif want is None:
            yield Violation(
                kind="drift",
                controller=controller_name,
                subject=switch,
                message=f"stale flow for dz {dz} on {switch}",
                details={
                    "switch": switch,
                    "dz": dz.bits,
                    "reason": "extra_entry",
                    "installed_actions": sorted(str(a) for a in entry.actions),
                },
            )
        elif entry.actions != want or entry.priority != len(dz):
            yield Violation(
                kind="drift",
                controller=controller_name,
                subject=switch,
                message=(
                    f"flow for dz {dz} on {switch} diverges from desired "
                    f"state"
                ),
                details={
                    "switch": switch,
                    "dz": dz.bits,
                    "reason": "wrong_entry",
                    "installed_actions": sorted(str(a) for a in entry.actions),
                    "desired_actions": sorted(str(a) for a in want),
                    "installed_priority": entry.priority,
                    "desired_priority": len(dz),
                },
            )


def _semantic_drift(
    controller_name: str,
    switch: str,
    table: "FlowTable",
    desired: dict[Dz, frozenset],
) -> Iterator[Violation]:
    probes = {entry.dz for entry in table.entries()} | set(desired)
    for dz in sorted(probes, key=lambda d: (len(d), d.bits)):
        entry = table.lookup(dz_to_address(dz))
        executed = entry.actions if entry is not None else frozenset()
        covering = [d for d in desired if d.covers(dz)]
        if covering:
            best = max(covering, key=len)
            wanted = desired[best]
        else:
            wanted = frozenset()
        if executed != wanted:
            yield Violation(
                kind="drift",
                controller=controller_name,
                subject=switch,
                message=(
                    f"switch {switch} executes the wrong action set for "
                    f"events in dz {dz}"
                ),
                details={
                    "switch": switch,
                    "dz": dz.bits,
                    "reason": "semantic",
                    "executed_actions": sorted(str(a) for a in executed),
                    "desired_actions": sorted(str(a) for a in wanted),
                },
            )


# ----------------------------------------------------------------------
# bookkeeping invariants
# ----------------------------------------------------------------------
def check_ledger(controller: "PleromaController") -> list[Violation]:
    """Ledger paths must reference live state, and live state must be
    fully wired into the ledger.

    * every :class:`~repro.controller.state.PathKey` references a live
      tree, advertisement and subscription (else ``stale_path``);
    * for every tree, publisher member and subscription, the installed
      region equals ``DZ^t(p) ∩ DZ(s)`` (``missing_path`` when too small,
      ``stale_path`` when too large);
    * every advertised region is owned by trees carrying the publisher
      (``uncovered_advertisement``).
    """
    violations: list[Violation] = []
    tree_ids = set(controller.trees.trees)
    advs = controller.advertisements
    subs = controller.subscriptions
    for key in sorted(
        controller.ledger.keys_for(),
        key=lambda k: (k.tree_id, k.adv_id, k.sub_id, k.dz.bits),
    ):
        missing = []
        if key.tree_id not in tree_ids:
            missing.append(f"tree {key.tree_id}")
        if key.adv_id not in advs:
            missing.append(f"advertisement {key.adv_id}")
        if key.sub_id not in subs:
            missing.append(f"subscription {key.sub_id}")
        if missing:
            violations.append(
                Violation(
                    kind="stale_path",
                    controller=controller.name,
                    subject=f"tree:{key.tree_id}",
                    message=(
                        f"ledger path (tree={key.tree_id}, adv={key.adv_id}, "
                        f"sub={key.sub_id}, dz={key.dz}) references dead "
                        f"state: {', '.join(missing)}"
                    ),
                    details={
                        "tree_id": key.tree_id,
                        "adv_id": key.adv_id,
                        "sub_id": key.sub_id,
                        "dz": key.dz.bits,
                        "missing": missing,
                    },
                )
            )
    for tree in _sorted_trees(controller):
        for adv_id in sorted(tree.publishers):
            pub = tree.publishers[adv_id]
            for sub_id in sorted(subs):
                sub_state = subs[sub_id]
                if pub.endpoint.name == sub_state.endpoint.name:
                    continue
                expected = pub.overlap.intersect(sub_state.dz_set)
                actual = DzSet.from_iterable(
                    key.dz
                    for key in controller.ledger.keys_for(
                        tree_id=tree.tree_id, adv_id=adv_id, sub_id=sub_id
                    )
                )
                if actual == expected:
                    continue
                too_small = not expected.subtract(actual).is_empty
                violations.append(
                    Violation(
                        kind="missing_path" if too_small else "stale_path",
                        controller=controller.name,
                        subject=f"tree:{tree.tree_id}",
                        message=(
                            f"tree {tree.tree_id}: installed region for "
                            f"publisher {adv_id} -> subscriber {sub_id} is "
                            f"{actual}, expected {expected}"
                        ),
                        details={
                            "tree_id": tree.tree_id,
                            "adv_id": adv_id,
                            "sub_id": sub_id,
                            "installed": sorted(d.bits for d in actual),
                            "expected": sorted(d.bits for d in expected),
                        },
                    )
                )
    for adv_id in sorted(advs):
        adv = advs[adv_id]
        owned = DzSet.of()
        for tree in _sorted_trees(controller):
            member = tree.publishers.get(adv_id)
            if member is not None:
                owned = owned.union(member.overlap)
        uncovered = adv.dz_set.subtract(owned)
        if not uncovered.is_empty:
            violations.append(
                Violation(
                    kind="uncovered_advertisement",
                    controller=controller.name,
                    subject=f"adv:{adv_id}",
                    message=(
                        f"advertisement {adv_id} region {uncovered} is "
                        f"owned by no tree"
                    ),
                    details={
                        "adv_id": adv_id,
                        "uncovered": sorted(d.bits for d in uncovered),
                    },
                )
            )
    return violations


# ----------------------------------------------------------------------
# forwarding-graph invariants (loop / blackhole / misdelivery freedom)
# ----------------------------------------------------------------------
@dataclass
class _Trace:
    """The static fan-out of one probe through the installed tables."""

    deliveries: list[tuple[str, int | None]]  # (host, rewritten dst)
    border_exits: list[tuple[str, int]]  # (switch, out_port)
    drops: list[str]  # switches that matched nothing (false-positive drop)
    misdirected: list[tuple[str, str]]  # (switch, switch hit by a rewrite)
    loops: list[tuple[str, str]]  # (from switch, revisited switch)
    bad_ports: list[tuple[str, int]]  # (switch, port with no link)


def check_forwarding(controller: "PleromaController") -> list[Violation]:
    """Statically disseminate a probe per (publisher, dz prefix) and
    verify the resulting forwarding graph.

    For every tree, every publisher member and every dz of its overlap,
    the probe set is the dz itself plus every strictly finer dz installed
    anywhere in the partition (the equivalence classes a real event could
    fall into).  Each probe must reach exactly the subscribers whose
    region covers it, visiting no switch twice and dying on no switch.
    """
    violations: list[Violation] = []
    port_maps = {
        name: _port_map(controller, name)
        for name in sorted(controller.partition)
    }
    # Probe candidates are the equivalence classes a real event can fall
    # into: every dz installed in some table, plus every dz a ledger path
    # was keyed at (entries for those may be redundancy-absorbed into
    # coarser flows, but events in them must still be routed correctly).
    candidates = sorted(
        {
            entry.dz
            for name in controller.partition
            for entry in controller.installed_table(name).entries()
        }
        | {key.dz for key in controller.ledger.keys_for()},
        key=lambda d: (len(d), d.bits),
    )
    for tree in _sorted_trees(controller):
        for adv_id in sorted(tree.publishers):
            pub = tree.publishers[adv_id]
            probes: set[Dz] = set()
            for dz in pub.overlap:
                probes.add(dz)
                probes.update(
                    finer
                    for finer in candidates
                    if dz.covers(finer) and finer != dz
                )
            for probe in sorted(probes, key=lambda d: (len(d), d.bits)):
                trace = _disseminate(
                    controller, port_maps, pub.endpoint, probe
                )
                subject = f"tree:{tree.tree_id}"
                for origin, revisited in trace.loops:
                    violations.append(
                        Violation(
                            kind="loop",
                            controller=controller.name,
                            subject=subject,
                            message=(
                                f"probe dz {probe} from publisher {adv_id} "
                                f"re-enters switch {revisited!r} (from "
                                f"{origin!r})"
                            ),
                            details={
                                "tree_id": tree.tree_id,
                                "adv_id": adv_id,
                                "dz": probe.bits,
                                "from": origin,
                                "revisited": revisited,
                            },
                        )
                    )
                # A lookup miss (trace.drops) is NOT a violation: table
                # miss means drop by design, and dropping false-positive
                # traffic mid-tree is exactly how the paper's coarse
                # flows behave.  A missing delivery to a *matching*
                # subscriber is what _check_deliveries flags below.
                for switch, target in trace.misdirected:
                    violations.append(
                        Violation(
                            kind="blackhole",
                            controller=controller.name,
                            subject=switch,
                            message=(
                                f"terminal flow on {switch!r} rewrites "
                                f"probe dz {probe} towards switch "
                                f"{target!r}, where the unicast packet "
                                f"matches nothing and dies"
                            ),
                            details={
                                "tree_id": tree.tree_id,
                                "adv_id": adv_id,
                                "dz": probe.bits,
                                "switch": switch,
                                "target": target,
                            },
                        )
                    )
                for switch, port in trace.bad_ports:
                    violations.append(
                        Violation(
                            kind="blackhole",
                            controller=controller.name,
                            subject=switch,
                            message=(
                                f"flow on {switch!r} outputs probe dz "
                                f"{probe} on port {port}, which has no link"
                            ),
                            details={
                                "tree_id": tree.tree_id,
                                "adv_id": adv_id,
                                "dz": probe.bits,
                                "switch": switch,
                                "port": port,
                            },
                        )
                    )
                violations.extend(
                    _check_deliveries(
                        controller, tree, adv_id, pub.endpoint, probe, trace
                    )
                )
    return violations


def _check_deliveries(
    controller: "PleromaController",
    tree,
    adv_id: int,
    pub_endpoint: "Endpoint",
    probe: Dz,
    trace: _Trace,
) -> Iterator[Violation]:
    subs = controller.subscriptions
    delivered_hosts = {host for host, _ in trace.deliveries}
    exits = set(trace.border_exits)
    # every matching subscriber must be reached
    for sub_id in sorted(subs):
        sub_state = subs[sub_id]
        ep = sub_state.endpoint
        if ep.name == pub_endpoint.name:
            continue
        wanted = tree.publishers[adv_id].overlap.intersect(sub_state.dz_set)
        if not wanted.covers_dz(probe):
            continue
        reached = (
            (ep.switch, ep.port) in exits
            if ep.is_virtual
            else ep.name in delivered_hosts
        )
        if not reached:
            yield Violation(
                kind="blackhole",
                controller=controller.name,
                subject=f"tree:{tree.tree_id}",
                message=(
                    f"events in dz {probe} from publisher {adv_id} never "
                    f"reach matching subscriber {sub_id} at {ep.name!r}"
                ),
                details={
                    "tree_id": tree.tree_id,
                    "adv_id": adv_id,
                    "sub_id": sub_id,
                    "dz": probe.bits,
                    "subscriber": ep.name,
                },
            )
    # no delivery may lack a matching subscription
    matching_hosts = {
        s.endpoint.name
        for s in subs.values()
        if not s.endpoint.is_virtual and s.dz_set.overlaps_dz(probe)
    }
    matching_exits = {
        (s.endpoint.switch, s.endpoint.port)
        for s in subs.values()
        if s.endpoint.is_virtual and s.dz_set.overlaps_dz(probe)
    }
    for host, rewritten in sorted(
        trace.deliveries, key=lambda d: (d[0], d[1] or 0)
    ):
        expected_address = controller.network.hosts[host].address
        if host not in matching_hosts:
            yield Violation(
                kind="misdelivery",
                controller=controller.name,
                subject=f"tree:{tree.tree_id}",
                message=(
                    f"events in dz {probe} from publisher {adv_id} are "
                    f"delivered to {host!r}, which has no matching "
                    f"subscription"
                ),
                details={
                    "tree_id": tree.tree_id,
                    "adv_id": adv_id,
                    "dz": probe.bits,
                    "host": host,
                },
            )
        elif rewritten != expected_address:
            yield Violation(
                kind="misdelivery",
                controller=controller.name,
                subject=f"tree:{tree.tree_id}",
                message=(
                    f"terminal flow delivers dz {probe} to {host!r} "
                    f"without rewriting the destination to its address"
                ),
                details={
                    "tree_id": tree.tree_id,
                    "adv_id": adv_id,
                    "dz": probe.bits,
                    "host": host,
                    "rewritten": rewritten,
                    "expected": expected_address,
                },
            )
    for switch, port in sorted(exits):
        if (switch, port) not in matching_exits:
            yield Violation(
                kind="misdelivery",
                controller=controller.name,
                subject=f"tree:{tree.tree_id}",
                message=(
                    f"events in dz {probe} from publisher {adv_id} leave "
                    f"the partition via {switch!r} port {port} with no "
                    f"matching external subscriber"
                ),
                details={
                    "tree_id": tree.tree_id,
                    "adv_id": adv_id,
                    "dz": probe.bits,
                    "switch": switch,
                    "port": port,
                },
            )


def _disseminate(
    controller: "PleromaController",
    port_maps: dict[str, dict[int, str]],
    origin: "Endpoint",
    probe: Dz,
) -> _Trace:
    """Statically replay the switch data plane for one probe address.

    Mirrors :meth:`repro.network.switch.Switch.receive` exactly: best
    ``(priority, prefix_len)`` match only, and a packet is never bounced
    back out its ingress port unless the action rewrites the destination
    (a terminal delivery).
    """
    address = dz_to_address(probe)
    trace = _Trace([], [], [], [], [], [])
    start = origin.switch
    visited = {start}
    queue: deque[tuple[str, int]] = deque([(start, origin.port)])
    while queue:
        switch, in_port = queue.popleft()
        entry = controller.installed_table(switch).lookup(address)
        if entry is None:
            trace.drops.append(switch)
            continue
        ports = port_maps[switch]
        # keyed sort: corrupted states may mix None/int set_dest on one port
        for action in sorted(
            entry.actions,
            key=lambda a: (a.out_port, a.set_dest if a.set_dest is not None else -1),
        ):
            if action.out_port == in_port and action.set_dest is None:
                continue  # ingress-port suppression, as the switch does
            neighbor = ports.get(action.out_port)
            if neighbor is None:
                trace.bad_ports.append((switch, action.out_port))
            elif neighbor in controller.network.hosts:
                trace.deliveries.append((neighbor, action.set_dest))
            elif action.set_dest is not None:
                # a rewriting (terminal) action aimed at a switch: the
                # unicast packet matches no dz prefix there and dies
                trace.misdirected.append((switch, neighbor))
            elif neighbor not in controller.partition:
                trace.border_exits.append((switch, action.out_port))
            elif neighbor in visited:
                trace.loops.append((switch, neighbor))
            else:
                visited.add(neighbor)
                queue.append(
                    (neighbor, controller.network.port(neighbor, switch))
                )
    return trace


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _sorted_trees(controller: "PleromaController"):
    return sorted(controller.trees, key=lambda t: t.tree_id)


def _port_map(
    controller: "PleromaController", switch: str
) -> dict[int, str]:
    return {
        controller.network.port(switch, neighbor): neighbor
        for neighbor in controller.topology.neighbors(switch)
    }
