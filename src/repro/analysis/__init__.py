"""Offline analysis helpers shared by benchmarks and the CLI."""

from repro.analysis.fpr import (
    FprReport,
    HostAssignment,
    assign_round_robin,
    evaluate_fpr,
)

__all__ = [
    "FprReport",
    "HostAssignment",
    "assign_round_robin",
    "evaluate_fpr",
]
