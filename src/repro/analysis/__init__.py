"""Offline analysis: FPR evaluation and static flow-state verification."""

from repro.analysis.fpr import (
    FprReport,
    HostAssignment,
    assign_round_robin,
    evaluate_fpr,
)
from repro.analysis.invariants import VIOLATION_KINDS, Violation
from repro.analysis.verify import (
    VerificationError,
    VerificationReport,
    verify_controller,
    verify_deployment,
)

__all__ = [
    "FprReport",
    "HostAssignment",
    "assign_round_robin",
    "evaluate_fpr",
    "Violation",
    "VIOLATION_KINDS",
    "VerificationError",
    "VerificationReport",
    "verify_controller",
    "verify_deployment",
]
