"""LLDP-based discovery of border switches (Sec. 4.1).

Each controller floods LLDP packets through its own switches.  A switch
receiving LLDP directly from its controller forwards it on all ports; a
switch receiving LLDP from *another* switch hands it to its controller.
Packets originating from a foreign controller reveal a border: the
controller notes the local ``(switch, port)`` tuple at which foreign LLDP
arrived.  Those tuples are all a controller ever knows about its
neighbours — identities stay hidden.

The simulation performs the same walk over the fabric's links: for every
inter-switch link whose endpoints belong to different partitions, each side
records its local border port.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from repro.exceptions import FederationError
from repro.network.fabric import Network

__all__ = ["BorderPort", "discover_borders"]


@dataclass(frozen=True, order=True)
class BorderPort:
    """A local switch/port tuple facing an adjoining partition."""

    switch: str
    port: int

    @property
    def key(self) -> str:
        return f"{self.switch}:{self.port}"


def discover_borders(
    network: Network, owner_of: Mapping[str, str]
) -> dict[str, list[BorderPort]]:
    """Run LLDP discovery over the fabric.

    ``owner_of`` maps each switch name to its controller name.  Returns,
    per controller, the sorted list of border ports at which that
    controller's switches received LLDP from a foreign controller.
    """
    for switch in network.switches:
        if switch not in owner_of:
            raise FederationError(f"switch {switch!r} has no controller")
    borders: dict[str, set[BorderPort]] = {
        name: set() for name in set(owner_of.values())
    }
    # LLDP from controller c floods out of every switch of c; when a frame
    # crosses a link into a switch of a different controller c2, the frame
    # is handed to c2, which notes the receiving (switch, port).
    for link in network.links.values():
        a, b = link.a, link.b
        if a.name not in owner_of or b.name not in owner_of:
            continue  # host attachment, not a switch-switch link
        owner_a, owner_b = owner_of[a.name], owner_of[b.name]
        if owner_a == owner_b:
            continue
        borders[owner_b].add(BorderPort(b.name, link.port_for(b)))
        borders[owner_a].add(BorderPort(a.name, link.port_for(a)))
    return {name: sorted(ports) for name, ports in borders.items()}
