"""Interoperability of independently controlled partitions (Sec. 4).

The :class:`Federation` wires several :class:`PleromaController` instances —
one per partition — into one publish/subscribe system while preserving
decentralised control: every controller only ever touches its own switches,
and only exchanges messages with *anonymous* neighbours through border
switch ports discovered via LLDP.

Protocol (Sec. 4.2):

* an **advertisement** processed by a controller is forwarded to all
  adjoining partitions (except the one it arrived from).  The receiving
  controller perceives it as coming from a *virtual host* attached to its
  border switch, processes it with the ordinary Algorithm 1 machinery
  (which also builds transit paths to virtual subscribers of other
  borders), and forwards it onward;
* a **subscription** follows the reverse path of overlapping
  advertisements: it is forwarded only through borders whose advertised
  region it overlaps;
* **covering-based forwarding**: a request is not forwarded through a
  border if previously forwarded requests already cover its region.  This
  is the mechanism behind the control-traffic savings of Fig. 7(g)/(h) and
  can be disabled (``covering_enabled=False``) for the ablation benchmark.

Deduplication by origin request id guards against cyclic partition graphs
(see :mod:`repro.interop.messages`).

**Covering relaxation** (our addition — the paper does not treat
withdrawals): per-border covering records must *shrink* when a request is
withdrawn, and any live request whose forwarding had been suppressed by
the departed one must be announced then.  Without this, a covered request
orphaned by its cover would be invisible to remote partitions — a
cross-partition false negative.  See :meth:`Federation._relax_adv_covering`
and the regression tests in ``tests/interop/test_federation.py``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from collections.abc import Iterable

from repro.controller.controller import (
    AdvertisementState,
    PleromaController,
    SubscriptionState,
)
from repro.core.addressing import PUBSUB_CONTROL_ADDRESS
from repro.core.dzset import DzSet, EMPTY
from repro.exceptions import FederationError
from repro.interop.discovery import BorderPort, discover_borders
from repro.interop.messages import (
    ExternalAdvertisement,
    ExternalSubscription,
    ExternalUnadvertisement,
    ExternalUnsubscription,
    RequestId,
)
from repro.network.fabric import Network
from repro.network.packet import Packet
from repro.network.switch import Switch
from repro.obs.context import Observability

__all__ = ["Federation", "FederationStats"]

#: Size of an inter-controller control datagram (request header + DZ set).
_CONTROL_MESSAGE_BYTES = 96


@dataclass
class FederationStats:
    """Control-plane accounting for the Fig. 7(g)/(h) experiments."""

    internal_requests: Counter = field(default_factory=Counter)
    external_requests: Counter = field(default_factory=Counter)
    messages_sent: Counter = field(default_factory=Counter)

    def requests_received(self, controller: str) -> int:
        """Total load on one controller: internal + external requests."""
        return (
            self.internal_requests[controller]
            + self.external_requests[controller]
        )

    def average_overhead(self, controllers: Iterable[str]) -> float:
        names = list(controllers)
        return sum(self.requests_received(n) for n in names) / len(names)

    def total_control_traffic(self) -> int:
        """All control messages: host requests plus inter-controller ones."""
        return (
            sum(self.internal_requests.values())
            + sum(self.messages_sent.values())
        )


@dataclass
class _PartitionState:
    """Federation bookkeeping for one controller."""

    controller: PleromaController
    borders: list[BorderPort]
    ext_adv_region: dict[BorderPort, DzSet] = field(default_factory=dict)
    forwarded_advs: dict[BorderPort, DzSet] = field(default_factory=dict)
    forwarded_subs: dict[BorderPort, DzSet] = field(default_factory=dict)
    processed: set[RequestId] = field(default_factory=set)
    local_adv_for: dict[RequestId, int] = field(default_factory=dict)
    local_sub_for: dict[RequestId, int] = field(default_factory=dict)
    adv_forwarded_to: dict[RequestId, set[BorderPort]] = field(
        default_factory=dict
    )
    sub_forwarded_to: dict[RequestId, set[BorderPort]] = field(
        default_factory=dict
    )
    request_of_sub: dict[int, RequestId] = field(default_factory=dict)
    request_of_adv: dict[int, RequestId] = field(default_factory=dict)
    # live request registries: region and ingress border (None = internal).
    # Withdrawals recompute the covering records from these and re-announce
    # requests whose forwarding had been suppressed by the departed one.
    adv_dz: dict[RequestId, DzSet] = field(default_factory=dict)
    sub_dz: dict[RequestId, DzSet] = field(default_factory=dict)
    adv_ingress: dict[RequestId, BorderPort | None] = field(
        default_factory=dict
    )
    sub_ingress: dict[RequestId, BorderPort | None] = field(
        default_factory=dict
    )

    def virtual_name(self, border: BorderPort) -> str:
        return f"vh:{border.key}"


class Federation:
    """Glue running multiple controllers as one interoperable system."""

    def __init__(
        self,
        network: Network,
        controllers: Iterable[PleromaController],
        covering_enabled: bool = True,
        obs: Observability | None = None,
    ) -> None:
        self.network = network
        self.covering_enabled = covering_enabled
        # Federation counters mirror FederationStats into the registry and
        # its exchanges into the trace, alongside the device metrics.
        self.obs = (
            obs if obs is not None
            else Observability(network.sim, registry=network.registry)
        )
        self.controllers: dict[str, PleromaController] = {}
        owner_of: dict[str, str] = {}
        for controller in controllers:
            if controller.name in self.controllers:
                raise FederationError(
                    f"duplicate controller name {controller.name!r}"
                )
            if controller.control_channel is not None:
                raise FederationError(
                    f"controller {controller.name!r} uses an OpenFlow "
                    "control channel; federation rewires switch control "
                    "handlers directly and cannot coexist with it"
                )
            self.controllers[controller.name] = controller
            for switch in controller.partition:
                if switch in owner_of:
                    raise FederationError(
                        f"switch {switch!r} claimed by two controllers"
                    )
                owner_of[switch] = controller.name
        missing = set(network.switches) - set(owner_of)
        if missing:
            raise FederationError(f"uncontrolled switches: {sorted(missing)}")
        self.owner_of = owner_of
        self.stats = FederationStats()
        borders = discover_borders(network, owner_of)
        self._states: dict[str, _PartitionState] = {}
        for name, controller in self.controllers.items():
            state = _PartitionState(
                controller=controller, borders=borders.get(name, [])
            )
            for border in state.borders:
                state.ext_adv_region[border] = EMPTY
                state.forwarded_advs[border] = EMPTY
                state.forwarded_subs[border] = EMPTY
                controller.register_virtual_endpoint(
                    state.virtual_name(border), border.switch, border.port
                )
            self._states[name] = state
            controller.adv_listeners.append(
                lambda adv, s=state: self._on_internal_adv(s, adv)
            )
            controller.sub_listeners.append(
                lambda sub, s=state: self._on_internal_sub(s, sub)
            )
            for switch_name in controller.partition:
                network.switches[switch_name].set_control_handler(
                    lambda sw, pkt, port, s=state: self._handle_packet(
                        s, sw, pkt, port
                    )
                )

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def controller_for_host(self, host: str) -> PleromaController:
        """The controller owning a host's access switch."""
        switch = self.network.topology.access_switch(host)
        return self.controllers[self.owner_of[switch]]

    def borders_of(self, controller_name: str) -> list[BorderPort]:
        return list(self._states[controller_name].borders)

    # ------------------------------------------------------------------
    # host-facing operations (routed to the local controller)
    # ------------------------------------------------------------------
    def advertise(self, host: str, *args, **kwargs) -> AdvertisementState:
        return self.controller_for_host(host).advertise(host, *args, **kwargs)

    def subscribe(self, host: str, *args, **kwargs) -> SubscriptionState:
        return self.controller_for_host(host).subscribe(host, *args, **kwargs)

    def unsubscribe(self, host: str, sub_id: int) -> None:
        controller = self.controller_for_host(host)
        state = self._states[controller.name]
        rid = state.request_of_sub.pop(sub_id, None)
        controller.unsubscribe(sub_id)
        if rid is not None:
            state.sub_dz.pop(rid, None)
            state.sub_ingress.pop(rid, None)
            for border in state.sub_forwarded_to.pop(rid, set()):
                self._send(state, border, ExternalUnsubscription(rid))
            self._relax_sub_covering(state)

    def unadvertise(self, host: str, adv_id: int) -> None:
        controller = self.controller_for_host(host)
        state = self._states[controller.name]
        rid = state.request_of_adv.pop(adv_id, None)
        controller.unadvertise(adv_id)
        if rid is not None:
            state.adv_dz.pop(rid, None)
            state.adv_ingress.pop(rid, None)
            for border in state.adv_forwarded_to.pop(rid, set()):
                self._send(state, border, ExternalUnadvertisement(rid))
            self._relax_adv_covering(state)

    # ------------------------------------------------------------------
    # packet handling
    # ------------------------------------------------------------------
    def _handle_packet(
        self, state: _PartitionState, switch: Switch, packet: Packet, in_port: int
    ) -> None:
        payload = packet.payload
        border = BorderPort(switch.name, in_port)
        if isinstance(payload, ExternalAdvertisement):
            name, handler = "external_adv", self._on_external_adv
        elif isinstance(payload, ExternalSubscription):
            name, handler = "external_sub", self._on_external_sub
        elif isinstance(payload, ExternalUnsubscription):
            name, handler = "external_unsub", self._on_external_unsub
        elif isinstance(payload, ExternalUnadvertisement):
            name, handler = "external_unadv", self._on_external_unadv
        else:
            # ordinary client request from a host of this partition
            state.controller.handle_control_packet(switch, packet, in_port)
            return
        with self.obs.tracer.span(
            "federation_exchange",
            name,
            controller=state.controller.name,
            border=border.key,
        ):
            handler(state, border, payload)

    # ------------------------------------------------------------------
    # internal requests: count and forward
    # ------------------------------------------------------------------
    def _on_internal_adv(
        self, state: _PartitionState, adv: AdvertisementState
    ) -> None:
        name = state.controller.name
        self._count_request(name, "internal")
        rid: RequestId = (name, adv.adv_id)
        state.processed.add(rid)
        state.request_of_adv[adv.adv_id] = rid
        state.adv_dz[rid] = adv.dz_set
        state.adv_ingress[rid] = None
        self._forward_adv(state, rid, adv.dz_set, exclude=None)

    def _on_internal_sub(
        self, state: _PartitionState, sub: SubscriptionState
    ) -> None:
        name = state.controller.name
        self._count_request(name, "internal")
        rid: RequestId = (name, sub.sub_id)
        state.processed.add(rid)
        state.request_of_sub[sub.sub_id] = rid
        state.sub_dz[rid] = sub.dz_set
        state.sub_ingress[rid] = None
        for border in state.borders:
            if state.ext_adv_region[border].overlaps(sub.dz_set):
                self._forward_sub(state, rid, sub.dz_set, border)

    # ------------------------------------------------------------------
    # external requests: process as virtual hosts, forward onward
    # ------------------------------------------------------------------
    def _on_external_adv(
        self,
        state: _PartitionState,
        border: BorderPort,
        msg: ExternalAdvertisement,
    ) -> None:
        controller = state.controller
        self._count_request(controller.name, "external")
        if msg.request_id in state.processed:
            return
        state.processed.add(msg.request_id)
        state.ext_adv_region[border] = state.ext_adv_region[border].union(
            msg.dz_set
        )
        local = controller.advertise(
            state.virtual_name(border), dz_set=msg.dz_set, _notify=False
        )
        state.local_adv_for[msg.request_id] = local.adv_id
        state.request_of_adv[local.adv_id] = msg.request_id
        state.adv_dz[msg.request_id] = msg.dz_set
        state.adv_ingress[msg.request_id] = border
        self._forward_adv(state, msg.request_id, msg.dz_set, exclude=border)
        # reverse-path subscriptions: everything this partition already
        # subscribes to (locally or on behalf of other borders) that the new
        # advertisement can serve must be announced back through `border`.
        own_virtual = state.virtual_name(border)
        for sub in list(controller.subscriptions.values()):
            if sub.endpoint.name == own_virtual:
                continue
            if not sub.dz_set.overlaps(msg.dz_set):
                continue
            rid = state.request_of_sub.get(sub.sub_id)
            if rid is None:
                continue
            self._forward_sub(state, rid, sub.dz_set, border)

    def _on_external_sub(
        self,
        state: _PartitionState,
        border: BorderPort,
        msg: ExternalSubscription,
    ) -> None:
        controller = state.controller
        self._count_request(controller.name, "external")
        if msg.request_id in state.processed:
            return
        state.processed.add(msg.request_id)
        local = controller.subscribe(
            state.virtual_name(border), dz_set=msg.dz_set, _notify=False
        )
        state.local_sub_for[msg.request_id] = local.sub_id
        state.request_of_sub[local.sub_id] = msg.request_id
        state.sub_dz[msg.request_id] = msg.dz_set
        state.sub_ingress[msg.request_id] = border
        for other in state.borders:
            if other == border:
                continue
            if state.ext_adv_region[other].overlaps(msg.dz_set):
                self._forward_sub(state, msg.request_id, msg.dz_set, other)

    def _on_external_unsub(
        self,
        state: _PartitionState,
        border: BorderPort,
        msg: ExternalUnsubscription,
    ) -> None:
        controller = state.controller
        self._count_request(controller.name, "external")
        local_id = state.local_sub_for.pop(msg.request_id, None)
        if local_id is None:
            return
        state.request_of_sub.pop(local_id, None)
        state.sub_dz.pop(msg.request_id, None)
        state.sub_ingress.pop(msg.request_id, None)
        controller.unsubscribe(local_id)
        for other in state.sub_forwarded_to.pop(msg.request_id, set()):
            self._send(state, other, msg)
        self._relax_sub_covering(state)

    def _on_external_unadv(
        self,
        state: _PartitionState,
        border: BorderPort,
        msg: ExternalUnadvertisement,
    ) -> None:
        controller = state.controller
        self._count_request(controller.name, "external")
        local_id = state.local_adv_for.pop(msg.request_id, None)
        if local_id is None:
            return
        state.request_of_adv.pop(local_id, None)
        state.adv_dz.pop(msg.request_id, None)
        ingress = state.adv_ingress.pop(msg.request_id, None)
        controller.unadvertise(local_id)
        for other in state.adv_forwarded_to.pop(msg.request_id, set()):
            self._send(state, other, msg)
        if ingress is not None:
            # shrink the record of what that neighbour advertises to us
            state.ext_adv_region[ingress] = self._region_from(
                state, ingress
            )
        self._relax_adv_covering(state)

    # ------------------------------------------------------------------
    # covering relaxation after withdrawals
    # ------------------------------------------------------------------
    @staticmethod
    def _region_from(state: _PartitionState, border: BorderPort) -> DzSet:
        """The region still advertised *to us* through one border."""
        region = EMPTY
        for rid, ingress in state.adv_ingress.items():
            if ingress == border and rid in state.adv_dz:
                region = region.union(state.adv_dz[rid])
        return region

    def _relax_adv_covering(self, state: _PartitionState) -> None:
        """After an advertisement withdrawal, shrink the per-border covering
        records to the surviving forwarded requests and announce any live
        advertisement whose forwarding the departed one had suppressed —
        without this, a covered-then-orphaned advertisement would be
        invisible to remote partitions (a cross-partition false negative).
        """
        for border in state.borders:
            surviving = EMPTY
            for rid, borders in state.adv_forwarded_to.items():
                if border in borders and rid in state.adv_dz:
                    surviving = surviving.union(state.adv_dz[rid])
            state.forwarded_advs[border] = surviving
            for rid in sorted(state.adv_dz):
                dz = state.adv_dz[rid]
                if state.adv_ingress.get(rid) == border:
                    continue
                if border in state.adv_forwarded_to.get(rid, set()):
                    continue
                if self.covering_enabled and state.forwarded_advs[
                    border
                ].covers(dz):
                    continue
                state.forwarded_advs[border] = state.forwarded_advs[
                    border
                ].union(dz)
                state.adv_forwarded_to.setdefault(rid, set()).add(border)
                self._send(state, border, ExternalAdvertisement(rid, dz))

    def _relax_sub_covering(self, state: _PartitionState) -> None:
        """Symmetric relaxation for subscriptions: a covered subscription
        must regain its reverse path when the covering one leaves."""
        for border in state.borders:
            surviving = EMPTY
            for rid, borders in state.sub_forwarded_to.items():
                if border in borders and rid in state.sub_dz:
                    surviving = surviving.union(state.sub_dz[rid])
            state.forwarded_subs[border] = surviving
            for rid in sorted(state.sub_dz):
                dz = state.sub_dz[rid]
                if state.sub_ingress.get(rid) == border:
                    continue
                if border in state.sub_forwarded_to.get(rid, set()):
                    continue
                if not state.ext_adv_region[border].overlaps(dz):
                    continue  # no reverse path through this border
                if self.covering_enabled and state.forwarded_subs[
                    border
                ].covers(dz):
                    continue
                state.forwarded_subs[border] = state.forwarded_subs[
                    border
                ].union(dz)
                state.sub_forwarded_to.setdefault(rid, set()).add(border)
                self._send(state, border, ExternalSubscription(rid, dz))

    # ------------------------------------------------------------------
    # forwarding with covering suppression
    # ------------------------------------------------------------------
    def _forward_adv(
        self,
        state: _PartitionState,
        rid: RequestId,
        dz_set: DzSet,
        exclude: BorderPort | None,
    ) -> None:
        for border in state.borders:
            if border == exclude:
                continue
            if self.covering_enabled and state.forwarded_advs[border].covers(
                dz_set
            ):
                continue
            state.forwarded_advs[border] = state.forwarded_advs[border].union(
                dz_set
            )
            state.adv_forwarded_to.setdefault(rid, set()).add(border)
            self._send(state, border, ExternalAdvertisement(rid, dz_set))

    def _forward_sub(
        self,
        state: _PartitionState,
        rid: RequestId,
        dz_set: DzSet,
        border: BorderPort,
    ) -> None:
        if self.covering_enabled and state.forwarded_subs[border].covers(
            dz_set
        ):
            return
        state.forwarded_subs[border] = state.forwarded_subs[border].union(
            dz_set
        )
        state.sub_forwarded_to.setdefault(rid, set()).add(border)
        self._send(state, border, ExternalSubscription(rid, dz_set))

    def _send(self, state: _PartitionState, border: BorderPort, message) -> None:
        """Ship a control message through a border switch port."""
        name = state.controller.name
        self.stats.messages_sent[name] += 1
        self.obs.registry.counter(
            "federation.messages_sent", controller=name
        ).inc()
        self.obs.registry.counter(
            "federation.bytes_sent", controller=name
        ).inc(_CONTROL_MESSAGE_BYTES)
        self.obs.tracer.event(
            "federation_send",
            type(message).__name__,
            controller=name,
            border=border.key,
        )
        switch = self.network.switches[border.switch]
        switch.send_via_port(
            border.port,
            Packet(
                dst_address=PUBSUB_CONTROL_ADDRESS,
                payload=message,
                size_bytes=_CONTROL_MESSAGE_BYTES,
            ),
        )

    def _count_request(self, controller: str, origin: str) -> None:
        """Mirror a FederationStats request count into the registry."""
        if origin == "internal":
            self.stats.internal_requests[controller] += 1
        else:
            self.stats.external_requests[controller] += 1
        self.obs.registry.counter(
            "federation.requests", controller=controller, origin=origin
        ).inc()

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        for controller in self.controllers.values():
            controller.check_invariants()

    def __repr__(self) -> str:
        return (
            f"Federation({len(self.controllers)} controllers, "
            f"covering={'on' if self.covering_enabled else 'off'})"
        )
