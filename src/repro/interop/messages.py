"""Inter-controller control messages (Sec. 4).

Controllers of neighbouring partitions never learn each other's identity:
messages travel through border switch ports, addressed to ``IP_pub/sub``,
so the receiving border switch diverts them to its own controller.

Each request carries an opaque ``request_id`` — ``(origin controller name,
original request id)``.  The id serves two purposes: (i) *deduplication*,
so a request flooded through a cyclic partition graph (e.g. the ring of
Sec. 6.6 cut into arcs) is processed at most once per partition, which
makes the processed-from borders form a spanning tree of the partition
graph and gives subscriptions a unique reverse path; (ii) correlating a
later unsubscription with the virtual subscriptions it created remotely.
The paper's line-shaped example (Fig. 5) never exercises cycles, so it
leaves this guard implicit; covering-based suppression alone does not
prevent duplicate *processing* on cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dzset import DzSet

__all__ = [
    "RequestId",
    "ExternalAdvertisement",
    "ExternalSubscription",
    "ExternalUnsubscription",
    "ExternalUnadvertisement",
]

#: (origin controller name, origin-local request number)
RequestId = tuple[str, int]


@dataclass(frozen=True)
class ExternalAdvertisement:
    """An advertisement shared with an adjoining partition (Sec. 4.2)."""

    request_id: RequestId
    dz_set: DzSet


@dataclass(frozen=True)
class ExternalSubscription:
    """A subscription following the reverse path of an advertisement."""

    request_id: RequestId
    dz_set: DzSet


@dataclass(frozen=True)
class ExternalUnsubscription:
    """Withdraws the virtual subscriptions created by a forwarded sub."""

    request_id: RequestId


@dataclass(frozen=True)
class ExternalUnadvertisement:
    """Withdraws the virtual advertisements created by a forwarded adv."""

    request_id: RequestId
