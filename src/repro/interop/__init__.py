"""Multi-partition interoperability: discovery, messages, federation."""

from repro.interop.discovery import BorderPort, discover_borders
from repro.interop.federation import Federation, FederationStats
from repro.interop.messages import (
    ExternalAdvertisement,
    ExternalSubscription,
    ExternalUnadvertisement,
    ExternalUnsubscription,
    RequestId,
)

__all__ = [
    "BorderPort",
    "discover_borders",
    "Federation",
    "FederationStats",
    "ExternalAdvertisement",
    "ExternalSubscription",
    "ExternalUnsubscription",
    "ExternalUnadvertisement",
    "RequestId",
]
