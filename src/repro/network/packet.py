"""Packets carried by the simulated data plane.

Events are sent as small UDP datagrams (Sec. 6.2: "up to 64 bytes depending
upon the length of dz") whose destination address is the IPv6 multicast
address encoding the event's dz-expression.  Control messages addressed to
``IP_pub/sub`` are diverted by switches to the controller.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.core.dz import Dz
from repro.core.events import Event

__all__ = ["Packet", "EventPayload", "event_packet_size"]

_packet_ids = itertools.count(1)

#: Fixed protocol overhead of an event datagram (headers + event id).
_EVENT_BASE_SIZE = 48


def event_packet_size(dz: Dz) -> int:
    """Datagram size in bytes for an event stamped with ``dz``.

    Matches the paper's "up to 64 bytes depending upon the length of dz":
    48 bytes of fixed overhead plus one byte per 8 dz bits, capped at 64.
    """
    return min(64, _EVENT_BASE_SIZE + (len(dz) + 7) // 8)


@dataclass(frozen=True)
class EventPayload:
    """The application content of an event packet."""

    event: Event
    dz: Dz
    publisher: str
    publish_time: float


@dataclass
class Packet:
    """A datagram traversing the simulated network.

    ``dst_address`` is a 128-bit integer (IPv6).  ``payload`` is either an
    :class:`EventPayload` or an inter-controller message object.  The
    destination address is rewritten by terminal switches (set-field action)
    to the subscriber host address, exactly as in Fig. 3 of the paper.
    """

    dst_address: int
    payload: Any
    size_bytes: int = 64
    src_address: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    hops: int = 0

    def with_destination(self, dst_address: int) -> "Packet":
        """A copy with a rewritten destination (same packet identity)."""
        return Packet(
            dst_address=dst_address,
            payload=self.payload,
            size_bytes=self.size_bytes,
            src_address=self.src_address,
            packet_id=self.packet_id,
            hops=self.hops,
        )
