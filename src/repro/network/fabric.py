"""Network fabric: instantiating a topology into live simulated devices.

The :class:`Network` builds :class:`~repro.network.switch.Switch`,
:class:`~repro.network.host.Host` and :class:`~repro.network.link.Link`
objects from a :class:`~repro.network.topology.Topology` and wires them to a
shared :class:`~repro.sim.engine.Simulator`.  Port numbers are assigned
deterministically (sorted neighbor order, starting at 1) so controllers and
tests can reason about them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import TopologyError
from repro.network.host import DEFAULT_HOST_RATE_EPS, Host
from repro.network.link import (
    DEFAULT_BANDWIDTH_BPS,
    DEFAULT_LINK_DELAY_S,
    Link,
)
from repro.network.flow import reset_cookie_counter
from repro.network.openflow import reset_xid_counter
from repro.network.switch import DEFAULT_LOOKUP_DELAY_S, Switch
from repro.network.topology import Topology
from repro.obs.registry import MetricsRegistry
from repro.sim.engine import Simulator

__all__ = ["Network", "NetworkParams"]


@dataclass(frozen=True)
class NetworkParams:
    """Tunable device parameters applied across the fabric."""

    link_delay_s: float = DEFAULT_LINK_DELAY_S
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS
    switch_lookup_delay_s: float = DEFAULT_LOOKUP_DELAY_S
    switch_lookup_jitter_s: float = 1e-6
    switch_table_capacity: int = 180_000
    host_rate_eps: float = DEFAULT_HOST_RATE_EPS
    host_queue_capacity: int = 1000


class Network:
    """Live simulated devices for one topology."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        params: NetworkParams | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.params = params or NetworkParams()
        # Cookie/xid allocation is scoped per fabric: without the reset,
        # the module-level counters would bleed across Pleroma instances
        # in one process and every cookie/xid would depend on what ran
        # earlier (see the reset functions' docstrings).
        reset_cookie_counter()
        reset_xid_counter()
        # One registry shared by every device of the fabric; deployments
        # (the Pleroma facade) pass theirs in so the whole system reports
        # into a single snapshot.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.switches: dict[str, Switch] = {}
        self.hosts: dict[str, Host] = {}
        self.links: dict[frozenset[str], Link] = {}
        self._ports: dict[tuple[str, str], int] = {}
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        p = self.params
        for name in self.topology.switches():
            self.switches[name] = Switch(
                self.sim,
                name,
                table_capacity=p.switch_table_capacity,
                lookup_delay_s=p.switch_lookup_delay_s,
                lookup_jitter_s=p.switch_lookup_jitter_s,
                registry=self.registry,
            )
        from repro.network.host import HOST_ADDRESS_BASE

        for index, name in enumerate(self.topology.hosts(), start=1):
            self.hosts[name] = Host(
                self.sim,
                name,
                processing_rate_eps=p.host_rate_eps,
                queue_capacity=p.host_queue_capacity,
                address=HOST_ADDRESS_BASE + index,
                registry=self.registry,
            )
        # deterministic port numbering: sorted neighbors, starting at 1
        for node in sorted(self.topology.graph.nodes):
            for port, neighbor in enumerate(
                sorted(self.topology.graph.neighbors(node)), start=1
            ):
                self._ports[(node, neighbor)] = port
        for spec in self.topology.links():
            link = Link(
                self.sim,
                a=self._node(spec.a),
                a_port=self._ports[(spec.a, spec.b)],
                b=self._node(spec.b),
                b_port=self._ports[(spec.b, spec.a)],
                delay_s=spec.delay_s if spec.delay_s is not None else p.link_delay_s,
                bandwidth_bps=(
                    spec.bandwidth_bps
                    if spec.bandwidth_bps is not None
                    else p.bandwidth_bps
                ),
                registry=self.registry,
            )
            self.links[frozenset((spec.a, spec.b))] = link
            self._node(spec.a).attach_link(self._ports[(spec.a, spec.b)], link)
            self._node(spec.b).attach_link(self._ports[(spec.b, spec.a)], link)

    def _node(self, name: str):
        if name in self.switches:
            return self.switches[name]
        if name in self.hosts:
            return self.hosts[name]
        raise TopologyError(f"unknown node {name!r}")

    # ------------------------------------------------------------------
    # lookups used by controllers and metrics
    # ------------------------------------------------------------------
    def port(self, node: str, neighbor: str) -> int:
        """The local port of ``node`` leading to ``neighbor``."""
        try:
            return self._ports[(node, neighbor)]
        except KeyError:
            raise TopologyError(
                f"{node!r} has no port towards {neighbor!r}"
            ) from None

    def link_between(self, a: str, b: str) -> Link:
        try:
            return self.links[frozenset((a, b))]
        except KeyError:
            raise TopologyError(f"no link {a!r} <-> {b!r}") from None

    def host_by_address(self, address: int) -> Host:
        for host in self.hosts.values():
            if host.address == address:
                return host
        raise TopologyError(f"no host with address {address:#x}")

    def total_link_bytes(self) -> int:
        """Aggregate bytes carried across all links (bandwidth metric)."""
        return sum(link.total_bytes for link in self.links.values())

    def total_link_packets(self) -> int:
        return sum(link.total_packets for link in self.links.values())

    def attach_flight_recorder(self, recorder) -> None:
        """Attach (or with ``None``, detach) a data-plane flight recorder
        to every device of the fabric.  See :mod:`repro.obs.flight`."""
        for name in sorted(self.switches):
            self.switches[name].set_flight_recorder(recorder)
        for name in sorted(self.hosts):
            self.hosts[name].set_flight_recorder(recorder)
        for key in sorted(self.links, key=sorted):
            self.links[key].set_flight_recorder(recorder)

    def reset_counters(self) -> None:
        for link in self.links.values():
            link.reset_counters()
        for host in self.hosts.values():
            host.reset_counters()
        for switch in self.switches.values():
            switch.reset_counters()

    def __repr__(self) -> str:
        return (
            f"Network({self.topology.name}: {len(self.switches)} switches, "
            f"{len(self.hosts)} hosts, {len(self.links)} links)"
        )
