"""The out-of-band control network between a controller and its switches.

Each switch has a dedicated control connection ("a dedicated control
network", Sec. 1).  The channel delivers OpenFlow messages with a
configurable one-way latency, preserves per-switch FIFO ordering (TCP
semantics) *in both directions* — controller-to-switch and
switch-to-controller messages each arrive no earlier than their
predecessors on the same connection — applies flow-mods to the switch's
table on arrival, and answers barriers/echoes/features requests.
``IP_pub/sub`` packets diverted by a switch travel the reverse direction
as ``PacketIn``.

The channel also keeps counters — messages and bytes per direction, sized
by :func:`~repro.network.openflow.message_size` — that back the
control-overhead measurements (Fig. 7h); they surface through the shared
:class:`~repro.obs.registry.MetricsRegistry`.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.exceptions import FlowTableError, TopologyError
from repro.network.openflow import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMessage,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowModCommand,
    FlowStatsEntry,
    FlowStatsReply,
    FlowStatsRequest,
    OpenFlowMessage,
    PacketIn,
    PacketOut,
    PortStatsEntry,
    PortStatsReply,
    PortStatsRequest,
    TableStatsReply,
    TableStatsRequest,
    message_size,
)
from repro.network.packet import Packet
from repro.network.switch import Switch
from repro.obs.registry import MetricsRegistry
from repro.sim.engine import Simulator

__all__ = ["ControlChannel", "DEFAULT_CONTROL_LATENCY_S"]

#: One-way controller<->switch latency.  Two crossings (request + ack)
#: match the 0.35 ms per-flow-mod round trip used in the delay model.
DEFAULT_CONTROL_LATENCY_S = 175e-6

ControllerHandler = Callable[[PacketIn], None]


@dataclass
class _Connection:
    switch: Switch
    handler: ControllerHandler | None = None
    # FIFO ordering, one horizon per direction: the next message in a
    # direction may not arrive before the previous one did.
    busy_until: float = 0.0
    ctrl_busy_until: float = 0.0
    to_switch_messages: int = 0
    to_controller_messages: int = 0
    to_switch_bytes: int = 0
    to_controller_bytes: int = 0


class ControlChannel:
    """Latency- and order-preserving OpenFlow transport for one controller."""

    def __init__(
        self,
        sim: Simulator,
        latency_s: float = DEFAULT_CONTROL_LATENCY_S,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if latency_s < 0:
            raise TopologyError("control latency must be >= 0")
        self.sim = sim
        self.latency_s = latency_s
        self.registry = registry if registry is not None else MetricsRegistry()
        self._connections: dict[str, _Connection] = {}
        self.replies: list[OpenFlowMessage] = []
        self.errors: list[ErrorMessage] = []
        # Called as listener(switch_name, message) when a reply arrives at
        # the controller side; the stats poller subscribes here.
        self.reply_listeners: list[
            Callable[[str, OpenFlowMessage], None]
        ] = []
        self._m_to_switch = self.registry.counter(
            "control.messages", direction="to_switch"
        )
        self._m_to_controller = self.registry.counter(
            "control.messages", direction="to_controller"
        )
        self._b_to_switch = self.registry.counter(
            "control.bytes", direction="to_switch"
        )
        self._b_to_controller = self.registry.counter(
            "control.bytes", direction="to_controller"
        )

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def connect(
        self, switch: Switch, handler: ControllerHandler | None = None
    ) -> None:
        """Open the control connection to a switch.

        The switch's ``IP_pub/sub`` diversion is rewired to produce
        ``PacketIn`` messages through this channel.
        """
        if switch.name in self._connections:
            raise TopologyError(f"{switch.name} already connected")
        connection = _Connection(switch=switch, handler=handler)
        self._connections[switch.name] = connection
        switch.set_control_handler(
            lambda sw, packet, in_port: self._packet_in(
                connection, packet, in_port
            )
        )

    def set_handler(self, switch_name: str, handler: ControllerHandler) -> None:
        self._connection(switch_name).handler = handler

    def connected_switches(self) -> list[str]:
        return sorted(self._connections)

    def _connection(self, switch_name: str) -> _Connection:
        try:
            return self._connections[switch_name]
        except KeyError:
            raise TopologyError(
                f"no control connection to {switch_name!r}"
            ) from None

    # ------------------------------------------------------------------
    # controller -> switch
    # ------------------------------------------------------------------
    def send(self, switch_name: str, message: OpenFlowMessage) -> None:
        """Ship one message to a switch; it is applied after the one-way
        latency, in FIFO order with earlier messages."""
        connection = self._connection(switch_name)
        size = message_size(message)
        connection.to_switch_messages += 1
        connection.to_switch_bytes += size
        self._m_to_switch.inc()
        self._b_to_switch.inc(size)
        arrival = max(
            self.sim.now + self.latency_s, connection.busy_until
        )
        connection.busy_until = arrival
        self.sim.schedule_at(arrival, self._apply, connection, message)

    def _apply(self, connection: _Connection, message: OpenFlowMessage) -> None:
        switch = connection.switch
        if isinstance(message, FlowMod):
            try:
                self._apply_flow_mod(switch, message)
            except FlowTableError as exc:
                self._reply(
                    connection,
                    ErrorMessage(failed_xid=message.xid, reason=str(exc)),
                )
        elif isinstance(message, BarrierRequest):
            self._reply(connection, BarrierReply(xid=message.xid))
        elif isinstance(message, EchoRequest):
            self._reply(connection, EchoReply(xid=message.xid))
        elif isinstance(message, FeaturesRequest):
            self._reply(
                connection,
                FeaturesReply(
                    datapath=switch.name,
                    ports=tuple(sorted(switch.ports)),
                    table_capacity=switch.table.capacity,
                    xid=message.xid,
                ),
            )
        elif isinstance(message, FlowStatsRequest):
            self._reply(connection, self._flow_stats(switch, message.xid))
        elif isinstance(message, PortStatsRequest):
            self._reply(connection, self._port_stats(switch, message.xid))
        elif isinstance(message, TableStatsRequest):
            self._reply(connection, self._table_stats(switch, message.xid))
        elif isinstance(message, PacketOut):
            switch.send_via_port(message.out_port, message.packet)
        else:
            self._reply(
                connection,
                ErrorMessage(
                    failed_xid=message.xid,
                    reason=f"unsupported message {type(message).__name__}",
                ),
            )

    @staticmethod
    def _apply_flow_mod(switch: Switch, mod: FlowMod) -> None:
        if mod.command in (FlowModCommand.ADD, FlowModCommand.MODIFY):
            assert mod.entry is not None
            switch.table.install(mod.entry)
        else:
            assert mod.match is not None
            switch.table.remove(mod.match)

    # ------------------------------------------------------------------
    # multipart statistics replies (counters read at application time —
    # the controller-side view is stale by at least the return latency)
    # ------------------------------------------------------------------
    def _flow_stats(self, switch: Switch, xid: int) -> FlowStatsReply:
        now = self.sim.now
        entries = tuple(
            FlowStatsEntry(
                match=entry.match,
                priority=entry.priority,
                cookie=entry.cookie,
                packet_count=stats.packets,
                byte_count=stats.bytes,
                duration_s=now - stats.created_at,
            )
            for entry, stats in switch.table.entries_with_stats()
        )
        return FlowStatsReply(datapath=switch.name, entries=entries, xid=xid)

    @staticmethod
    def _port_stats(switch: Switch, xid: int) -> PortStatsReply:
        ports = []
        for port, link in sorted(switch.ports.items()):
            counters = link.counters_for(switch)
            ports.append(
                PortStatsEntry(
                    port=port,
                    rx_packets=counters.rx_packets,
                    tx_packets=counters.tx_packets,
                    rx_bytes=counters.rx_bytes,
                    tx_bytes=counters.tx_bytes,
                    tx_dropped=counters.tx_dropped,
                )
            )
        return PortStatsReply(
            datapath=switch.name, ports=tuple(ports), xid=xid
        )

    @staticmethod
    def _table_stats(switch: Switch, xid: int) -> TableStatsReply:
        table = switch.table
        return TableStatsReply(
            datapath=switch.name,
            active_count=len(table),
            capacity=table.capacity,
            lookup_count=table.lookups,
            matched_count=table.lookups - table.misses,
            xid=xid,
        )

    # ------------------------------------------------------------------
    # switch -> controller
    # ------------------------------------------------------------------
    def _controller_bound(self, connection: _Connection, message) -> float:
        """Account one switch-to-controller message and return its FIFO
        arrival time (TCP semantics: never before an earlier message)."""
        size = message_size(message)
        connection.to_controller_messages += 1
        connection.to_controller_bytes += size
        self._m_to_controller.inc()
        self._b_to_controller.inc(size)
        arrival = max(
            self.sim.now + self.latency_s, connection.ctrl_busy_until
        )
        connection.ctrl_busy_until = arrival
        return arrival

    def _packet_in(
        self, connection: _Connection, packet: Packet, in_port: int
    ) -> None:
        message = PacketIn(
            switch=connection.switch.name, in_port=in_port, packet=packet
        )
        arrival = self._controller_bound(connection, message)
        self.sim.schedule_at(
            arrival, self._deliver_packet_in, connection, message
        )

    def _deliver_packet_in(
        self, connection: _Connection, message: PacketIn
    ) -> None:
        if connection.handler is not None:
            connection.handler(message)

    def _reply(self, connection: _Connection, message: OpenFlowMessage) -> None:
        arrival = self._controller_bound(connection, message)
        self.sim.schedule_at(arrival, self._record_reply, connection, message)

    def _record_reply(
        self, connection: _Connection, message: OpenFlowMessage
    ) -> None:
        self.replies.append(message)
        if isinstance(message, ErrorMessage):
            self.errors.append(message)
        for listener in self.reply_listeners:
            listener(connection.switch.name, message)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def messages_to_switches(self) -> int:
        return sum(c.to_switch_messages for c in self._connections.values())

    def messages_to_controller(self) -> int:
        return sum(
            c.to_controller_messages for c in self._connections.values()
        )

    def bytes_to_switches(self) -> int:
        return sum(c.to_switch_bytes for c in self._connections.values())

    def bytes_to_controller(self) -> int:
        return sum(
            c.to_controller_bytes for c in self._connections.values()
        )

    def per_switch_counters(self) -> dict[str, dict[str, int]]:
        """Message/byte counts per connection (sorted, JSON-friendly)."""
        return {
            name: {
                "to_switch_messages": c.to_switch_messages,
                "to_switch_bytes": c.to_switch_bytes,
                "to_controller_messages": c.to_controller_messages,
                "to_controller_bytes": c.to_controller_bytes,
            }
            for name, c in sorted(self._connections.items())
        }
