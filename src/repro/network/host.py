"""End hosts: the machines that publish and subscribe.

Hosts are deliberately the *slow* part of the model: the paper's throughput
experiment (Sec. 6.3) finds that "the switch network is able to successfully
forward every event ... the drop in received events is due to the processing
limitations at the end hosts", with ~170k events/s achievable on faster
machines.  A host therefore has a finite event-processing rate and a finite
ingest queue; arrivals beyond capacity are dropped and counted.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.exceptions import TopologyError
from repro.network.link import Link
from repro.network.packet import EventPayload, Packet
from repro.obs.flight import FlightRecorder
from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:
    from repro.sim.engine import Simulator

__all__ = ["Host", "HOST_ADDRESS_BASE", "DEFAULT_HOST_RATE_EPS"]

#: Unicast address block for end hosts (2001::/16, documentation-ish).
HOST_ADDRESS_BASE = 0x2001 << 112

#: Default per-host event processing capacity; the paper's commodity end
#: hosts saturate around 70k events/s (Fig. 7c plateaus below the send rate).
DEFAULT_HOST_RATE_EPS = 70_000.0

_host_ids = itertools.count(1)

DeliveryCallback = Callable[[EventPayload, Packet, float], None]


class Host:
    """A publisher/subscriber end system attached to one switch port."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        processing_rate_eps: float = DEFAULT_HOST_RATE_EPS,
        queue_capacity: int = 1000,
        address: int | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if processing_rate_eps <= 0:
            raise TopologyError("host processing rate must be positive")
        if queue_capacity < 1:
            raise TopologyError("host queue capacity must be >= 1")
        self.sim = sim
        self.name = name
        # The fabric assigns deterministic per-topology addresses so that
        # repeated runs are bit-identical; standalone hosts fall back to a
        # process-global counter.
        self.address = (
            address if address is not None
            else HOST_ADDRESS_BASE + next(_host_ids)
        )
        self.processing_rate_eps = processing_rate_eps
        self.queue_capacity = queue_capacity
        self._link: Link | None = None
        self._busy_until = 0.0
        self._on_deliver: DeliveryCallback | None = None
        # data-plane flight recorder (attached per deployment; None = off)
        self._flight: FlightRecorder | None = None
        # statistics (registry-backed)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._arrived = self.registry.counter(
            "host.packets_arrived", host=name
        )
        self._delivered = self.registry.counter(
            "host.packets_delivered", host=name
        )
        # a host drops for exactly one reason — its ingest queue overflowed
        self._dropped = self.registry.counter(
            "host.packets_dropped", host=name, reason="queue-overflow"
        )
        self._sent = self.registry.counter("host.packets_sent", host=name)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def packets_arrived(self) -> int:
        return self._arrived.value

    @property
    def packets_delivered(self) -> int:
        return self._delivered.value

    @property
    def packets_dropped(self) -> int:
        return self._dropped.value

    @property
    def packets_sent(self) -> int:
        return self._sent.value

    # ------------------------------------------------------------------
    def attach_link(self, port: int, link: Link) -> None:
        """Connect the host's single NIC (port number is ignored: hosts
        have exactly one interface)."""
        if self._link is not None:
            raise TopologyError(f"host {self.name} already attached")
        self._link = link

    @property
    def link(self) -> Link:
        if self._link is None:
            raise TopologyError(f"host {self.name} is not attached")
        return self._link

    def set_delivery_callback(self, callback: DeliveryCallback) -> None:
        """Register the application handler invoked per processed event."""
        self._on_deliver = callback

    def set_flight_recorder(self, recorder: FlightRecorder | None) -> None:
        """Attach (or detach, with ``None``) the data-plane flight
        recorder."""
        self._flight = recorder

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Transmit a packet into the network."""
        packet.src_address = self.address
        self._sent.inc()
        flight = self._flight
        if flight is not None and flight.wants(packet.packet_id):
            flight.add(
                packet.packet_id, "host_send", self.name,
                dst=packet.dst_address, size_bytes=packet.size_bytes,
            )
        self.link.transmit(self, packet)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, in_port: int) -> None:
        """NIC arrival: enqueue for application processing or drop."""
        self._arrived.inc()
        flight = self._flight
        if flight is not None and not flight.wants(packet.packet_id):
            flight = None
        service_time = 1.0 / self.processing_rate_eps
        backlog = max(0.0, self._busy_until - self.sim.now)
        if backlog > self.queue_capacity * service_time:
            self._dropped.inc()
            if flight is not None:
                flight.add(
                    packet.packet_id, "host_recv", self.name,
                    drop="host-queue-overflow", backlog_s=backlog,
                )
            return
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + service_time
        if flight is not None:
            flight.add(
                packet.packet_id, "host_recv", self.name,
                wait_s=start - self.sim.now, service_s=service_time,
            )
        self.sim.schedule_at(self._busy_until, self._process, packet)

    def _process(self, packet: Packet) -> None:
        self._delivered.inc()
        flight = self._flight
        if flight is not None and flight.wants(packet.packet_id):
            flight.add(packet.packet_id, "host_deliver", self.name)
        if self._on_deliver is not None and isinstance(
            packet.payload, EventPayload
        ):
            self._on_deliver(packet.payload, packet, self.sim.now)

    def reset_counters(self) -> None:
        for counter in (
            self._arrived, self._delivered, self._dropped, self._sent,
        ):
            counter.reset()

    def __repr__(self) -> str:
        return f"Host({self.name})"
