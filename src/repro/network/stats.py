"""Telemetry: link-utilization sampling over simulated time.

The conclusion of the paper calls for "new mechanisms ... to detect and
react to overload situations in the presence of a dynamic workload".
Detection needs measurements; this module provides them: a sampler that
periodically reads the byte counters of every switch-to-switch link and
converts deltas into utilization (fraction of link capacity used during
the sampling window), keeping a bounded history per link.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import TopologyError
from repro.network.fabric import Network

__all__ = ["LinkSample", "LinkUtilizationSampler"]


@dataclass(frozen=True)
class LinkSample:
    """One utilization observation for one link."""

    time: float
    utilization: float
    bytes_delta: int


@dataclass
class _LinkHistory:
    last_bytes: int = 0
    samples: deque[LinkSample] = field(default_factory=lambda: deque(maxlen=256))


class LinkUtilizationSampler:
    """Tracks per-link utilization between explicit ``sample()`` calls."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self._histories: dict[frozenset[str], _LinkHistory] = {}
        self._last_sample_time: float | None = None
        for key, link in network.links.items():
            if all(name in network.switches for name in key):
                self._histories[key] = _LinkHistory(last_bytes=link.total_bytes)

    # ------------------------------------------------------------------
    def sample(self) -> dict[frozenset[str], LinkSample]:
        """Take one measurement; returns the new sample per link.

        The first call establishes the baseline window starting at the
        sampler's construction (time 0 if built before traffic).
        """
        now = self.network.sim.now
        window = (
            now - self._last_sample_time
            if self._last_sample_time is not None
            else now
        )
        results: dict[frozenset[str], LinkSample] = {}
        for key, history in self._histories.items():
            link = self.network.links[key]
            delta = link.total_bytes - history.last_bytes
            history.last_bytes = link.total_bytes
            utilization = (
                (delta * 8.0) / (link.bandwidth_bps * window)
                if window > 0
                else 0.0
            )
            sample = LinkSample(
                time=now, utilization=utilization, bytes_delta=delta
            )
            history.samples.append(sample)
            results[key] = sample
        self._last_sample_time = now
        return results

    # ------------------------------------------------------------------
    def latest(self, a: str, b: str) -> LinkSample:
        history = self._histories.get(frozenset((a, b)))
        if history is None or not history.samples:
            raise TopologyError(f"no samples for link {a!r}<->{b!r}")
        return history.samples[-1]

    def history(self, a: str, b: str) -> list[LinkSample]:
        history = self._histories.get(frozenset((a, b)))
        if history is None:
            raise TopologyError(f"unknown link {a!r}<->{b!r}")
        return list(history.samples)

    def hottest(self) -> tuple[frozenset[str], LinkSample]:
        """The link with the highest latest utilization."""
        best_key = None
        best: LinkSample | None = None
        for key, history in sorted(
            self._histories.items(), key=lambda kv: sorted(kv[0])
        ):
            if not history.samples:
                continue
            sample = history.samples[-1]
            if best is None or sample.utilization > best.utilization:
                best_key, best = key, sample
        if best is None or best_key is None:
            raise TopologyError("no samples taken yet")
        return best_key, best
