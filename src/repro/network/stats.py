"""Deprecated home of the link-utilization sampler.

The oracle utilization sampler used to live here, duplicating the probe in
:mod:`repro.obs.samplers`.  There is now exactly one implementation —
:class:`repro.obs.samplers.LinkUtilizationProbe` — and this module keeps
the old import surface alive: :class:`LinkSample` is re-exported and
:class:`LinkUtilizationSampler` is a thin deprecation shim delegating to
the probe (writing into the network's shared registry).

New code should use the probe directly, or — for the no-oracle view a
real controller has — the in-band :class:`repro.obs.telemetry.StatsPoller`.
"""

from __future__ import annotations

import warnings

from repro.network.fabric import Network
from repro.obs.samplers import LinkSample, LinkUtilizationProbe

__all__ = ["LinkSample", "LinkUtilizationSampler"]


class LinkUtilizationSampler:
    """Deprecated alias for :class:`repro.obs.samplers.LinkUtilizationProbe`.

    Keeps the historical explicit-``sample()`` API; every call delegates
    to one probe invocation against the network's registry.
    """

    def __init__(self, network: Network) -> None:
        warnings.warn(
            "LinkUtilizationSampler is deprecated; use "
            "repro.obs.samplers.LinkUtilizationProbe",
            DeprecationWarning,
            stacklevel=2,
        )
        self.network = network
        self._probe = LinkUtilizationProbe(network, network.registry)

    # ------------------------------------------------------------------
    def sample(self) -> dict[frozenset, LinkSample]:
        """Take one measurement; returns the new sample per link."""
        return self._probe(self.network.sim.now)

    # ------------------------------------------------------------------
    def latest(self, a: str, b: str) -> LinkSample:
        return self._probe.latest(a, b)

    def history(self, a: str, b: str) -> list[LinkSample]:
        return self._probe.history(a, b)

    def hottest(self) -> tuple[frozenset, LinkSample]:
        return self._probe.hottest()
