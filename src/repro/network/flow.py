"""OpenFlow-style flow entries and prioritised TCAM flow tables.

A flow (Sec. 3.3.2) consists of a match field (an IPv6 CIDR prefix carrying
a dz-expression), an instruction set (output ports, optionally a set-field
rewriting the destination address on terminal switches), and a priority
order deciding which of several matching flows applies — PLEROMA assigns
higher priority to longer dz so the most specific subspace wins.

The table model follows TCAM semantics: a packet is matched against all
entries, and only the instruction set of the single highest-priority match
is executed.  Lookup time in hardware is independent of occupancy; the
switch model adds that constant-time cost, this module is purely the
matching semantics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from collections.abc import Iterator

from collections.abc import Callable

from repro.core.addressing import MulticastPrefix, dz_to_prefix, prefix_to_dz
from repro.core.dz import Dz
from repro.exceptions import FlowTableError

__all__ = [
    "Action",
    "FlowEntry",
    "FlowStats",
    "FlowTable",
    "reset_cookie_counter",
]

_cookie_counter = itertools.count(1)


def _next_cookie() -> int:
    return next(_cookie_counter)


def reset_cookie_counter(start: int = 1) -> None:
    """Restart cookie allocation (called by ``Network.__init__``).

    Cookies only need to be unique *within* one fabric; a process-global
    counter would make them depend on whatever other deployments ran
    earlier in the process, leaking state across ``Pleroma`` instances.
    Each :class:`~repro.network.fabric.Network` resets the counter so
    same-seed deployments allocate identical cookies regardless of what
    ran before them.  (Entries of two fabrics built concurrently can
    therefore share cookie values — no consumer compares cookies across
    fabrics.)
    """
    global _cookie_counter
    _cookie_counter = itertools.count(start)


@dataclass(frozen=True, order=True)
class Action:
    """One instruction: output on a port, optionally rewriting the dst IP.

    ``set_dest`` models the OpenFlow set-field action used on terminal
    switches to readdress an event to the subscriber host (Fig. 3).
    """

    out_port: int
    set_dest: int | None = None

    def __str__(self) -> str:
        if self.set_dest is None:
            return f"out:{self.out_port}"
        return f"set-dst={self.set_dest:#x},out:{self.out_port}"


@dataclass(frozen=True)
class FlowEntry:
    """An immutable flow-table entry; modifications replace the entry."""

    match: MulticastPrefix
    priority: int
    actions: frozenset[Action]
    cookie: int = field(default_factory=_next_cookie)

    @classmethod
    def for_dz(
        cls,
        dz: Dz,
        actions: frozenset[Action] | set[Action],
        priority: int | None = None,
    ) -> "FlowEntry":
        """Build an entry matching subspace ``dz``.

        Default priority is ``|dz|`` — the paper's rule that longer
        dz-expressions take precedence.
        """
        return cls(
            match=dz_to_prefix(dz),
            priority=len(dz) if priority is None else priority,
            actions=frozenset(actions),
        )

    @property
    def dz(self) -> Dz:
        """The subspace this entry filters for."""
        return prefix_to_dz(self.match)

    @property
    def out_ports(self) -> frozenset[int]:
        return frozenset(a.out_port for a in self.actions)

    def sorted_actions(self) -> tuple[Action, ...]:
        """The actions in (port, rewrite) order, cached per entry.

        ``frozenset`` iteration order varies per process (``set_dest`` is
        often ``None``, whose hash is address-derived on CPython < 3.12),
        so the switch must never let it decide the replication order at
        fan-out points — that order is observable in flight records and
        in host arrival sequences.
        """
        cached = self.__dict__.get("_sorted_actions")
        if cached is None:
            cached = tuple(
                sorted(
                    self.actions,
                    key=lambda a: (
                        a.out_port,
                        -1 if a.set_dest is None else a.set_dest,
                    ),
                )
            )
            object.__setattr__(self, "_sorted_actions", cached)
        return cached

    def covers(self, other: "FlowEntry") -> bool:
        """Full flow containment (Sec. 3.3.2): coarser-or-equal match *and*
        a superset of the other's actions."""
        return self.match.covers(other.match) and self.actions >= other.actions

    def partially_covers(self, other: "FlowEntry") -> bool:
        """Partial containment: coarser-or-equal match but missing actions."""
        return self.match.covers(other.match) and not (
            self.actions >= other.actions
        )

    def with_actions(self, actions: frozenset[Action]) -> "FlowEntry":
        return replace(self, actions=frozenset(actions))

    def with_priority(self, priority: int) -> "FlowEntry":
        return replace(self, priority=priority)

    def __str__(self) -> str:
        acts = ", ".join(str(a) for a in sorted(self.actions))
        return f"[{self.match} prio={self.priority} -> {{{acts}}}]"


@dataclass
class FlowStats:
    """Per-rule hardware counters, as real TCAMs keep them (OF 1.3 §A.3.5).

    Updated by :meth:`FlowTable.record_hit` on every TCAM hit in
    ``Switch.receive``; read out-of-band by ``FlowStatsRequest`` over the
    control channel.  The record lives in the table keyed by the match
    field, not on the (shared, frozen) :class:`FlowEntry`, so controller
    shadow copies of an entry never alias the data-plane counters.
    """

    packets: int = 0
    bytes: int = 0
    created_at: float = 0.0
    last_hit_at: float | None = None


class FlowTable:
    """A prioritised prefix-match table with TCAM semantics.

    At most one entry exists per match prefix (the controller aggregates
    ports into a single entry per dz, as Algorithm 1 does).  Lookup returns
    the matching entry with the highest ``(priority, prefix_len)``.

    ``capacity`` models the bounded TCAM of real switches (the paper cites
    40k–180k entries per switch); inserting beyond it raises.

    ``clock`` stamps per-rule install times (``FlowStats.created_at``);
    the owning switch passes its simulator clock, standalone tables
    default to a constant 0.0.
    """

    def __init__(
        self,
        capacity: int = 180_000,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if capacity < 1:
            raise FlowTableError("flow table capacity must be positive")
        self.capacity = capacity
        self.clock = clock if clock is not None else (lambda: 0.0)
        # prefix_len -> network -> entry; keeps lookup O(#distinct lengths).
        self._by_len: dict[int, dict[int, FlowEntry]] = {}
        # per-rule counters, parallel structure keyed like _by_len
        self._stats_by_len: dict[int, dict[int, FlowStats]] = {}
        self._size = 0
        self.lookups = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[FlowEntry]:
        for plen in sorted(self._by_len, reverse=True):
            yield from self._by_len[plen].values()

    def entries(self) -> list[FlowEntry]:
        return list(self)

    def get(self, match: MulticastPrefix) -> FlowEntry | None:
        """The entry with exactly this match field, if installed."""
        return self._by_len.get(match.prefix_len, {}).get(match.network)

    def get_dz(self, dz: Dz) -> FlowEntry | None:
        return self.get(dz_to_prefix(dz))

    # ------------------------------------------------------------------
    def install(self, entry: FlowEntry) -> None:
        """Add or replace the entry for ``entry.match``.

        Replacing keeps the per-rule counters (OpenFlow MODIFY semantics:
        a modified flow retains its statistics); a fresh match starts a
        zeroed :class:`FlowStats` stamped with the current clock.
        """
        bucket = self._by_len.setdefault(entry.match.prefix_len, {})
        if entry.match.network not in bucket:
            if self._size >= self.capacity:
                raise FlowTableError(
                    f"flow table full ({self.capacity} entries)"
                )
            self._size += 1
            self._stats_by_len.setdefault(entry.match.prefix_len, {})[
                entry.match.network
            ] = FlowStats(created_at=self.clock())
        bucket[entry.match.network] = entry

    def remove(self, match: MulticastPrefix) -> FlowEntry:
        """Delete and return the entry for ``match``."""
        bucket = self._by_len.get(match.prefix_len)
        if bucket is None or match.network not in bucket:
            raise FlowTableError(f"no flow installed for {match}")
        entry = bucket.pop(match.network)
        stats_bucket = self._stats_by_len[match.prefix_len]
        del stats_bucket[match.network]
        if not bucket:
            del self._by_len[match.prefix_len]
            del self._stats_by_len[match.prefix_len]
        self._size -= 1
        return entry

    def clear(self) -> None:
        self._by_len.clear()
        self._stats_by_len.clear()
        self._size = 0

    # ------------------------------------------------------------------
    # per-rule statistics
    # ------------------------------------------------------------------
    def record_hit(self, entry: FlowEntry, size_bytes: int, now: float) -> None:
        """Account one TCAM hit against the matched rule's counters.

        Hot path (called per forwarded packet): two dict probes and three
        field writes.
        """
        stats = self._stats_by_len[entry.match.prefix_len][entry.match.network]
        stats.packets += 1
        stats.bytes += size_bytes
        stats.last_hit_at = now

    def stats_for(self, match: MulticastPrefix) -> FlowStats | None:
        """The counters of the rule installed for exactly ``match``."""
        return self._stats_by_len.get(match.prefix_len, {}).get(match.network)

    def entries_with_stats(self) -> list[tuple[FlowEntry, FlowStats]]:
        """Every (entry, counters) pair in canonical order (prefix length
        descending, then network address) — the order stats replies use."""
        out: list[tuple[FlowEntry, FlowStats]] = []
        for plen in sorted(self._by_len, reverse=True):
            bucket = self._by_len[plen]
            stats_bucket = self._stats_by_len[plen]
            for network in sorted(bucket):
                out.append((bucket[network], stats_bucket[network]))
        return out

    # ------------------------------------------------------------------
    def lookup(self, address: int) -> FlowEntry | None:
        """TCAM match: the single best entry for a destination address."""
        self.lookups += 1
        best: FlowEntry | None = None
        best_key = (-1, -1)
        for plen, bucket in self._by_len.items():
            network = address & _mask_of(plen)
            entry = bucket.get(network)
            if entry is not None:
                key = (entry.priority, plen)
                if key > best_key:
                    best, best_key = entry, key
        if best is None:
            self.misses += 1
        return best

    def matching_entries(self, address: int) -> list[FlowEntry]:
        """All entries whose prefix matches (most specific first)."""
        hits = []
        for plen in sorted(self._by_len, reverse=True):
            entry = self._by_len[plen].get(address & _mask_of(plen))
            if entry is not None:
                hits.append(entry)
        hits.sort(key=lambda e: (e.priority, e.match.prefix_len), reverse=True)
        return hits


def _mask_of(prefix_len: int) -> int:
    if prefix_len == 0:
        return 0
    return ((1 << prefix_len) - 1) << (128 - prefix_len)
