"""The OpenFlow switch model.

A switch owns a TCAM :class:`~repro.network.flow.FlowTable` and a set of
numbered ports, each attached to a :class:`~repro.network.link.Link`.  Data
packets are matched against the table — in constant time regardless of
occupancy, as the hardware micro-benchmarks the paper cites [5] establish —
and the single highest-priority matching entry's instruction set is executed
(forwarding, optionally rewriting the destination address on terminal
switches, Fig. 3).

Packets addressed to the reserved ``IP_pub/sub`` address never match a flow
(Sec. 2: "No switch will install a flow with respect to IP_pub/sub") and are
handed to the controller over the control channel instead.

Statistics are registry-backed: each switch registers its packet counters
into a :class:`~repro.obs.registry.MetricsRegistry` (its own private one
when none is shared), and the familiar ``packets_*`` attributes read
through to those instruments.
"""

from __future__ import annotations

import random
import zlib
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.core.addressing import PUBSUB_CONTROL_ADDRESS
from repro.exceptions import TopologyError
from repro.network.flow import FlowTable
from repro.network.link import Link
from repro.network.packet import Packet
from repro.obs.flight import FlightRecorder
from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:
    from repro.sim.engine import Simulator

__all__ = ["Switch", "DEFAULT_LOOKUP_DELAY_S"]

#: Constant TCAM lookup + forwarding-engine latency per packet.  4 us puts
#: a multi-hop software-switch path in the paper's measured ~1 ms regime
#: once link and host costs are added.
DEFAULT_LOOKUP_DELAY_S = 4e-6

ControlHandler = Callable[["Switch", Packet, int], None]


class Switch:
    """A simulated SDN switch."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        table_capacity: int = 180_000,
        lookup_delay_s: float = DEFAULT_LOOKUP_DELAY_S,
        lookup_jitter_s: float = 1e-6,
        rng: random.Random | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.table = FlowTable(
            capacity=table_capacity, clock=lambda: sim.now
        )
        self.lookup_delay_s = lookup_delay_s
        self.lookup_jitter_s = lookup_jitter_s
        # The jitter seed must be a *stable* function of the name:
        # ``hash(str)`` is salted per process (PYTHONHASHSEED), which would
        # silently break cross-run reproducibility of every delay sample.
        self._rng = (
            rng if rng is not None
            else random.Random(zlib.crc32(name.encode("utf-8")))
        )
        self._ports: dict[int, Link] = {}
        self._control_handler: ControlHandler | None = None
        # Liveness: a crashed switch loses its (volatile) TCAM contents and
        # silently eats any packet still arriving on its ports.
        self.up = True
        # data-plane flight recorder (attached per deployment; None = off)
        self._flight: FlightRecorder | None = None
        # statistics
        self.registry = registry if registry is not None else MetricsRegistry()
        self._received = self.registry.counter(
            "switch.packets_received", switch=name
        )
        self._forwarded = self.registry.counter(
            "switch.packets_forwarded", switch=name
        )
        # Drops are counted per reason: a table miss (no subscriber
        # reachable through this switch) and a matched action whose output
        # port has no link are different failure modes.
        self._dropped_table_miss = self.registry.counter(
            "switch.packets_dropped", reason="table-miss", switch=name
        )
        self._dropped_no_link = self.registry.counter(
            "switch.packets_dropped", reason="no-link", switch=name
        )
        self._dropped_switch_down = self.registry.counter(
            "switch.packets_dropped", reason="switch-down", switch=name
        )
        self._to_controller = self.registry.counter(
            "switch.packets_to_controller", switch=name
        )
        self._g_up = self.registry.gauge("switch.up", switch=name)
        self._g_up.set(1.0)

    # ------------------------------------------------------------------
    # statistics (registry-backed)
    # ------------------------------------------------------------------
    @property
    def packets_received(self) -> int:
        return self._received.value

    @property
    def packets_forwarded(self) -> int:
        return self._forwarded.value

    @property
    def packets_dropped(self) -> int:
        return (
            self._dropped_table_miss.value
            + self._dropped_no_link.value
            + self._dropped_switch_down.value
        )

    @property
    def packets_dropped_table_miss(self) -> int:
        return self._dropped_table_miss.value

    @property
    def packets_dropped_no_link(self) -> int:
        return self._dropped_no_link.value

    @property
    def packets_to_controller(self) -> int:
        return self._to_controller.value

    def reset_counters(self) -> None:
        for counter in (
            self._received, self._forwarded, self._dropped_table_miss,
            self._dropped_no_link, self._dropped_switch_down,
            self._to_controller,
        ):
            counter.reset()

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Crash the switch: the TCAM is volatile, so its contents are
        lost; arriving packets are dropped until :meth:`restore`.
        Idempotent."""
        if not self.up:
            return
        self.up = False
        self._g_up.set(0.0)
        self.table.clear()

    def restore(self) -> None:
        """Revive a crashed switch.  It comes back with a *cold* (empty)
        flow table — re-populating it is the control plane's job, which is
        exactly what the resilience orchestrator's repair pass does."""
        if self.up:
            return
        self.up = True
        self._g_up.set(1.0)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_link(self, port: int, link: Link) -> None:
        """Connect a link to a local port (done by the topology builder)."""
        if port in self._ports:
            raise TopologyError(f"{self.name}: port {port} already in use")
        self._ports[port] = link

    def set_control_handler(self, handler: ControlHandler) -> None:
        """Register the controller callback for ``IP_pub/sub`` packets."""
        self._control_handler = handler

    @property
    def control_handler(self) -> ControlHandler | None:
        """The currently registered ``IP_pub/sub`` diversion callback.

        Read by ``Pleroma.enable_telemetry`` so the telemetry control
        channel can take over the diversion while forwarding packet-ins to
        whatever handler (controller, federation) was wired before it.
        """
        return self._control_handler

    def set_flight_recorder(self, recorder: FlightRecorder | None) -> None:
        """Attach (or detach, with ``None``) the data-plane flight
        recorder.  Detached is the default and costs one ``is not None``
        test per packet."""
        self._flight = recorder

    @property
    def ports(self) -> dict[int, Link]:
        return dict(self._ports)

    def port_to(self, neighbor_name: str) -> int:
        """The local port leading to a named neighbor."""
        for port, link in self._ports.items():
            far, _ = link.endpoint_for(self)
            if far.name == neighbor_name:
                return port
        raise TopologyError(f"{self.name} has no port to {neighbor_name}")

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, in_port: int) -> None:
        """Handle an arriving packet: control diversion or TCAM forwarding."""
        self._received.inc()
        # narrow once: ``flight`` stays None unless this packet is sampled
        flight = self._flight
        if flight is not None and not flight.wants(packet.packet_id):
            flight = None
        if not self.up:
            # A crashed switch eats everything, control traffic included.
            self._dropped_switch_down.inc()
            if flight is not None:
                flight.add(
                    packet.packet_id, "switch_recv", self.name,
                    drop="switch-down", in_port=in_port,
                )
            return
        if packet.dst_address == PUBSUB_CONTROL_ADDRESS:
            self._to_controller.inc()
            if flight is not None:
                flight.add(
                    packet.packet_id, "switch_recv", self.name,
                    to_controller=True, in_port=in_port,
                )
            if self._control_handler is not None:
                self._control_handler(self, packet, in_port)
            return
        entry = self.table.lookup(packet.dst_address)
        if entry is None:
            # A table miss for an event means no subscriber is reachable via
            # this switch for that subspace — the packet is discarded (we do
            # not punt data packets to the controller).
            self._dropped_table_miss.inc()
            if flight is not None:
                flight.add(
                    packet.packet_id, "switch_recv", self.name,
                    drop="table-miss", tcam_hit=False, in_port=in_port,
                )
            return
        # per-rule hardware counters (read out-of-band via FlowStatsRequest)
        self.table.record_hit(entry, packet.size_bytes, self.sim.now)
        delay = self.lookup_delay_s
        if self.lookup_jitter_s:
            delay += self._rng.uniform(0.0, self.lookup_jitter_s)
        if flight is not None:
            flight.add(
                packet.packet_id, "switch_recv", self.name,
                tcam_hit=True, lookup_s=delay, in_port=in_port,
                flow=str(entry.dz),
            )
        original_reused = False
        for action in entry.sorted_actions():
            if action.out_port == in_port and action.set_dest is None:
                # never bounce a packet back out its ingress port
                if flight is not None:
                    flight.add(
                        packet.packet_id, "switch_recv", self.name,
                        drop="ingress-bounce", out_port=action.out_port,
                    )
                continue
            link = self._ports.get(action.out_port)
            if link is None:
                self._dropped_no_link.inc()
                if flight is not None:
                    flight.add(
                        packet.packet_id, "switch_recv", self.name,
                        drop="no-link", out_port=action.out_port,
                    )
                continue
            if action.set_dest is not None:
                outgoing = packet.with_destination(action.set_dest)
            elif not original_reused:
                # No rewrite: forward the packet object itself instead of
                # allocating a copy per action (the hottest data-plane
                # path); only additional no-rewrite actions need a copy so
                # per-copy state (hop counts) stays independent.
                outgoing = packet
                original_reused = True
            else:
                outgoing = packet.with_destination(packet.dst_address)
            self._forwarded.inc()
            self.sim.schedule(delay, link.transmit, self, outgoing)

    # ------------------------------------------------------------------
    def send_via_port(self, port: int, packet: Packet) -> None:
        """Transmit directly out of a port (used by controllers to reach
        neighbouring partitions through border switches, Sec. 4.1)."""
        link = self._ports.get(port)
        if link is None:
            raise TopologyError(f"{self.name}: no link on port {port}")
        link.transmit(self, packet)

    def __repr__(self) -> str:
        return f"Switch({self.name}, flows={len(self.table)})"
