"""OpenFlow-style control messages.

PLEROMA "follows the widely accepted OpenFlow standard to perform such
updates" (Sec. 2).  This module models the subset of the protocol the
middleware exercises: flow modifications (add/modify/delete), barriers for
ordering, packet-in diversion of ``IP_pub/sub`` traffic, packet-out for
controller-originated packets (used to reach neighbouring partitions
through border switches), and a features handshake exposing the switch's
table capacity (the TCAM budget of requirement 3).

Messages are plain immutable values; the transport lives in
:mod:`repro.network.control_channel`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


from repro.core.addressing import MulticastPrefix
from repro.network.flow import FlowEntry
from repro.network.packet import Packet

__all__ = [
    "FlowModCommand",
    "OpenFlowMessage",
    "FlowMod",
    "BarrierRequest",
    "BarrierReply",
    "PacketIn",
    "PacketOut",
    "FeaturesRequest",
    "FeaturesReply",
    "EchoRequest",
    "EchoReply",
    "ErrorMessage",
    "FlowStatsRequest",
    "FlowStatsEntry",
    "FlowStatsReply",
    "PortStatsRequest",
    "PortStatsEntry",
    "PortStatsReply",
    "TableStatsRequest",
    "TableStatsReply",
    "message_size",
    "reset_xid_counter",
]

_xids = itertools.count(1)


def _next_xid() -> int:
    return next(_xids)


def reset_xid_counter(start: int = 1) -> None:
    """Restart transaction-id allocation (called by ``Network.__init__``).

    Xids pair requests with replies *within* one control channel; a
    process-global counter would leak state across ``Pleroma`` instances
    (the xid sequence of a run would depend on what ran earlier in the
    process).  Every fabric resets the counter so same-seed deployments
    emit identical xids regardless of prior activity.
    """
    global _xids
    _xids = itertools.count(start)


class FlowModCommand(enum.Enum):
    """The three table operations the controller issues."""

    ADD = "add"
    MODIFY = "modify"
    DELETE = "delete"


@dataclass(frozen=True)
class OpenFlowMessage:
    """Base class: every message carries a transaction id."""

    xid: int = field(default_factory=_next_xid, kw_only=True)


@dataclass(frozen=True)
class FlowMod(OpenFlowMessage):
    """Install, modify or delete one flow entry.

    ``entry`` carries the match/priority/instruction set for ADD and
    MODIFY; DELETE identifies the doomed flow by ``match`` alone.
    """

    command: FlowModCommand
    entry: FlowEntry | None = None
    match: MulticastPrefix | None = None

    def __post_init__(self) -> None:
        if self.command is FlowModCommand.DELETE:
            if self.match is None:
                raise ValueError("DELETE needs a match field")
        elif self.entry is None:
            raise ValueError(f"{self.command.value} needs a flow entry")


@dataclass(frozen=True)
class BarrierRequest(OpenFlowMessage):
    """Fence: the switch replies only after all earlier messages applied."""


@dataclass(frozen=True)
class BarrierReply(OpenFlowMessage):
    """Acknowledges a barrier (same xid as the request)."""


@dataclass(frozen=True)
class PacketIn(OpenFlowMessage):
    """A data-plane packet diverted to the controller.

    PLEROMA switches send every ``IP_pub/sub`` packet up (reason
    ``pubsub``); a table miss would use reason ``no_match`` (the data plane
    never punts events, so this reason only appears in tests).
    """

    switch: str
    in_port: int
    packet: Packet
    reason: str = "pubsub"


@dataclass(frozen=True)
class PacketOut(OpenFlowMessage):
    """A controller-originated packet sent out of a specific port.

    This is how a controller reaches the (anonymous) controller of an
    adjoining partition: out through a border switch port, addressed to
    ``IP_pub/sub`` (Sec. 4.1).
    """

    out_port: int
    packet: Packet


@dataclass(frozen=True)
class FeaturesRequest(OpenFlowMessage):
    """Handshake: ask a switch for its identity and capabilities."""


@dataclass(frozen=True)
class FeaturesReply(OpenFlowMessage):
    """The switch's identity, port count and TCAM capacity."""

    datapath: str
    ports: tuple[int, ...]
    table_capacity: int


@dataclass(frozen=True)
class EchoRequest(OpenFlowMessage):
    """Liveness probe."""


@dataclass(frozen=True)
class EchoReply(OpenFlowMessage):
    """Echo response (same xid)."""


@dataclass(frozen=True)
class ErrorMessage(OpenFlowMessage):
    """Reported when a message cannot be applied (e.g. table full)."""

    failed_xid: int = 0
    reason: str = ""


# ----------------------------------------------------------------------
# multipart statistics (OFPMP_FLOW / OFPMP_PORT_STATS / OFPMP_TABLE)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FlowStatsRequest(OpenFlowMessage):
    """Ask a switch for the per-rule counters of its flow table.

    This — not any oracle read of switch internals — is how a real SDN
    controller observes data-plane workload; the :mod:`repro.obs.telemetry`
    poller issues these periodically over the control channel.
    """


@dataclass(frozen=True)
class FlowStatsEntry:
    """One rule's counters inside a :class:`FlowStatsReply` (not itself a
    message; mirrors ``struct ofp_flow_stats``)."""

    match: MulticastPrefix
    priority: int
    cookie: int
    packet_count: int
    byte_count: int
    duration_s: float


@dataclass(frozen=True)
class FlowStatsReply(OpenFlowMessage):
    """The switch's per-rule counters at request-application time."""

    datapath: str
    entries: tuple[FlowStatsEntry, ...]


@dataclass(frozen=True)
class PortStatsRequest(OpenFlowMessage):
    """Ask a switch for its per-port packet/byte/drop counters."""


@dataclass(frozen=True)
class PortStatsEntry:
    """One port's counters inside a :class:`PortStatsReply` (mirrors
    ``struct ofp_port_stats``).  ``tx_dropped`` counts frames offered to a
    down link — the signal behind controller-side loss inference."""

    port: int
    rx_packets: int
    tx_packets: int
    rx_bytes: int
    tx_bytes: int
    tx_dropped: int


@dataclass(frozen=True)
class PortStatsReply(OpenFlowMessage):
    """The switch's per-port counters at request-application time."""

    datapath: str
    ports: tuple[PortStatsEntry, ...]


@dataclass(frozen=True)
class TableStatsRequest(OpenFlowMessage):
    """Ask a switch for its flow-table occupancy and lookup counters."""


@dataclass(frozen=True)
class TableStatsReply(OpenFlowMessage):
    """Occupancy/lookup summary of the (single) flow table."""

    datapath: str
    active_count: int
    capacity: int
    lookup_count: int
    matched_count: int


#: OpenFlow 1.3 wire sizes: the common header is 8 bytes; the per-type
#: body sizes below follow the spec's fixed structs (flow-mod body of
#: 48 B plus a 24 B IPv6-prefix match TLV, packet-in/out 24/16 B headers
#: plus the carried frame, multipart messages an 8 B multipart header
#: plus fixed-size stats structs per entry).
_OFP_HEADER = 8
_FLOW_MOD_BODY = 48
_MATCH_TLV = 24  # OXM IPv6-destination match (prefix + mask)
_PACKET_IN_BODY = 24
_PACKET_OUT_BODY = 16
_FEATURES_REPLY_BODY = 24
_ERROR_BODY = 12
_MULTIPART_HEADER = 8
_FLOW_STATS_ENTRY = 56  # ofp_flow_stats sans match TLV
_PORT_STATS_ENTRY = 112
_TABLE_STATS_ENTRY = 24


def _header_only(message: OpenFlowMessage) -> int:
    return _OFP_HEADER


def _multipart_fixed(message: OpenFlowMessage) -> int:
    return _OFP_HEADER + _MULTIPART_HEADER


#: Explicit per-type wire-size rules.  *Every* concrete message type must
#: appear here — :func:`message_size` refuses unknown types so a new
#: message cannot silently ride the control channel without byte
#: accounting (a test enforces completeness).
_SIZE_RULES: dict[type, "object"] = {
    FlowMod: lambda m: _OFP_HEADER + _FLOW_MOD_BODY + _MATCH_TLV,
    BarrierRequest: _header_only,
    BarrierReply: _header_only,
    PacketIn: lambda m: _OFP_HEADER + _PACKET_IN_BODY + m.packet.size_bytes,
    PacketOut: lambda m: _OFP_HEADER + _PACKET_OUT_BODY + m.packet.size_bytes,
    FeaturesRequest: _header_only,
    FeaturesReply: lambda m: (
        _OFP_HEADER + _FEATURES_REPLY_BODY + 8 * len(m.ports)
    ),
    EchoRequest: _header_only,
    EchoReply: _header_only,
    ErrorMessage: lambda m: (
        _OFP_HEADER + _ERROR_BODY + len(m.reason.encode("utf-8"))
    ),
    FlowStatsRequest: _multipart_fixed,
    FlowStatsReply: lambda m: (
        _OFP_HEADER
        + _MULTIPART_HEADER
        + len(m.entries) * (_FLOW_STATS_ENTRY + _MATCH_TLV)
    ),
    PortStatsRequest: _multipart_fixed,
    PortStatsReply: lambda m: (
        _OFP_HEADER + _MULTIPART_HEADER + len(m.ports) * _PORT_STATS_ENTRY
    ),
    TableStatsRequest: _multipart_fixed,
    TableStatsReply: lambda m: (
        _OFP_HEADER + _MULTIPART_HEADER + _TABLE_STATS_ENTRY
    ),
}


def message_size(message: OpenFlowMessage) -> int:
    """Wire size in bytes of one control message.

    The control channel uses this for its per-direction byte counters —
    the quantities behind the Fig. 7h control-traffic measurements.
    Raises :class:`LookupError` for a message type without an explicit
    size rule in ``_SIZE_RULES``.
    """
    try:
        rule = _SIZE_RULES[type(message)]
    except KeyError:
        raise LookupError(
            f"no wire-size rule for {type(message).__name__}; "
            "add one to repro.network.openflow._SIZE_RULES"
        ) from None
    return rule(message)  # type: ignore[operator]
