"""OpenFlow-style control messages.

PLEROMA "follows the widely accepted OpenFlow standard to perform such
updates" (Sec. 2).  This module models the subset of the protocol the
middleware exercises: flow modifications (add/modify/delete), barriers for
ordering, packet-in diversion of ``IP_pub/sub`` traffic, packet-out for
controller-originated packets (used to reach neighbouring partitions
through border switches), and a features handshake exposing the switch's
table capacity (the TCAM budget of requirement 3).

Messages are plain immutable values; the transport lives in
:mod:`repro.network.control_channel`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


from repro.core.addressing import MulticastPrefix
from repro.network.flow import FlowEntry
from repro.network.packet import Packet

__all__ = [
    "FlowModCommand",
    "OpenFlowMessage",
    "FlowMod",
    "BarrierRequest",
    "BarrierReply",
    "PacketIn",
    "PacketOut",
    "FeaturesRequest",
    "FeaturesReply",
    "EchoRequest",
    "EchoReply",
    "ErrorMessage",
    "message_size",
]

_xids = itertools.count(1)


def _next_xid() -> int:
    return next(_xids)


class FlowModCommand(enum.Enum):
    """The three table operations the controller issues."""

    ADD = "add"
    MODIFY = "modify"
    DELETE = "delete"


@dataclass(frozen=True)
class OpenFlowMessage:
    """Base class: every message carries a transaction id."""

    xid: int = field(default_factory=_next_xid, kw_only=True)


@dataclass(frozen=True)
class FlowMod(OpenFlowMessage):
    """Install, modify or delete one flow entry.

    ``entry`` carries the match/priority/instruction set for ADD and
    MODIFY; DELETE identifies the doomed flow by ``match`` alone.
    """

    command: FlowModCommand
    entry: FlowEntry | None = None
    match: MulticastPrefix | None = None

    def __post_init__(self) -> None:
        if self.command is FlowModCommand.DELETE:
            if self.match is None:
                raise ValueError("DELETE needs a match field")
        elif self.entry is None:
            raise ValueError(f"{self.command.value} needs a flow entry")


@dataclass(frozen=True)
class BarrierRequest(OpenFlowMessage):
    """Fence: the switch replies only after all earlier messages applied."""


@dataclass(frozen=True)
class BarrierReply(OpenFlowMessage):
    """Acknowledges a barrier (same xid as the request)."""


@dataclass(frozen=True)
class PacketIn(OpenFlowMessage):
    """A data-plane packet diverted to the controller.

    PLEROMA switches send every ``IP_pub/sub`` packet up (reason
    ``pubsub``); a table miss would use reason ``no_match`` (the data plane
    never punts events, so this reason only appears in tests).
    """

    switch: str
    in_port: int
    packet: Packet
    reason: str = "pubsub"


@dataclass(frozen=True)
class PacketOut(OpenFlowMessage):
    """A controller-originated packet sent out of a specific port.

    This is how a controller reaches the (anonymous) controller of an
    adjoining partition: out through a border switch port, addressed to
    ``IP_pub/sub`` (Sec. 4.1).
    """

    out_port: int
    packet: Packet


@dataclass(frozen=True)
class FeaturesRequest(OpenFlowMessage):
    """Handshake: ask a switch for its identity and capabilities."""


@dataclass(frozen=True)
class FeaturesReply(OpenFlowMessage):
    """The switch's identity, port count and TCAM capacity."""

    datapath: str
    ports: tuple[int, ...]
    table_capacity: int


@dataclass(frozen=True)
class EchoRequest(OpenFlowMessage):
    """Liveness probe."""


@dataclass(frozen=True)
class EchoReply(OpenFlowMessage):
    """Echo response (same xid)."""


@dataclass(frozen=True)
class ErrorMessage(OpenFlowMessage):
    """Reported when a message cannot be applied (e.g. table full)."""

    failed_xid: int = 0
    reason: str = ""


#: OpenFlow 1.3 wire sizes: the common header is 8 bytes; the per-type
#: body sizes below follow the spec's fixed structs (flow-mod body of
#: 48 B plus a 24 B IPv6-prefix match TLV, packet-in/out 24/16 B headers
#: plus the carried frame).
_OFP_HEADER = 8
_FLOW_MOD_BODY = 48
_MATCH_TLV = 24  # OXM IPv6-destination match (prefix + mask)
_PACKET_IN_BODY = 24
_PACKET_OUT_BODY = 16
_FEATURES_REPLY_BODY = 24
_ERROR_BODY = 12


def message_size(message: OpenFlowMessage) -> int:
    """Wire size in bytes of one control message.

    The control channel uses this for its per-direction byte counters —
    the quantities behind the Fig. 7h control-traffic measurements.
    """
    if isinstance(message, FlowMod):
        return _OFP_HEADER + _FLOW_MOD_BODY + _MATCH_TLV
    if isinstance(message, PacketIn):
        return _OFP_HEADER + _PACKET_IN_BODY + message.packet.size_bytes
    if isinstance(message, PacketOut):
        return _OFP_HEADER + _PACKET_OUT_BODY + message.packet.size_bytes
    if isinstance(message, FeaturesReply):
        return _OFP_HEADER + _FEATURES_REPLY_BODY + 8 * len(message.ports)
    if isinstance(message, ErrorMessage):
        return _OFP_HEADER + _ERROR_BODY + len(message.reason.encode("utf-8"))
    # barriers, echoes and the features request are header-only messages
    return _OFP_HEADER
