"""Topology descriptions and builders.

A :class:`Topology` is the static graph the simulator instantiates and the
controller plans over (the paper's controller "knows the entire network
topology of a partition", Sec. 2).  Builders cover the evaluation setups:

* :func:`paper_fat_tree` — the SDN testbed of Fig. 6: ten software switches
  R1–R10 in a hierarchical fat-tree with eight end hosts h1–h8;
* :func:`mininet_fat_tree` — the 20-switch fat-tree used in Mininet;
* :func:`ring` — the 20-switch ring, one end host per switch;
* :func:`line` and :func:`star` — small shapes for unit tests.

Partitioning for the multi-controller experiments (Sec. 4, Fig. 7g/h) is
done by :func:`partition_switches`, which cuts the switch graph into the
requested number of connected chunks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator

import networkx as nx

from repro.exceptions import TopologyError

__all__ = [
    "Topology",
    "LinkSpec",
    "paper_fat_tree",
    "mininet_fat_tree",
    "ring",
    "line",
    "star",
    "partition_switches",
]


@dataclass(frozen=True)
class LinkSpec:
    """Static description of one link of the topology."""

    a: str
    b: str
    delay_s: float | None = None
    bandwidth_bps: float | None = None


@dataclass
class Topology:
    """A named graph of switches and hosts.

    Hosts have degree exactly one (their access switch).  The underlying
    ``networkx`` graph is exposed read-only for path computations.
    """

    name: str = "topology"
    _graph: nx.Graph = field(default_factory=nx.Graph)
    _links: dict[frozenset[str], LinkSpec] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_switch(self, name: str) -> None:
        if name in self._graph:
            raise TopologyError(f"duplicate node name {name!r}")
        self._graph.add_node(name, kind="switch")

    def add_host(self, name: str, switch: str, **link_kwargs: float) -> None:
        """Add an end host attached to ``switch``."""
        if name in self._graph:
            raise TopologyError(f"duplicate node name {name!r}")
        if not self.is_switch(switch):
            raise TopologyError(f"{switch!r} is not a switch")
        self._graph.add_node(name, kind="host")
        self.add_link(name, switch, **link_kwargs)

    def add_link(
        self,
        a: str,
        b: str,
        delay_s: float | None = None,
        bandwidth_bps: float | None = None,
    ) -> None:
        for node in (a, b):
            if node not in self._graph:
                raise TopologyError(f"unknown node {node!r}")
        key = frozenset((a, b))
        if key in self._links:
            raise TopologyError(f"duplicate link {a!r} <-> {b!r}")
        if self.is_host(a) and self._graph.degree(a) >= 1:
            raise TopologyError(f"host {a!r} already attached")
        if self.is_host(b) and self._graph.degree(b) >= 1:
            raise TopologyError(f"host {b!r} already attached")
        self._graph.add_edge(a, b)
        self._links[key] = LinkSpec(a, b, delay_s, bandwidth_bps)

    def remove_link(self, a: str, b: str) -> None:
        """Remove a switch-to-switch link (planning view of a failure).

        Host attachment links cannot be removed — a host losing its access
        switch is handled as a client departure, not a routing change.
        """
        key = frozenset((a, b))
        if key not in self._links:
            raise TopologyError(f"no link {a!r} <-> {b!r}")
        if self.is_host(a) or self.is_host(b):
            raise TopologyError("host attachment links cannot be removed")
        del self._links[key]
        self._graph.remove_edge(a, b)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        return self._graph

    def is_switch(self, name: str) -> bool:
        return (
            name in self._graph
            and self._graph.nodes[name].get("kind") == "switch"
        )

    def is_host(self, name: str) -> bool:
        return (
            name in self._graph
            and self._graph.nodes[name].get("kind") == "host"
        )

    def switches(self) -> list[str]:
        return sorted(
            n for n, d in self._graph.nodes(data=True) if d["kind"] == "switch"
        )

    def hosts(self) -> list[str]:
        return sorted(
            n for n, d in self._graph.nodes(data=True) if d["kind"] == "host"
        )

    def links(self) -> Iterator[LinkSpec]:
        return iter(self._links.values())

    def link_between(self, a: str, b: str) -> LinkSpec:
        try:
            return self._links[frozenset((a, b))]
        except KeyError:
            raise TopologyError(f"no link {a!r} <-> {b!r}") from None

    def neighbors(self, name: str) -> list[str]:
        if name not in self._graph:
            raise TopologyError(f"unknown node {name!r}")
        return sorted(self._graph.neighbors(name))

    def access_switch(self, host: str) -> str:
        """The switch an end host hangs off."""
        if not self.is_host(host):
            raise TopologyError(f"{host!r} is not a host")
        return next(iter(self._graph.neighbors(host)))

    def hosts_of(self, switch: str) -> list[str]:
        """End hosts directly attached to a switch."""
        if not self.is_switch(switch):
            raise TopologyError(f"{switch!r} is not a switch")
        return sorted(
            n for n in self._graph.neighbors(switch) if self.is_host(n)
        )

    # ------------------------------------------------------------------
    # path computations (the controller's "simple graph problem", Sec. 3.2)
    # ------------------------------------------------------------------
    def switch_graph(self, switches: Iterable[str] | None = None) -> nx.Graph:
        """The switch-only subgraph (optionally restricted to a subset)."""
        nodes = set(switches) if switches is not None else set(self.switches())
        unknown = nodes - set(self.switches())
        if unknown:
            raise TopologyError(f"not switches: {sorted(unknown)}")
        return self._graph.subgraph(nodes).copy()

    def shortest_path(self, a: str, b: str) -> list[str]:
        try:
            return nx.shortest_path(self._graph, a, b)
        except nx.NetworkXNoPath:
            raise TopologyError(f"no path between {a!r} and {b!r}") from None

    def shortest_path_tree(
        self, root: str, switches: Iterable[str] | None = None
    ) -> dict[str, str]:
        """Shortest-path tree over the switch graph rooted at ``root``.

        Returns a parent map ``{switch: parent_switch}`` (root excluded).
        This is Algorithm 1's ``createTree`` graph computation.

        Shortest-path trees are not unique in multipath fabrics; ties are
        broken by a deterministic hash of ``(root, node, parent)``, so trees
        rooted at different switches spread over different equal-cost links.
        That spreading is the load-balancing benefit of PLEROMA's
        per-publisher trees (Sec. 3.1): a fat-tree core is shared instead of
        funnelling every tree through the same core switch.
        """
        sg = self.switch_graph(switches)
        if root not in sg:
            raise TopologyError(f"root {root!r} not in switch set")
        dist = nx.single_source_shortest_path_length(sg, root)
        parents: dict[str, str] = {}
        for node, d in dist.items():
            if node == root:
                continue
            candidates = [
                nb for nb in sg.neighbors(node) if dist.get(nb) == d - 1
            ]
            parents[node] = min(
                candidates, key=lambda nb: _spt_tie_break(root, node, nb)
            )
        return parents

    def diameter_path(self) -> tuple[str, str]:
        """A (host, host) pair realising the longest shortest path.

        Used by the Fig. 7(a) experiment, which places the publisher and
        subscriber "connected via the longest path in the topology".
        """
        hosts = self.hosts()
        if len(hosts) < 2:
            raise TopologyError("need at least two hosts")
        best = (hosts[0], hosts[1])
        best_len = -1
        lengths = dict(nx.all_pairs_shortest_path_length(self._graph))
        for i, a in enumerate(hosts):
            for b in hosts[i + 1:]:
                dist = lengths[a].get(b)
                if dist is not None and dist > best_len:
                    best, best_len = (a, b), dist
        return best


def _spt_tie_break(root: str, node: str, parent: str) -> str:
    """Deterministic, root-dependent ordering of equal-cost parents."""
    return hashlib.md5(f"{root}|{node}|{parent}".encode()).hexdigest()


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def paper_fat_tree() -> Topology:
    """The Fig. 6 testbed: 10 switches, 8 end hosts, hierarchical fat-tree.

    Two core switches (R1, R2), four aggregation switches (R3–R6) each
    connected to both cores, and four edge switches (R7–R10) each connected
    to the two aggregation switches of its pod.  Two end hosts per edge
    switch (h1–h8).
    """
    topo = Topology(name="paper-fat-tree")
    for i in range(1, 11):
        topo.add_switch(f"R{i}")
    for agg in ("R3", "R4", "R5", "R6"):
        topo.add_link("R1", agg)
        topo.add_link("R2", agg)
    pods = {("R3", "R4"): ("R7", "R8"), ("R5", "R6"): ("R9", "R10")}
    for (agg_a, agg_b), edges in pods.items():
        for edge in edges:
            topo.add_link(agg_a, edge)
            topo.add_link(agg_b, edge)
    host_id = 1
    for edge in ("R7", "R8", "R9", "R10"):
        for _ in range(2):
            topo.add_host(f"h{host_id}", edge)
            host_id += 1
    return topo


def mininet_fat_tree(hosts_per_edge: int = 2) -> Topology:
    """The 20-switch fat-tree used for the Mininet experiments.

    A k=4-style tree: 4 core switches, 8 aggregation, 8 edge, organised in
    four pods of (2 aggregation, 2 edge) switches each.
    """
    topo = Topology(name="mininet-fat-tree")
    cores = [f"C{i}" for i in range(1, 5)]
    for c in cores:
        topo.add_switch(c)
    host_id = 1
    for pod in range(4):
        aggs = [f"A{pod * 2 + i}" for i in (1, 2)]
        edges = [f"E{pod * 2 + i}" for i in (1, 2)]
        for a in aggs:
            topo.add_switch(a)
        for e in edges:
            topo.add_switch(e)
        # each aggregation switch uplinks to two cores (planes)
        topo.add_link(aggs[0], cores[0])
        topo.add_link(aggs[0], cores[1])
        topo.add_link(aggs[1], cores[2])
        topo.add_link(aggs[1], cores[3])
        for e in edges:
            for a in aggs:
                topo.add_link(e, a)
            for _ in range(hosts_per_edge):
                topo.add_host(f"h{host_id}", e)
                host_id += 1
    return topo


def ring(num_switches: int = 20, hosts_per_switch: int = 1) -> Topology:
    """The Mininet ring: ``num_switches`` switches in a cycle, each with
    ``hosts_per_switch`` end hosts."""
    if num_switches < 3:
        raise TopologyError("a ring needs at least 3 switches")
    topo = Topology(name=f"ring-{num_switches}")
    names = [f"R{i}" for i in range(1, num_switches + 1)]
    for n in names:
        topo.add_switch(n)
    for i, n in enumerate(names):
        topo.add_link(n, names[(i + 1) % num_switches])
    host_id = 1
    for n in names:
        for _ in range(hosts_per_switch):
            topo.add_host(f"h{host_id}", n)
            host_id += 1
    return topo


def line(num_switches: int, hosts_per_switch: int = 1) -> Topology:
    """A path of switches — the simplest shape for unit tests."""
    if num_switches < 1:
        raise TopologyError("need at least one switch")
    topo = Topology(name=f"line-{num_switches}")
    names = [f"R{i}" for i in range(1, num_switches + 1)]
    for n in names:
        topo.add_switch(n)
    for a, b in zip(names, names[1:]):
        topo.add_link(a, b)
    host_id = 1
    for n in names:
        for _ in range(hosts_per_switch):
            topo.add_host(f"h{host_id}", n)
            host_id += 1
    return topo


def star(leaves: int = 4, hosts_per_leaf: int = 1) -> Topology:
    """One hub switch with ``leaves`` leaf switches."""
    if leaves < 1:
        raise TopologyError("need at least one leaf")
    topo = Topology(name=f"star-{leaves}")
    topo.add_switch("HUB")
    host_id = 1
    for i in range(1, leaves + 1):
        leaf = f"L{i}"
        topo.add_switch(leaf)
        topo.add_link("HUB", leaf)
        for _ in range(hosts_per_leaf):
            topo.add_host(f"h{host_id}", leaf)
            host_id += 1
    return topo


def partition_switches(topo: Topology, count: int) -> list[set[str]]:
    """Split the switch graph into ``count`` connected, balanced chunks.

    Used to create the 1..10-controller configurations of Sec. 6.6.  The
    algorithm peels breadth-first regions of roughly equal size off the
    switch graph; every chunk is connected, so each partition can be managed
    by one controller.
    """
    switches = topo.switches()
    if not 1 <= count <= len(switches):
        raise TopologyError(
            f"cannot cut {len(switches)} switches into {count} partitions"
        )
    sg = topo.switch_graph()
    if not nx.is_connected(sg):
        raise TopologyError("switch graph must be connected to partition")
    remaining = set(switches)
    partitions: list[set[str]] = []
    for index in range(count):
        quota = round(len(remaining) / (count - index))
        sub = sg.subgraph(remaining)
        # Prefer a low-degree seed so chunks peel off the rim, keeping the
        # remainder connected where possible.
        seed = min(remaining, key=lambda n: (sub.degree(n), n))
        chunk: set[str] = set()
        frontier = [seed]
        while frontier and len(chunk) < quota:
            node = frontier.pop(0)
            if node in chunk:
                continue
            chunk.add(node)
            for nb in sorted(sub.neighbors(node)):
                if nb not in chunk:
                    frontier.append(nb)
        # If BFS exhausted a component before quota, top up from remaining.
        shortfall = quota - len(chunk)
        if shortfall > 0:
            for node in sorted(remaining - chunk):
                chunk.add(node)
                shortfall -= 1
                if shortfall == 0:
                    break
        partitions.append(chunk)
        remaining -= chunk
    # ensure every chunk is internally connected; if the top-up broke one,
    # fall back to merging stragglers into an adjacent chunk.
    for i, chunk in enumerate(partitions):
        comp = list(nx.connected_components(sg.subgraph(chunk)))
        if len(comp) > 1:
            main = max(comp, key=len)
            for extra in comp:
                if extra is main:
                    continue
                for j, other in enumerate(partitions):
                    if j != i and any(
                        sg.has_edge(u, v) for u in extra for v in other
                    ):
                        partitions[j] = other | extra
                        partitions[i] = partitions[i] - extra
                        break
    return [p for p in partitions if p]
