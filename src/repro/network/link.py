"""Point-to-point links with propagation delay, bandwidth and queueing.

Each link is full-duplex: the two directions have independent transmit
queues.  Serialisation delay is ``size / bandwidth``; packets queue behind
earlier transmissions in the same direction (a busy-until model, i.e. an
ideal FIFO output queue of unbounded length — loss under overload is
modelled at the hosts, where the paper located the bottleneck, Sec. 6.3).
Per-direction byte/packet counters feed the bandwidth-efficiency and
link-load metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, NamedTuple, Protocol

from repro.exceptions import TopologyError
from repro.network.packet import Packet
from repro.obs.flight import FlightRecorder
from repro.obs.registry import Counter, MetricsRegistry

if TYPE_CHECKING:
    from repro.sim.engine import Simulator

__all__ = [
    "Link",
    "NetworkNode",
    "PortCounters",
    "DEFAULT_LINK_DELAY_S",
    "DEFAULT_BANDWIDTH_BPS",
]

#: 50 microseconds of propagation/processing per hop — datacenter scale.
DEFAULT_LINK_DELAY_S = 50e-6
#: 1 Gbit/s links, as in the commodity testbed.
DEFAULT_BANDWIDTH_BPS = 1e9


class NetworkNode(Protocol):
    """Anything attachable to a link end: a switch or a host."""

    name: str

    def receive(self, packet: Packet, in_port: int) -> None:
        """Handle a packet arriving on local port ``in_port``."""


@dataclass
class _Direction:
    """State of one transmit direction of a link.

    The packet/byte counts live in registry counters so the observability
    layer sees them; the busy-until horizon is plain scheduling state.
    ``lost_packets`` counts frames offered while the link was down — the
    per-direction detail behind the aggregate ``link.packets_lost_down``
    counter, surfaced as ``tx_dropped`` in OpenFlow port statistics.
    """

    packets: Counter
    bytes: Counter
    busy_until: float = 0.0
    lost_packets: int = 0


class PortCounters(NamedTuple):
    """One endpoint's view of its link counters (its "port counters")."""

    tx_packets: int
    tx_bytes: int
    tx_dropped: int
    rx_packets: int
    rx_bytes: int


class Link:
    """A bidirectional link between two nodes, with named local ports."""

    def __init__(
        self,
        sim: "Simulator",
        a: NetworkNode,
        a_port: int,
        b: NetworkNode,
        b_port: int,
        delay_s: float = DEFAULT_LINK_DELAY_S,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if delay_s < 0 or bandwidth_bps <= 0:
            raise TopologyError("link delay must be >= 0 and bandwidth > 0")
        self.sim = sim
        self.a, self.a_port = a, a_port
        self.b, self.b_port = b, b_port
        self.delay_s = delay_s
        self.bandwidth_bps = bandwidth_bps
        # Administrative status (operator/chaos intent: fail()/restore())
        # and operational status (carrier: an endpoint device died) are
        # tracked separately, the way real switch ports report them.  The
        # link carries traffic only when both are up.
        self._admin_up = True
        self._oper_up = True
        self._flight: FlightRecorder | None = None
        self.registry = registry if registry is not None else MetricsRegistry()
        label = f"{a.name}<->{b.name}"
        self.label = label
        # Registry-backed so down-loss shows up in snapshots, the report
        # CLI and every exporter — it used to be a plain attribute that no
        # observability surface could see.
        self._lost_down = self.registry.counter(
            "link.packets_lost_down", link=label
        )
        # Status gauges: fail()/restore() used to be silent bit flips that
        # no observability surface (or failure detector) could see.
        self._g_admin = self.registry.gauge("link.admin_up", link=label)
        self._g_oper = self.registry.gauge("link.oper_up", link=label)
        self._g_admin.set(1.0)
        self._g_oper.set(1.0)
        self._status_changes = self.registry.counter(
            "link.status_changes", link=label
        )
        self._dir_ab = _Direction(
            packets=self.registry.counter(
                "link.packets", link=label, direction=f"{a.name}->{b.name}"
            ),
            bytes=self.registry.counter(
                "link.bytes", link=label, direction=f"{a.name}->{b.name}"
            ),
        )
        self._dir_ba = _Direction(
            packets=self.registry.counter(
                "link.packets", link=label, direction=f"{b.name}->{a.name}"
            ),
            bytes=self.registry.counter(
                "link.bytes", link=label, direction=f"{b.name}->{a.name}"
            ),
        )

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    @property
    def up(self) -> bool:
        """True iff the link carries traffic (admin up AND oper up)."""
        return self._admin_up and self._oper_up

    @property
    def admin_up(self) -> bool:
        return self._admin_up

    @property
    def oper_up(self) -> bool:
        return self._oper_up

    def fail(self) -> None:
        """Administratively take the link down: transmissions are lost.

        Idempotent; the transition is visible as the ``link.admin_up``
        gauge dropping to 0 and a ``link.status_changes`` increment."""
        if not self._admin_up:
            return
        self._admin_up = False
        self._g_admin.set(0.0)
        self._status_changes.inc()

    def restore(self) -> None:
        """Administratively bring the link back up.

        Idempotent.  Scheduling state is reset: transmissions queued
        behind the pre-failure busy horizon died with the failure, so a
        restored link starts with empty output queues instead of delaying
        new traffic behind ghosts of the old."""
        if self._admin_up:
            return
        self._admin_up = True
        self._g_admin.set(1.0)
        self._status_changes.inc()
        self._dir_ab.busy_until = 0.0
        self._dir_ba.busy_until = 0.0

    def set_oper(self, up: bool) -> None:
        """Set operational (carrier) status — driven by endpoint device
        death/revival, not by operator intent.  Idempotent."""
        if self._oper_up == up:
            return
        self._oper_up = up
        self._g_oper.set(1.0 if up else 0.0)
        self._status_changes.inc()
        if up:
            self._dir_ab.busy_until = 0.0
            self._dir_ba.busy_until = 0.0

    def set_flight_recorder(self, recorder: FlightRecorder | None) -> None:
        """Attach (or detach, with ``None``) the data-plane flight
        recorder."""
        self._flight = recorder

    @property
    def packets_lost_down(self) -> int:
        """Packets lost to transmissions while the link was down."""
        return self._lost_down.value

    # ------------------------------------------------------------------
    def endpoint_for(self, node: NetworkNode) -> tuple[NetworkNode, int]:
        """The (far node, far port) seen from ``node``."""
        if node is self.a:
            return self.b, self.b_port
        if node is self.b:
            return self.a, self.a_port
        raise TopologyError(f"{node.name} is not an endpoint of this link")

    def port_for(self, node: NetworkNode) -> int:
        """The local port number of ``node`` on this link."""
        if node is self.a:
            return self.a_port
        if node is self.b:
            return self.b_port
        raise TopologyError(f"{node.name} is not an endpoint of this link")

    # ------------------------------------------------------------------
    def transmit(self, sender: NetworkNode, packet: Packet) -> None:
        """Send a packet from ``sender`` to the far end of the link."""
        flight = self._flight
        if flight is not None and not flight.wants(packet.packet_id):
            flight = None
        if not self.up:
            self._lost_down.inc()
            if sender is self.a:
                self._dir_ab.lost_packets += 1
            elif sender is self.b:
                self._dir_ba.lost_packets += 1
            if flight is not None:
                receiver, _ = self.endpoint_for(sender)
                flight.add(
                    packet.packet_id, "link_tx", sender.name,
                    drop="link-down", src=sender.name, dst=receiver.name,
                )
            return
        receiver, far_port = self.endpoint_for(sender)
        direction = self._dir_ab if sender is self.a else self._dir_ba
        serialization = packet.size_bytes * 8.0 / self.bandwidth_bps
        start = max(self.sim.now, direction.busy_until)
        direction.busy_until = start + serialization
        arrival = direction.busy_until + self.delay_s
        direction.packets.inc()
        direction.bytes.inc(packet.size_bytes)
        packet.hops += 1
        if flight is not None:
            flight.add(
                packet.packet_id, "link_tx", sender.name,
                src=sender.name, dst=receiver.name,
                queueing_s=start - self.sim.now,
                serialization_s=serialization,
                propagation_s=self.delay_s,
                arrival=arrival,
            )
        self.sim.schedule_at(arrival, receiver.receive, packet, far_port)

    def counters_for(self, node: NetworkNode) -> PortCounters:
        """The link counters as seen from one endpoint's port.

        ``tx_*`` is the direction ``node`` transmits on, ``rx_*`` the
        reverse.  Both endpoints read the same two direction counters, so
        in-model a peer's ``rx`` equals this end's ``tx`` modulo polling
        skew — real loss shows up in ``tx_dropped``.
        """
        if node is self.a:
            tx, rx = self._dir_ab, self._dir_ba
        elif node is self.b:
            tx, rx = self._dir_ba, self._dir_ab
        else:
            raise TopologyError(f"{node.name} is not an endpoint of this link")
        return PortCounters(
            tx_packets=tx.packets.value,
            tx_bytes=tx.bytes.value,
            tx_dropped=tx.lost_packets,
            rx_packets=rx.packets.value,
            rx_bytes=rx.bytes.value,
        )

    # ------------------------------------------------------------------
    @property
    def total_packets(self) -> int:
        return self._dir_ab.packets.value + self._dir_ba.packets.value

    @property
    def total_bytes(self) -> int:
        return self._dir_ab.bytes.value + self._dir_ba.bytes.value

    def reset_counters(self) -> None:
        self._lost_down.reset()
        for direction in (self._dir_ab, self._dir_ba):
            direction.packets.reset()
            direction.bytes.reset()

    def __repr__(self) -> str:
        return (
            f"Link({self.a.name}:{self.a_port} <-> "
            f"{self.b.name}:{self.b_port})"
        )
