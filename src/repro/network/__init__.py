"""Simulated SDN data plane: packets, flows, switches, links, hosts."""

from repro.network.control_channel import (
    DEFAULT_CONTROL_LATENCY_S,
    ControlChannel,
)
from repro.network.fabric import Network, NetworkParams
from repro.network.flow import Action, FlowEntry, FlowTable
from repro.network.host import DEFAULT_HOST_RATE_EPS, HOST_ADDRESS_BASE, Host
from repro.network.link import (
    DEFAULT_BANDWIDTH_BPS,
    DEFAULT_LINK_DELAY_S,
    Link,
)
from repro.network.openflow import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMessage,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowModCommand,
    OpenFlowMessage,
    PacketIn,
    PacketOut,
)
from repro.network.packet import EventPayload, Packet, event_packet_size
from repro.network.stats import LinkSample, LinkUtilizationSampler
from repro.network.switch import DEFAULT_LOOKUP_DELAY_S, Switch
from repro.network.topology import (
    LinkSpec,
    Topology,
    line,
    mininet_fat_tree,
    paper_fat_tree,
    partition_switches,
    ring,
    star,
)

__all__ = [
    "Network",
    "NetworkParams",
    "ControlChannel",
    "DEFAULT_CONTROL_LATENCY_S",
    "OpenFlowMessage",
    "FlowMod",
    "FlowModCommand",
    "BarrierRequest",
    "BarrierReply",
    "PacketIn",
    "PacketOut",
    "FeaturesRequest",
    "FeaturesReply",
    "EchoRequest",
    "EchoReply",
    "ErrorMessage",
    "LinkSample",
    "LinkUtilizationSampler",
    "Action",
    "FlowEntry",
    "FlowTable",
    "Host",
    "HOST_ADDRESS_BASE",
    "DEFAULT_HOST_RATE_EPS",
    "Link",
    "DEFAULT_LINK_DELAY_S",
    "DEFAULT_BANDWIDTH_BPS",
    "Packet",
    "EventPayload",
    "event_packet_size",
    "Switch",
    "DEFAULT_LOOKUP_DELAY_S",
    "Topology",
    "LinkSpec",
    "paper_fat_tree",
    "mininet_fat_tree",
    "ring",
    "line",
    "star",
    "partition_switches",
]
