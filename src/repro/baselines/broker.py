"""Baselines: broker-overlay publish/subscribe and flooding.

The paper motivates PLEROMA against traditional broker-based systems
(Sec. 1, Sec. 7): brokers filter in software — a per-hop matching delay
that grows with the number of installed filters — and embed all paths in a
single spanning tree, concentrating load on core links.  These baselines
recreate that behaviour on the *same* topology and simulator so the
ablation benchmarks can compare like with like:

* :class:`SingleTreeBrokerOverlay` — one global spanning tree; every switch
  position hosts a software broker with per-filter matching cost; events
  are forwarded only toward subtrees with matching subscribers (perfect
  filtering, zero false positives, but software-speed);
* :class:`FloodingOverlay` — the degenerate baseline: no filtering at all,
  every event reaches every host over the spanning tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from repro.core.events import Event
from repro.core.subscription import Subscription
from repro.exceptions import TopologyError
from repro.network.topology import Topology
from repro.sim.engine import Simulator

__all__ = [
    "BrokerDelivery",
    "SingleTreeBrokerOverlay",
    "FloodingOverlay",
]

#: Fixed per-broker processing cost (queueing + dispatch), seconds.
DEFAULT_BROKER_BASE_DELAY_S = 50e-6
#: Incremental matching cost per installed filter, seconds.  A software
#: matcher scanning thousands of predicates is orders of magnitude slower
#: than a TCAM lookup — this constant encodes that gap.
DEFAULT_PER_FILTER_COST_S = 0.2e-6
#: Per-hop link latency, matching the SDN fabric default.
DEFAULT_HOP_DELAY_S = 50e-6


@dataclass(frozen=True)
class BrokerDelivery:
    """One event delivered by the overlay."""

    host: str
    event: Event
    publish_time: float
    deliver_time: float

    @property
    def delay(self) -> float:
        return self.deliver_time - self.publish_time


@dataclass
class _BrokerNode:
    """A broker co-located with one switch of the spanning tree."""

    name: str
    neighbors: list[str] = field(default_factory=list)
    hosts: list[str] = field(default_factory=list)


class SingleTreeBrokerOverlay:
    """A broker network embedded in one spanning tree of the topology."""

    filtering = True

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        root: str | None = None,
        base_delay_s: float = DEFAULT_BROKER_BASE_DELAY_S,
        per_filter_cost_s: float = DEFAULT_PER_FILTER_COST_S,
        hop_delay_s: float = DEFAULT_HOP_DELAY_S,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.base_delay_s = base_delay_s
        self.per_filter_cost_s = per_filter_cost_s
        self.hop_delay_s = hop_delay_s
        switches = topology.switches()
        if not switches:
            raise TopologyError("topology has no switches")
        self.root = root if root is not None else switches[0]
        if self.root not in switches:
            raise TopologyError(f"unknown root {self.root!r}")
        parents = topology.shortest_path_tree(self.root)
        self.brokers: dict[str, _BrokerNode] = {
            s: _BrokerNode(name=s, hosts=topology.hosts_of(s))
            for s in switches
        }
        for child, parent in parents.items():
            self.brokers[child].neighbors.append(parent)
            self.brokers[parent].neighbors.append(child)
        # state
        self.subscriptions: dict[int, tuple[str, Subscription]] = {}
        self.deliveries: list[BrokerDelivery] = []
        self.link_packets: dict[frozenset[str], int] = {}
        self.events_published = 0

    # ------------------------------------------------------------------
    def subscribe(self, host: str, subscription: Subscription) -> int:
        if not self.topology.is_host(host):
            raise TopologyError(f"unknown host {host!r}")
        self.subscriptions[subscription.sub_id] = (host, subscription)
        return subscription.sub_id

    def unsubscribe(self, sub_id: int) -> None:
        self.subscriptions.pop(sub_id, None)

    def _matching_hosts(self, event: Event) -> set[str]:
        if not self.filtering:
            return set(self.topology.hosts())
        return {
            host
            for host, sub in self.subscriptions.values()
            if sub.matches(event)
        }

    def _broker_delay(self) -> float:
        """Per-hop broker processing: base cost + software matching over
        every installed filter."""
        if not self.filtering:
            return self.base_delay_s
        return self.base_delay_s + self.per_filter_cost_s * len(
            self.subscriptions
        )

    # ------------------------------------------------------------------
    def publish(self, host: str, event: Event) -> None:
        """Route one event through the broker tree."""
        if not self.topology.is_host(host):
            raise TopologyError(f"unknown host {host!r}")
        self.events_published += 1
        publish_time = self.sim.now
        targets = self._matching_hosts(event) - {host}
        if not targets:
            return
        target_switches = {self.topology.access_switch(h) for h in targets}
        start = self.topology.access_switch(host)
        self._forward(
            event,
            publish_time,
            at=start,
            came_from=None,
            targets=targets,
            target_switches=target_switches,
            elapsed=self.hop_delay_s,  # host -> access switch
        )

    def _subtree_has_target(
        self, node: str, came_from: str | None, target_switches: set[str]
    ) -> bool:
        """Depth-first reachability of any target switch via ``node``."""
        if node in target_switches:
            return True
        return any(
            self._subtree_has_target(nb, node, target_switches)
            for nb in self.brokers[node].neighbors
            if nb != came_from
        )

    def _forward(
        self,
        event: Event,
        publish_time: float,
        at: str,
        came_from: str | None,
        targets: set[str],
        target_switches: set[str],
        elapsed: float,
    ) -> None:
        elapsed += self._broker_delay()
        broker = self.brokers[at]
        if at in target_switches:
            for host in broker.hosts:
                if host in targets:
                    deliver_time = publish_time + elapsed + self.hop_delay_s
                    self.deliveries.append(
                        BrokerDelivery(host, event, publish_time, deliver_time)
                    )
        for neighbor in broker.neighbors:
            if neighbor == came_from:
                continue
            if not self._subtree_has_target(neighbor, at, target_switches):
                continue
            edge = frozenset((at, neighbor))
            self.link_packets[edge] = self.link_packets.get(edge, 0) + 1
            self._forward(
                event,
                publish_time,
                at=neighbor,
                came_from=at,
                targets=targets,
                target_switches=target_switches,
                elapsed=elapsed + self.hop_delay_s,
            )

    # ------------------------------------------------------------------
    def mean_delay(self) -> float:
        if not self.deliveries:
            raise ValueError("no deliveries recorded")
        return sum(d.delay for d in self.deliveries) / len(self.deliveries)

    def link_load_distribution(self) -> list[int]:
        """Per-tree-edge packet counts, descending (load-balance metric)."""
        return sorted(self.link_packets.values(), reverse=True)

    def total_link_packets(self) -> int:
        return sum(self.link_packets.values())


class FloodingOverlay(SingleTreeBrokerOverlay):
    """No filtering: every event reaches every host over the tree."""

    filtering = False

    def hosts_reached(self) -> Iterable[str]:
        return {d.host for d in self.deliveries}
