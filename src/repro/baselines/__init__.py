"""Comparison baselines: broker-tree overlay and flooding."""

from repro.baselines.broker import (
    BrokerDelivery,
    FloodingOverlay,
    SingleTreeBrokerOverlay,
)

__all__ = [
    "BrokerDelivery",
    "FloodingOverlay",
    "SingleTreeBrokerOverlay",
]
