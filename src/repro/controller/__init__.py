"""The PLEROMA control plane: trees, flow maintenance, the controller."""

from repro.controller.controller import (
    DEFAULT_FLOW_MOD_LATENCY_S,
    AdvertisementState,
    PleromaController,
    RequestStats,
    summarize_requests,
    SubscriptionState,
)
from repro.controller.flow_installer import flow_addition
from repro.controller.reconciler import (
    FlowDiff,
    apply_diff,
    desired_flows,
    diff_table,
)
from repro.controller.requests import (
    AdvertiseRequest,
    SubscribeRequest,
    UnadvertiseRequest,
    UnsubscribeRequest,
)
from repro.controller.applier import (
    ChannelApplier,
    DirectApplier,
    TableApplier,
)
from repro.controller.dztrie import DzTrie
from repro.controller.overload import OverloadEvent, OverloadManager
from repro.controller.state import Endpoint, FlowLedger, PathKey
from repro.controller.tree_builders import (
    TreeBuilder,
    builder_by_name,
    minimum_spanning_tree,
    random_spanning_tree,
    shortest_path_tree,
)
from repro.controller.tree import SpanningTree, TreeMember
from repro.controller.tree_manager import TreeManager

__all__ = [
    "PleromaController",
    "RequestStats",
    "summarize_requests",
    "AdvertisementState",
    "SubscriptionState",
    "DEFAULT_FLOW_MOD_LATENCY_S",
    "flow_addition",
    "desired_flows",
    "diff_table",
    "apply_diff",
    "FlowDiff",
    "Endpoint",
    "FlowLedger",
    "PathKey",
    "SpanningTree",
    "TreeMember",
    "TreeManager",
    "TreeBuilder",
    "builder_by_name",
    "shortest_path_tree",
    "minimum_spanning_tree",
    "random_spanning_tree",
    "DzTrie",
    "TableApplier",
    "DirectApplier",
    "ChannelApplier",
    "OverloadManager",
    "OverloadEvent",
    "AdvertiseRequest",
    "SubscribeRequest",
    "UnadvertiseRequest",
    "UnsubscribeRequest",
]
