"""Pluggable spanning-tree construction strategies.

Algorithm 1's ``createTree`` builds "a shortest path tree rooted at the
publisher"; the paper notes (footnote 2) that "other tree creation
algorithms such as minimum spanning tree etc., can also be employed
without any modification to the proposed approach".  This module provides
that pluggability: a *tree builder* maps ``(topology, partition, root)`` to
a parent map, and the :class:`~repro.controller.tree_manager.TreeManager`
accepts any of them.

Builders:

* :func:`shortest_path_tree` — the paper's default: minimal root-to-switch
  hop counts, with root-dependent tie-breaking for load spreading;
* :func:`minimum_spanning_tree` — a deterministic MST (uniform edge
  weights broken by a stable hash), oriented away from the root;
* :func:`random_spanning_tree` — a seeded random spanning tree, the
  degenerate baseline for the tree-builder ablation.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Iterable

import networkx as nx

from repro.exceptions import ControllerError
from repro.network.topology import Topology

__all__ = [
    "TreeBuilder",
    "shortest_path_tree",
    "minimum_spanning_tree",
    "random_spanning_tree",
    "builder_by_name",
]

TreeBuilder = Callable[[Topology, Iterable[str], str], dict[str, str]]


def shortest_path_tree(
    topology: Topology, partition: Iterable[str], root: str
) -> dict[str, str]:
    """The default builder: delegate to the topology's SPT computation."""
    return topology.shortest_path_tree(root, partition)


def _orient_from_root(tree: nx.Graph, root: str) -> dict[str, str]:
    """Turn an undirected spanning tree into a parent map."""
    parents: dict[str, str] = {}
    for child, parent in nx.bfs_predecessors(tree, root):
        parents[child] = parent
    return parents


def _edge_weight(a: str, b: str, salt: str = "") -> float:
    """Deterministic pseudo-random weight for an undirected edge."""
    lo, hi = sorted((a, b))
    digest = hashlib.md5(f"{salt}|{lo}|{hi}".encode()).hexdigest()
    return int(digest[:12], 16) / float(1 << 48)


def minimum_spanning_tree(
    topology: Topology, partition: Iterable[str], root: str
) -> dict[str, str]:
    """A deterministic minimum spanning tree oriented away from ``root``.

    With unit link costs any spanning tree is "minimum"; stable hashed
    weights make the choice deterministic and root-independent (the same
    physical tree is reused for every root, mimicking a shared-tree
    deployment)."""
    sg = topology.switch_graph(partition)
    if root not in sg:
        raise ControllerError(f"root {root!r} not in partition")
    weighted = nx.Graph()
    weighted.add_nodes_from(sg.nodes)
    for a, b in sg.edges:
        weighted.add_edge(a, b, weight=_edge_weight(a, b))
    mst = nx.minimum_spanning_tree(weighted, weight="weight")
    return _orient_from_root(mst, root)


def random_spanning_tree(
    topology: Topology, partition: Iterable[str], root: str
) -> dict[str, str]:
    """A seeded random spanning tree (random weights + MST), per root."""
    sg = topology.switch_graph(partition)
    if root not in sg:
        raise ControllerError(f"root {root!r} not in partition")
    weighted = nx.Graph()
    weighted.add_nodes_from(sg.nodes)
    for a, b in sg.edges:
        weighted.add_edge(a, b, weight=_edge_weight(a, b, salt=root))
    mst = nx.minimum_spanning_tree(weighted, weight="weight")
    return _orient_from_root(mst, root)


_BUILDERS: dict[str, TreeBuilder] = {
    "spt": shortest_path_tree,
    "mst": minimum_spanning_tree,
    "random": random_spanning_tree,
}


def builder_by_name(name: str) -> TreeBuilder:
    """Look a builder up by its short name (``spt``/``mst``/``random``)."""
    try:
        return _BUILDERS[name]
    except KeyError:
        raise ControllerError(
            f"unknown tree builder {name!r}; pick one of {sorted(_BUILDERS)}"
        ) from None
