"""Overload detection and reaction.

The paper's conclusion: "beyond the presented algorithms ... new mechanisms
need to be introduced in order to detect and react to overload situations
in the presence of a dynamic workload."  This module implements one such
mechanism on top of the reproduction's primitives:

* **detect** — a :class:`~repro.network.stats.LinkUtilizationSampler`
  measures per-link utilization over sampling windows; a link above the
  configured threshold is *hot*;
* **react** — among the trees routed over the hot edge, try to move the
  busiest one (most installed paths crossing the edge) onto an alternative
  structure avoiding the edge
  (:meth:`~repro.controller.controller.PleromaController.reroute_tree_around_edge`).

Reactions are rate-limited per edge (one reroute per observation window)
and logged so experiments can assert what happened.

The reroute primitive returns a
:class:`~repro.controller.controller.RerouteOutcome` (truthy only when a
reroute deployed), so the log records *why* a reaction was declined.  The
failure counterpart of this module is :mod:`repro.resilience`: overload
shifts load within a healthy fabric, resilience repairs trees over a
broken one — see ``docs/resilience.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.controller.controller import PleromaController
from repro.controller.tree import SpanningTree
from repro.exceptions import ControllerError
from repro.network.stats import LinkUtilizationSampler

__all__ = ["OverloadEvent", "OverloadManager"]


@dataclass(frozen=True)
class OverloadEvent:
    """One detection/reaction record."""

    time: float
    edge: tuple[str, str]
    utilization: float
    tree_id: int | None
    rerouted: bool


@dataclass
class OverloadManager:
    """Watches one controller's partition and reroutes around hot links."""

    controller: PleromaController
    sampler: LinkUtilizationSampler
    threshold: float = 0.8
    log: list[OverloadEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ControllerError("threshold must be in (0, 1]")

    # ------------------------------------------------------------------
    def _paths_over_edge(self, tree: SpanningTree, a: str, b: str) -> int:
        """How many publisher->subscriber paths of a tree cross an edge."""
        count = 0
        for pub in tree.publishers.values():
            for sub in tree.subscribers.values():
                if pub.endpoint.name == sub.endpoint.name:
                    continue
                route = tree.path_between(
                    pub.endpoint.switch, sub.endpoint.switch
                )
                if any(
                    {u, v} == {a, b} for u, v in zip(route, route[1:])
                ):
                    count += 1
        return count

    # ------------------------------------------------------------------
    def check(self) -> OverloadEvent | None:
        """Take one sample; if the hottest intra-partition link exceeds the
        threshold, try to reroute the busiest tree off it.

        Returns the event when an overload was detected (whether or not a
        reroute succeeded), None when everything is below threshold.
        """
        samples = self.sampler.sample()
        partition = self.controller.partition
        hot_edge = None
        hot_sample = None
        for key, sample in samples.items():
            if not key <= partition:
                continue  # not an internal edge of this partition
            if hot_sample is None or sample.utilization > hot_sample.utilization:
                hot_edge, hot_sample = key, sample
        if hot_edge is None or hot_sample.utilization < self.threshold:
            return None
        a, b = sorted(hot_edge)
        candidates = sorted(
            (
                tree
                for tree in self.controller.trees
                if tree.uses_edge(a, b)
            ),
            key=lambda t: self._paths_over_edge(t, a, b),
            reverse=True,
        )
        rerouted = False
        chosen = None
        for tree in candidates:
            chosen = tree.tree_id
            if self.controller.reroute_tree_around_edge(tree.tree_id, a, b):
                rerouted = True
                break
        event = OverloadEvent(
            time=self.controller.network.sim.now,
            edge=(a, b),
            utilization=hot_sample.utilization,
            tree_id=chosen,
            rerouted=rerouted,
        )
        self.log.append(event)
        return event
