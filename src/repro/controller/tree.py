"""Spanning trees: the dissemination structures of Sec. 3.2.

Each tree ``t`` owns a set of subspaces ``DZ(t)`` — pairwise disjoint across
trees, so every event is disseminated in at most one tree — and logically
interconnects all switches of the partition.  Trees are built as shortest
path trees rooted at the advertising publisher's access switch ("createTree",
Algorithm 1 line 14).

A tree records its members: the publishers ``P_t`` with the overlap
``DZ^t(p)`` of their advertisement, and subscribers with ``DZ^t(s)``.
Routing between two endpoints follows the unique tree path between their
attachment switches.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.dzset import DzSet, EMPTY
from repro.controller.state import Endpoint
from repro.exceptions import ControllerError

__all__ = ["SpanningTree", "TreeMember"]

_tree_ids = itertools.count(1)


@dataclass
class TreeMember:
    """A publisher or subscriber registered on a tree, with its overlap."""

    endpoint: Endpoint
    overlap: DzSet = EMPTY

    def widen(self, extra: DzSet) -> None:
        self.overlap = self.overlap.union(extra)

    def narrow(self, removed: DzSet) -> None:
        self.overlap = self.overlap.subtract(removed)


@dataclass
class SpanningTree:
    """One dissemination tree over the partition's switch graph."""

    root: str
    parents: dict[str, str]
    dz_set: DzSet
    tree_id: int = field(default_factory=lambda: next(_tree_ids))
    publishers: dict[int, TreeMember] = field(default_factory=dict)
    subscribers: dict[int, TreeMember] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        """Check the parent map is a tree rooted at ``root``."""
        for node in self.parents:
            seen = {node}
            cursor = node
            while cursor != self.root:
                cursor = self.parents.get(cursor)
                if cursor is None:
                    raise ControllerError(
                        f"tree {self.tree_id}: node {node!r} not connected "
                        f"to root {self.root!r}"
                    )
                if cursor in seen:
                    raise ControllerError(
                        f"tree {self.tree_id}: cycle through {cursor!r}"
                    )
                seen.add(cursor)

    def replace_structure(self, parents: dict[str, str]) -> None:
        """Swap in a new parent map (tree repair after a failure)."""
        old = self.parents
        self.parents = parents
        try:
            self._validate()
        except ControllerError:
            self.parents = old
            raise

    def uses_edge(self, a: str, b: str) -> bool:
        """True iff the tree routes over the undirected edge (a, b)."""
        return any(
            {child, parent} == {a, b}
            for child, parent in self.parents.items()
        )

    # ------------------------------------------------------------------
    @property
    def switches(self) -> set[str]:
        return {self.root, *self.parents.keys()}

    def path_to_root(self, switch: str) -> list[str]:
        """Switches from ``switch`` up to and including the root."""
        if switch != self.root and switch not in self.parents:
            raise ControllerError(
                f"switch {switch!r} not spanned by tree {self.tree_id}"
            )
        path = [switch]
        while path[-1] != self.root:
            path.append(self.parents[path[-1]])
        return path

    def path_between(self, a: str, b: str) -> list[str]:
        """The unique tree path between two switches (inclusive).

        Computed via the lowest common ancestor of the two root paths.
        """
        up_a = self.path_to_root(a)
        up_b = self.path_to_root(b)
        on_b = {node: i for i, node in enumerate(up_b)}
        for i, node in enumerate(up_a):
            if node in on_b:
                return up_a[: i + 1] + up_b[: on_b[node]][::-1]
        raise ControllerError(
            f"tree {self.tree_id}: no common ancestor of {a!r} and {b!r}"
        )

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def join_publisher(self, adv_id: int, endpoint: Endpoint, overlap: DzSet) -> None:
        member = self.publishers.get(adv_id)
        if member is None:
            self.publishers[adv_id] = TreeMember(endpoint, overlap)
        else:
            member.widen(overlap)

    def join_subscriber(self, sub_id: int, endpoint: Endpoint, overlap: DzSet) -> None:
        member = self.subscribers.get(sub_id)
        if member is None:
            self.subscribers[sub_id] = TreeMember(endpoint, overlap)
        else:
            member.widen(overlap)

    def leave_publisher(self, adv_id: int) -> None:
        self.publishers.pop(adv_id, None)

    def leave_subscriber(self, sub_id: int) -> None:
        self.subscribers.pop(sub_id, None)

    def __repr__(self) -> str:
        return (
            f"SpanningTree(id={self.tree_id}, root={self.root!r}, "
            f"DZ={self.dz_set}, pubs={len(self.publishers)}, "
            f"subs={len(self.subscribers)})"
        )
