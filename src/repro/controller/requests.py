"""Client control requests: what hosts send to ``IP_pub/sub``.

Publishers and subscribers are unaware of the SDN control network (Sec. 2);
they address these request objects to the reserved multicast address
``IP_pub/sub``, which no switch installs flows for, so the access switch
diverts them to the controller.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.subscription import Advertisement, Subscription

__all__ = [
    "AdvertiseRequest",
    "SubscribeRequest",
    "UnadvertiseRequest",
    "UnsubscribeRequest",
]


@dataclass(frozen=True)
class AdvertiseRequest:
    host: str
    advertisement: Advertisement


@dataclass(frozen=True)
class SubscribeRequest:
    host: str
    subscription: Subscription


@dataclass(frozen=True)
class UnadvertiseRequest:
    host: str
    adv_id: int


@dataclass(frozen=True)
class UnsubscribeRequest:
    host: str
    sub_id: int
