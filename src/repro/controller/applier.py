"""Table appliers: how the controller's decisions reach the switches.

The control algorithms compute flow changes; an *applier* carries them out.
Two implementations:

* :class:`DirectApplier` — reads and writes the physical tables
  synchronously.  The default: fastest, and sufficient whenever the
  experiment models control latency analytically (flow-mod count x RTT).
* :class:`ChannelApplier` — SDN-realistic.  The controller keeps a *shadow
  table* per switch (its authoritative view, diffs are computed against
  it) and ships every change as an OpenFlow ``FlowMod`` over the
  :class:`~repro.network.control_channel.ControlChannel`; the physical
  TCAM converges after the channel latency.  Events published before
  convergence can race the installation — exactly the transient a real
  deployment exhibits.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Protocol

from repro.core.addressing import MulticastPrefix
from repro.network.control_channel import ControlChannel
from repro.network.fabric import Network
from repro.network.flow import FlowEntry, FlowTable
from repro.network.openflow import FlowMod, FlowModCommand

__all__ = ["TableApplier", "DirectApplier", "ChannelApplier"]


class TableApplier(Protocol):
    """The controller's read/write interface to switch flow state."""

    def table(self, switch: str) -> FlowTable:
        """The controller's authoritative view of a switch's table."""

    def install(self, switch: str, entry: FlowEntry) -> None:
        """Add or replace one flow entry."""

    def remove(self, switch: str, match: MulticastPrefix) -> None:
        """Delete one flow entry."""


class DirectApplier:
    """Synchronous applier: the physical table *is* the view."""

    def __init__(self, network: Network) -> None:
        self._network = network

    def table(self, switch: str) -> FlowTable:
        return self._network.switches[switch].table

    def install(self, switch: str, entry: FlowEntry) -> None:
        self.table(switch).install(entry)

    def remove(self, switch: str, match: MulticastPrefix) -> None:
        self.table(switch).remove(match)


class _MirroringTable(FlowTable):
    """A shadow table that emits a FlowMod for every mutation.

    The incremental installer (Algorithm 1's cases) mutates a table
    in-place; giving it this subclass routes those mutations through the
    channel transparently.
    """

    def __init__(
        self,
        capacity: int,
        sink: Callable[[str, FlowMod], None],
        switch_name: str,
    ) -> None:
        super().__init__(capacity=capacity)
        self._sink = sink
        self._switch_name = switch_name

    def install(self, entry: FlowEntry) -> None:
        replacing = self.get(entry.match) is not None
        super().install(entry)
        self._sink(
            self._switch_name,
            FlowMod(
                command=(
                    FlowModCommand.MODIFY if replacing else FlowModCommand.ADD
                ),
                entry=entry,
            ),
        )

    def remove(self, match: MulticastPrefix) -> FlowEntry:
        entry = super().remove(match)
        self._sink(
            self._switch_name,
            FlowMod(command=FlowModCommand.DELETE, match=match),
        )
        return entry


class ChannelApplier:
    """Shadow-table applier shipping FlowMods over a control channel."""

    def __init__(self, network: Network, channel: ControlChannel) -> None:
        self._network = network
        self._channel = channel
        self._shadows: dict[str, _MirroringTable] = {}

    def table(self, switch: str) -> FlowTable:
        shadow = self._shadows.get(switch)
        if shadow is None:
            capacity = self._network.switches[switch].table.capacity
            shadow = _MirroringTable(capacity, self._channel.send, switch)
            self._shadows[switch] = shadow
        return shadow

    def install(self, switch: str, entry: FlowEntry) -> None:
        self.table(switch).install(entry)

    def remove(self, switch: str, match: MulticastPrefix) -> None:
        self.table(switch).remove(match)
