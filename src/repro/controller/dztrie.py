"""A dz-trie: per-switch contribution store with incremental queries.

The declarative reconciler (:mod:`repro.controller.reconciler`) defines the
desired flow table of a switch as a pure function of its contributions, but
recomputing it from scratch costs O(C^2) per request.  This trie stores the
same contributions keyed by dz bits and answers the two queries the
controller needs in output-sensitive time:

* ``cumulative(dz)`` / ``desired_entry(dz)`` — walk the ancestor path,
  O(|dz|);
* ``descendants(dz)`` — walk only the existing subtree.

When a contribution at ``dz`` changes, the set of dz whose desired entry
may change is exactly ``{dz} ∪ descendants(dz)`` (coarser entries never
depend on finer contributions), so the controller patches switch tables by
re-evaluating only that closure.  A property-based test pins this
incremental maintenance to the from-scratch reconciler.

Action multiplicity is reference-counted: several paths may contribute the
same ``(dz, action)`` pair, and the pair disappears only when the last
holder leaves — the bookkeeping behind "flows are deleted or downgraded
depending upon other subscribers reachable via a particular switch"
(Sec. 3.3.3).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.dz import Dz
from repro.network.flow import Action

__all__ = ["DzTrie"]


class _Node:
    __slots__ = ("children", "counts")

    def __init__(self) -> None:
        self.children: dict[str, _Node] = {}
        self.counts: dict[Action, int] = {}


class DzTrie:
    """Reference-counted contributions over the dz binary trie."""

    def __init__(self) -> None:
        self._root = _Node()
        self._size = 0  # number of distinct (dz, action) pairs

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------
    def _walk(self, bits: str, create: bool = False) -> _Node | None:
        node = self._root
        for bit in bits:
            child = node.children.get(bit)
            if child is None:
                if not create:
                    return None
                child = _Node()
                node.children[bit] = child
            node = child
        return node

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, dz: Dz, action: Action) -> bool:
        """Add one holder of ``(dz, action)``; True if the pair is new."""
        node = self._walk(dz.bits, create=True)
        assert node is not None
        node.counts[action] = node.counts.get(action, 0) + 1
        if node.counts[action] == 1:
            self._size += 1
            return True
        return False

    def remove(self, dz: Dz, action: Action) -> bool:
        """Drop one holder; True if the pair disappeared entirely."""
        node = self._walk(dz.bits)
        if node is None or action not in node.counts:
            return False
        node.counts[action] -= 1
        if node.counts[action] == 0:
            del node.counts[action]
            self._size -= 1
            return True
        return False

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def actions_at(self, dz: Dz) -> frozenset[Action]:
        node = self._walk(dz.bits)
        return frozenset(node.counts) if node is not None else frozenset()

    def cumulative(self, dz: Dz) -> frozenset[Action]:
        """Union of actions contributed at ``dz`` or any coarser dz."""
        actions: set[Action] = set(self._root.counts)
        node = self._root
        for bit in dz.bits:
            node = node.children.get(bit)
            if node is None:
                break
            actions |= node.counts.keys()
        return frozenset(actions)

    def desired_entry(self, dz: Dz) -> frozenset[Action] | None:
        """The desired flow actions at ``dz`` — None if no flow belongs
        there (nothing contributed, or fully implied by coarser flows).

        Matches :func:`repro.controller.reconciler.desired_flows` exactly.
        """
        parent_cumulative: set[Action] = set()
        node: _Node | None = self._root
        for bit in dz.bits:
            parent_cumulative |= node.counts.keys()
            node = node.children.get(bit)
            if node is None:
                return None  # dz holds no contributions
        if not node.counts:
            return None
        cumulative = parent_cumulative | node.counts.keys()
        # A non-empty parent cumulative means some strictly coarser dz is
        # contributed; if it already implies everything here, no flow is
        # needed at dz (reconciler's redundancy rule).
        if parent_cumulative and cumulative == parent_cumulative:
            return None
        return frozenset(cumulative)

    def descendants(self, dz: Dz) -> Iterator[Dz]:
        """All strictly finer dz holding contributions."""
        start = self._walk(dz.bits)
        if start is None:
            return
        stack = [
            (dz.bits + bit, child) for bit, child in start.children.items()
        ]
        while stack:
            bits, node = stack.pop()
            if node.counts:
                yield Dz(bits)
            stack.extend(
                (bits + bit, child) for bit, child in node.children.items()
            )

    def items(self) -> Iterator[tuple[Dz, frozenset[Action]]]:
        """All contributed dz with their aggregated action sets."""
        stack = [("", self._root)]
        while stack:
            bits, node = stack.pop()
            if node.counts:
                yield Dz(bits), frozenset(node.counts)
            stack.extend(
                (bits + bit, child) for bit, child in node.children.items()
            )

    def contributions(self) -> dict[Dz, frozenset[Action]]:
        return dict(self.items())
