"""Controller-side state: endpoints and the flow-contribution ledger.

**Endpoints** unify the two kinds of producers/consumers a controller sees:
real end hosts attached to a switch port, and *virtual hosts* — border
switch ports standing in for everything reachable in a neighbouring
partition (Sec. 4.2: "the external request is perceived by a controller as
arriving from the virtual host connected to its border switch").  A real
endpoint has a host address, so terminal flows rewrite the destination; a
virtual endpoint has none — packets leave through the border port still
carrying their dz multicast address, to be matched by the next partition.

**The ledger** records, per switch, which ``(dz, action)`` pairs are needed
and *why* (which publisher/subscriber/tree path contributed them).  It is
the bookkeeping that makes the paper's unsubscription behaviour (Sec. 3.3.3
— "flows are either deleted or downgraded depending upon other subscribers
reachable via a particular switch") a pure function of recorded state: drop
the departing path's contributions and recompute each affected switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping

from repro.controller.dztrie import DzTrie
from repro.core.dz import Dz
from repro.exceptions import ControllerError
from repro.network.flow import Action

__all__ = ["Endpoint", "PathKey", "FlowLedger"]


@dataclass(frozen=True)
class Endpoint:
    """A producer/consumer attachment point as the controller sees it.

    ``address`` is the host's unicast address for real hosts and ``None``
    for virtual hosts (border gateways).
    """

    name: str
    switch: str
    port: int
    address: int | None = None

    @property
    def is_virtual(self) -> bool:
        return self.address is None

    def terminal_action(self) -> Action:
        """The action installed on this endpoint's attachment switch."""
        return Action(self.port, set_dest=self.address)


@dataclass(frozen=True)
class PathKey:
    """Identity of one installed path: (tree, publisher, subscriber, dz)."""

    tree_id: int
    adv_id: int
    sub_id: int
    dz: Dz


class FlowLedger:
    """Per-switch multiset of flow contributions with provenance.

    A *contribution* is a ``(dz, action)`` pair a path needs on a switch.
    The desired flow table of a switch is a pure function of its
    contributions (see :mod:`repro.controller.reconciler`).
    """

    def __init__(self) -> None:
        # switch -> dz-trie of reference-counted (dz, action) contributions
        self._tries: dict[str, DzTrie] = {}
        # reverse index: key -> list of (switch, dz, action)
        self._by_key: dict[PathKey, list[tuple[str, Dz, Action]]] = {}

    # ------------------------------------------------------------------
    def add(self, switch: str, dz: Dz, action: Action, key: PathKey) -> bool:
        """Record that ``key``'s path needs ``(dz, action)`` on ``switch``.

        Returns True if the pair is new on that switch (the flow table may
        need an update); False if some other path already holds it.
        """
        trie = self._tries.setdefault(switch, DzTrie())
        changed = trie.add(dz, action)
        self._by_key.setdefault(key, []).append((switch, dz, action))
        return changed

    def remove_key(self, key: PathKey) -> dict[str, set[Dz]]:
        """Drop every contribution of one path.

        Returns, per switch, the dz whose aggregated action set changed
        (pairs that disappeared because their last holder left).
        """
        entries = self._by_key.pop(key, [])
        changed: dict[str, set[Dz]] = {}
        for switch, dz, action in entries:
            trie = self._tries.get(switch)
            if trie is not None and trie.remove(dz, action):
                changed.setdefault(switch, set()).add(dz)
        return changed

    def remove_keys_where(
        self,
        tree_id: int | None = None,
        adv_id: int | None = None,
        sub_id: int | None = None,
    ) -> dict[str, set[Dz]]:
        """Drop all paths matching the given identity components."""
        if tree_id is None and adv_id is None and sub_id is None:
            raise ControllerError("refusing to drop the entire ledger")
        doomed = [
            key
            for key in self._by_key
            if (tree_id is None or key.tree_id == tree_id)
            and (adv_id is None or key.adv_id == adv_id)
            and (sub_id is None or key.sub_id == sub_id)
        ]
        changed: dict[str, set[Dz]] = {}
        for key in doomed:
            for switch, dzs in self.remove_key(key).items():
                changed.setdefault(switch, set()).update(dzs)
        return changed

    # ------------------------------------------------------------------
    def trie(self, switch: str) -> DzTrie:
        """The switch's contribution trie (empty if nothing installed)."""
        return self._tries.setdefault(switch, DzTrie())

    def contributions(self, switch: str) -> Mapping[Dz, frozenset[Action]]:
        """Aggregated contributions of one switch: dz -> action set."""
        trie = self._tries.get(switch)
        return trie.contributions() if trie is not None else {}

    def switches(self) -> Iterable[str]:
        return [name for name, trie in self._tries.items() if len(trie)]

    def keys_for(
        self,
        tree_id: int | None = None,
        adv_id: int | None = None,
        sub_id: int | None = None,
    ) -> list[PathKey]:
        return [
            key
            for key in self._by_key
            if (tree_id is None or key.tree_id == tree_id)
            and (adv_id is None or key.adv_id == adv_id)
            and (sub_id is None or key.sub_id == sub_id)
        ]

    def has_path(self, key: PathKey) -> bool:
        return key in self._by_key

    def __len__(self) -> int:
        return len(self._by_key)
