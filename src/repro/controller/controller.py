"""The PLEROMA controller: publish/subscribe maintenance (Algorithm 1).

One controller manages one network partition.  It reacts to advertisement,
subscription, unadvertisement and unsubscription requests by maintaining a
set of disjoint spanning trees (Sec. 3.2) and the flow tables of its
switches (Sec. 3.3):

* an advertisement joins every tree its DZ overlaps and spawns a new
  shortest-path tree (rooted at the publisher's access switch) for the
  uncovered remainder;
* a subscription joins every overlapping tree; on each, paths are installed
  from every publisher with overlapping ``DZ^t(p)`` to the subscriber, with
  flows matching exactly the overlap so false positives are avoided;
* a subscription overlapping no tree is stored and re-checked whenever a
  tree is created or its DZ changes;
* an unsubscription removes the subscriber's paths, deleting or downgrading
  flows depending on the other subscribers still reachable;
* trees are merged when their number exceeds a threshold.

Requests are processed one at a time ("in a sequence to avoid inconsistent
updates", Sec. 2).  Each request's cost is recorded as a
:class:`RequestStats`: the controller's own computation time (measured) plus
one control-channel round trip per flow-mod message — the quantities behind
the reconfiguration-delay experiment (Fig. 7f).

Two installation strategies are provided: ``reconcile`` (default) computes
each affected switch's desired table from the contribution ledger and diffs
it against the installed table; ``incremental`` applies the paper's literal
cases 1–5 per new flow.  Both produce the same forwarding behaviour (a
property-based test asserts this); reconcile additionally keeps tables
minimal, which is what the cases aim at.
"""

from __future__ import annotations

import enum
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Iterator
from typing import Literal

from repro.controller.applier import ChannelApplier, DirectApplier
from repro.controller.flow_installer import flow_addition
from repro.controller.reconciler import desired_flows, diff_table
from repro.controller.state import Endpoint, FlowLedger, PathKey
from repro.controller.tree import SpanningTree
from repro.controller.tree_manager import TreeManager
from repro.core.dz import Dz
from repro.core.dzset import DzSet, EMPTY
from repro.core.spatial_index import SpatialIndexer
from repro.core.subscription import Advertisement, Subscription
from repro.exceptions import ControllerError
from repro.network.control_channel import ControlChannel
from repro.network.fabric import Network
from repro.network.flow import Action, FlowEntry, FlowTable
from repro.network.openflow import PacketIn
from repro.network.packet import Packet
from repro.network.switch import Switch
from repro.obs.context import Observability

__all__ = [
    "PleromaController",
    "RequestStats",
    "RerouteOutcome",
    "summarize_requests",
    "AdvertisementState",
    "SubscriptionState",
    "DEFAULT_FLOW_MOD_LATENCY_S",
]

#: One flow-mod round trip on the control channel (OpenFlow barrier-style);
#: 0.35 ms matches commodity software-switch control planes.
DEFAULT_FLOW_MOD_LATENCY_S = 350e-6

InstallMode = Literal["reconcile", "incremental"]


class RerouteOutcome(enum.Enum):
    """Why :meth:`PleromaController.reroute_tree_around_edge` did (not) act.

    A bare ``False`` used to conflate "this tree never touched the edge"
    with "the edge is a bridge, there is no spanning structure without it"
    — but a caller reacting to a *failure* must distinguish them: the
    first needs nothing, the second needs the degraded-tree fallback
    (:mod:`repro.resilience.repair`).  Truthiness is preserved so existing
    boolean callers (:class:`repro.controller.overload.OverloadManager`)
    keep working unchanged.
    """

    REROUTED = "rerouted"
    TREE_NOT_ON_EDGE = "tree-not-on-edge"
    EDGE_IS_BRIDGE = "edge-is-bridge"

    def __bool__(self) -> bool:
        return self is RerouteOutcome.REROUTED


@dataclass(frozen=True)
class RequestStats:
    """Cost accounting for a single control request."""

    kind: str
    flow_mods: int
    compute_seconds: float
    flow_mod_latency_s: float
    trees_created: int = 0
    trees_merged: int = 0

    @property
    def reconfiguration_delay_s(self) -> float:
        """Modeled time until the request is fully deployed: controller
        computation plus serial flow-mod round trips."""
        return self.compute_seconds + self.flow_mods * self.flow_mod_latency_s


def summarize_requests(log: list["RequestStats"], kind: str | None = None) -> dict:
    """Aggregate a controller's request log (optionally one request kind).

    Returns count, mean/max reconfiguration delay, total flow mods, and the
    sustainable request rate — the quantities Fig. 7(f) reports.
    """
    entries = [s for s in log if kind is None or s.kind == kind]
    if not entries:
        raise ControllerError(
            f"no requests of kind {kind!r} recorded" if kind else "empty log"
        )
    delays = [s.reconfiguration_delay_s for s in entries]
    mean_delay = sum(delays) / len(delays)
    return {
        "count": len(entries),
        "mean_delay_s": mean_delay,
        "max_delay_s": max(delays),
        "total_flow_mods": sum(s.flow_mods for s in entries),
        "requests_per_second": 1.0 / mean_delay if mean_delay > 0 else float("inf"),
    }


@dataclass
class AdvertisementState:
    adv_id: int
    advertisement: Advertisement | None
    endpoint: Endpoint
    dz_set: DzSet


@dataclass
class SubscriptionState:
    sub_id: int
    subscription: Subscription | None
    endpoint: Endpoint
    dz_set: DzSet


class PleromaController:
    """The middleware instance controlling one partition."""

    def __init__(
        self,
        network: Network,
        indexer: SpatialIndexer,
        partition: Iterable[str] | None = None,
        name: str = "c1",
        merge_threshold: int = 16,
        install_mode: InstallMode = "reconcile",
        flow_mod_latency_s: float = DEFAULT_FLOW_MOD_LATENCY_S,
        control_channel: ControlChannel | None = None,
        tree_builder: str | None = None,
        auto_coarsen: bool = False,
        occupancy_threshold: float = 0.9,
        min_dz_length: int = 4,
        obs: Observability | None = None,
        verify_after_each_request: bool = False,
    ) -> None:
        if install_mode not in ("reconcile", "incremental"):
            raise ControllerError(f"unknown install mode {install_mode!r}")
        self.network = network
        self.topology = network.topology
        self.indexer = indexer
        self.name = name
        self.partition = (
            set(partition)
            if partition is not None
            else set(self.topology.switches())
        )
        self.install_mode: InstallMode = install_mode
        self.flow_mod_latency_s = flow_mod_latency_s
        self.control_channel = control_channel
        self._applier = (
            ChannelApplier(network, control_channel)
            if control_channel is not None
            else DirectApplier(network)
        )
        # Requirement 3 (Sec. 1): TCAM capacity is bounded.  With
        # auto_coarsen the controller reacts to tables filling up by
        # re-indexing the partition at a shorter dz length — coarser
        # subspaces aggregate into fewer flows, trading false positives
        # for headroom.
        if not 0.0 < occupancy_threshold <= 1.0:
            raise ControllerError("occupancy threshold must be in (0, 1]")
        if min_dz_length < 1:
            raise ControllerError("min dz length must be >= 1")
        self.auto_coarsen = auto_coarsen
        self.occupancy_threshold = occupancy_threshold
        self.min_dz_length = min_dz_length
        # Debug hook: statically verify the whole installed flow state
        # after every successful request (see repro.analysis.verify).
        # Expensive — meant for tests and the `check` CLI, not production.
        self.verify_after_each_request = verify_after_each_request
        self._request_depth = 0
        self.coarsen_events: list[tuple[int, int]] = []  # (old, new) lengths
        self._reindexing = False
        self.reindex_listeners: list[Callable[[SpatialIndexer], None]] = []
        from repro.controller.tree_builders import (
            builder_by_name,
            shortest_path_tree,
        )

        self.trees = TreeManager(
            self.topology,
            self.partition,
            merge_threshold=merge_threshold,
            tree_builder=(
                builder_by_name(tree_builder)
                if tree_builder is not None
                else shortest_path_tree
            ),
        )
        self.ledger = FlowLedger()
        self.advertisements: dict[int, AdvertisementState] = {}
        self.subscriptions: dict[int, SubscriptionState] = {}
        self._virtual_endpoints: dict[str, Endpoint] = {}
        # hooks used by the federation layer (Sec. 4)
        self.adv_listeners: list[Callable[[AdvertisementState], None]] = []
        self.sub_listeners: list[Callable[[SubscriptionState], None]] = []
        # observability: deployments share one bundle; a standalone
        # controller reports into the fabric's registry so its counters
        # land in the same snapshot as the device counters.
        self.obs = (
            obs if obs is not None
            else Observability(network.sim, registry=network.registry)
        )
        # statistics
        self.total_flow_mods = 0
        self.flow_mods_by_switch: dict[str, int] = {}
        self.requests_processed = 0
        self.request_log: list[RequestStats] = []
        self._c_flow_mods = self.obs.registry.counter(
            "controller.flow_mods", controller=name
        )
        self._attach_to_switches()

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def _attach_to_switches(self) -> None:
        if self.control_channel is not None:
            # SDN-realistic path: packet-ins arrive over the channel with
            # its latency, and flow mods travel back the same way.
            for name in sorted(self.partition):
                self.control_channel.connect(
                    self.network.switches[name], self._on_packet_in
                )
            return
        for name in self.partition:
            self.network.switches[name].set_control_handler(
                self.handle_control_packet
            )

    def _on_packet_in(self, message: PacketIn) -> None:
        self.handle_control_packet(
            self.network.switches[message.switch],
            message.packet,
            message.in_port,
        )

    def handle_control_packet(
        self, switch: Switch, packet: Packet, in_port: int
    ) -> None:
        """Dispatch a diverted ``IP_pub/sub`` packet (client requests)."""
        from repro.controller.requests import (
            AdvertiseRequest,
            SubscribeRequest,
            UnadvertiseRequest,
            UnsubscribeRequest,
        )

        request = packet.payload
        if isinstance(request, AdvertiseRequest):
            self.advertise(request.host, request.advertisement)
        elif isinstance(request, SubscribeRequest):
            self.subscribe(request.host, request.subscription)
        elif isinstance(request, UnsubscribeRequest):
            self.unsubscribe(request.sub_id)
        elif isinstance(request, UnadvertiseRequest):
            self.unadvertise(request.adv_id)
        # unknown payloads (e.g. federation messages) are handled by the
        # federation layer, which wraps this handler.

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def endpoint_for_host(self, host_name: str) -> Endpoint:
        """The endpoint of a real end host in this partition."""
        if host_name in self._virtual_endpoints:
            return self._virtual_endpoints[host_name]
        host = self.network.hosts.get(host_name)
        if host is None:
            raise ControllerError(f"unknown host {host_name!r}")
        switch = self.topology.access_switch(host_name)
        if switch not in self.partition:
            raise ControllerError(
                f"host {host_name!r} attaches to {switch!r}, outside "
                f"partition of controller {self.name!r}"
            )
        return Endpoint(
            name=host_name,
            switch=switch,
            port=self.network.port(switch, host_name),
            address=host.address,
        )

    def register_virtual_endpoint(
        self, name: str, switch: str, port: int
    ) -> Endpoint:
        """Register a border-switch port as a virtual host (Sec. 4.2)."""
        if switch not in self.partition:
            raise ControllerError(
                f"virtual endpoint switch {switch!r} outside partition"
            )
        endpoint = Endpoint(name=name, switch=switch, port=port, address=None)
        self._virtual_endpoints[name] = endpoint
        return endpoint

    # ------------------------------------------------------------------
    # public control operations
    # ------------------------------------------------------------------
    def advertise(
        self,
        host: str,
        advertisement: Advertisement | None = None,
        dz_set: DzSet | None = None,
        adv_id: int | None = None,
        _notify: bool = True,
    ) -> AdvertisementState:
        """Process an advertisement (Algorithm 1, Receive(ADV)).

        Either a content ``advertisement`` (converted through the spatial
        indexer) or an explicit ``dz_set`` (used for external requests
        arriving from neighbouring partitions) must be given.
        """
        with self._request("advertise"):
            if dz_set is None:
                if advertisement is None:
                    raise ControllerError(
                        "advertise needs a filter or a DZ set"
                    )
                dz_set = self.indexer.filter_to_dzset(advertisement.filter)
            if adv_id is None:
                adv_id = (
                    advertisement.adv_id
                    if advertisement is not None
                    else _fresh_id()
                )
            if adv_id in self.advertisements:
                raise ControllerError(f"advertisement {adv_id} already active")
            endpoint = self.endpoint_for_host(host)
            state = AdvertisementState(adv_id, advertisement, endpoint, dz_set)
            self.advertisements[adv_id] = state

            for dz_i in dz_set:
                covered = EMPTY
                for tree in self.trees.overlapping(dz_i):
                    overlap = tree.dz_set.intersect_dz(dz_i)
                    tree.join_publisher(adv_id, endpoint, overlap)
                    self._add_flow_mult_sub(tree, state, overlap)
                    covered = covered.union(overlap)
                uncovered = DzSet.of(dz_i).subtract(covered)
                if not uncovered.is_empty:
                    tree = self.trees.create_tree(endpoint.switch, uncovered)
                    tree.join_publisher(adv_id, endpoint, uncovered)
                    self._add_flow_mult_sub(tree, state, uncovered)
            while self.trees.merges_needed():
                self._merge_once()

        self._check_occupancy()
        if _notify:
            for listener in self.adv_listeners:
                listener(state)
        return state

    def subscribe(
        self,
        host: str,
        subscription: Subscription | None = None,
        dz_set: DzSet | None = None,
        sub_id: int | None = None,
        _notify: bool = True,
    ) -> SubscriptionState:
        """Process a subscription (Algorithm 1, Receive(SUB))."""
        with self._request("subscribe"):
            if dz_set is None:
                if subscription is None:
                    raise ControllerError(
                        "subscribe needs a filter or a DZ set"
                    )
                dz_set = self.indexer.filter_to_dzset(subscription.filter)
            if sub_id is None:
                sub_id = (
                    subscription.sub_id
                    if subscription is not None
                    else _fresh_id()
                )
            if sub_id in self.subscriptions:
                raise ControllerError(f"subscription {sub_id} already active")
            endpoint = self.endpoint_for_host(host)
            state = SubscriptionState(sub_id, subscription, endpoint, dz_set)
            self.subscriptions[sub_id] = state

            for dz_i in dz_set:
                for tree in self.trees.overlapping(dz_i):
                    overlap = tree.dz_set.intersect_dz(dz_i)
                    tree.join_subscriber(sub_id, endpoint, overlap)
                    for adv_id, member in tree.publishers.items():
                        pub_overlap = member.overlap.intersect_dz(dz_i)
                        if pub_overlap.is_empty:
                            continue
                        self._install_path(
                            tree,
                            self.advertisements[adv_id],
                            state,
                            pub_overlap.intersect(overlap),
                        )
            # With no overlapping tree the subscription is "simply stored";
            # it stays in self.subscriptions and is re-checked via
            # _add_flow_mult_sub whenever trees change.

        self._check_occupancy()
        if _notify:
            for listener in self.sub_listeners:
                listener(state)
        return state

    def unsubscribe(self, sub_id: int) -> None:
        """Remove a subscription; delete or downgrade its flows (Sec. 3.3.3)."""
        with self._request("unsubscribe"):
            if sub_id not in self.subscriptions:
                raise ControllerError(f"unknown subscription {sub_id}")
            del self.subscriptions[sub_id]
            changed = self.ledger.remove_keys_where(sub_id=sub_id)
            for tree in self.trees:
                tree.leave_subscriber(sub_id)
            self._withdraw(changed)

    def unadvertise(self, adv_id: int) -> None:
        """Remove an advertisement and retire trees left publisher-less."""
        with self._request("unadvertise"):
            if adv_id not in self.advertisements:
                raise ControllerError(f"unknown advertisement {adv_id}")
            del self.advertisements[adv_id]
            changed = self.ledger.remove_keys_where(adv_id=adv_id)
            for tree in list(self.trees):
                tree.leave_publisher(adv_id)
                if not tree.publishers:
                    self.trees.retire_tree(tree.tree_id)
            self._withdraw(changed)

    # ------------------------------------------------------------------
    # failure handling (beyond the paper: its future work asks for
    # "mechanisms to detect and react" to dynamic network conditions)
    # ------------------------------------------------------------------
    def handle_link_failure(self, a: str, b: str) -> None:
        """Repair after a switch-to-switch link inside the partition dies.

        Every tree routed over the failed edge is rebuilt over the
        surviving graph (same root, same DZ, same members) and its paths
        re-installed; unaffected trees keep their flows untouched.  Raises
        if the partition is disconnected — there is then no spanning tree
        to repair to.
        """
        with self._request("link_failure"):
            if a not in self.partition or b not in self.partition:
                raise ControllerError(
                    f"link {a!r}<->{b!r} is not internal to partition "
                    f"{self.name!r}"
                )
            if frozenset((a, b)) in {
                frozenset((s.a, s.b)) for s in self.topology.links()
            }:
                self.topology.remove_link(a, b)
            self._rebuild_trees(
                [t for t in self.trees if t.uses_edge(a, b)]
            )

    def handle_switch_failure(self, name: str) -> None:
        """Repair after a whole switch inside the partition dies.

        Clients attached to the dead switch are withdrawn (their hosts are
        unreachable); every tree is rebuilt over the surviving switches.
        """
        with self._request("switch_failure"):
            if name not in self.partition:
                raise ControllerError(
                    f"switch {name!r} is not in partition {self.name!r}"
                )
            for sub in [
                s for s in self.subscriptions.values()
                if s.endpoint.switch == name
            ]:
                self.unsubscribe(sub.sub_id)
            for adv in [
                a_ for a_ in self.advertisements.values()
                if a_.endpoint.switch == name
            ]:
                self.unadvertise(adv.adv_id)
            for neighbor in list(self.topology.neighbors(name)):
                if self.topology.is_switch(neighbor):
                    self.topology.remove_link(name, neighbor)
            self.partition.discard(name)
            self.trees.partition.discard(name)
            self._rebuild_trees(list(self.trees))

    def reroute_tree_around_edge(
        self, tree_id: int, a: str, b: str
    ) -> RerouteOutcome:
        """Move one tree off a (hot or dead) edge, if an alternative exists.

        Returns a :class:`RerouteOutcome` (truthy exactly when the tree was
        re-deployed on a structure avoiding the edge): ``TREE_NOT_ON_EDGE``
        when the tree never routed over it, ``EDGE_IS_BRIDGE`` when the
        partition offers no spanning structure without the edge — the case
        where a failure-driven caller must fall back to degraded partial
        trees instead of leaving flows pointed at the dead edge.  This is
        the *reaction* half of overload handling (the paper's future work);
        detection lives in :class:`repro.controller.overload.OverloadManager`
        and, for failures, :class:`repro.resilience.detector.FailureDetector`.
        """
        import networkx as nx

        from repro.network.topology import _spt_tie_break

        tree = self.trees.get(tree_id)
        if not tree.uses_edge(a, b):
            return RerouteOutcome.TREE_NOT_ON_EDGE
        sg = self.topology.switch_graph(self.partition)
        if sg.has_edge(a, b):
            sg.remove_edge(a, b)
        dist = nx.single_source_shortest_path_length(sg, tree.root)
        if set(dist) != self.partition:
            return RerouteOutcome.EDGE_IS_BRIDGE  # no spanning tree without it
        parents: dict[str, str] = {}
        for node, d in dist.items():
            if node == tree.root:
                continue
            candidates = [
                nb for nb in sg.neighbors(node) if dist.get(nb) == d - 1
            ]
            parents[node] = min(
                candidates,
                key=lambda nb: _spt_tie_break(tree.root, node, nb),
            )
        with self._request("reroute"):
            changed = self.ledger.remove_keys_where(tree_id=tree.tree_id)
            tree.replace_structure(parents)
            self._withdraw(changed)
            for adv_id, member in list(tree.publishers.items()):
                adv = self.advertisements.get(adv_id)
                if adv is not None:
                    self._add_flow_mult_sub(tree, adv, member.overlap)
        return RerouteOutcome.REROUTED

    def _rebuild_trees(self, trees: list[SpanningTree]) -> None:
        """Recompute the structure of the given trees and re-deploy their
        paths; trees whose root died are re-rooted at a surviving member."""
        for tree in trees:
            changed = self.ledger.remove_keys_where(tree_id=tree.tree_id)
            root = tree.root
            if root not in self.partition:
                candidates = sorted(
                    m.endpoint.switch
                    for m in tree.publishers.values()
                    if m.endpoint.switch in self.partition
                ) or sorted(self.partition)
                root = candidates[0]
                tree.root = root
            parents = self.trees.tree_builder(
                self.topology, self.partition, root
            )
            if set(parents) | {root} != self.partition:
                raise ControllerError(
                    f"partition {self.name!r} is disconnected: cannot span "
                    f"{sorted(self.partition - set(parents) - {root})} "
                    f"from {root!r}"
                )
            tree.replace_structure(parents)
            self._withdraw(changed)
            for adv_id, member in list(tree.publishers.items()):
                adv = self.advertisements.get(adv_id)
                if adv is None:
                    tree.leave_publisher(adv_id)
                    continue
                self._add_flow_mult_sub(tree, adv, member.overlap)

    # ------------------------------------------------------------------
    # dimension selection support (Sec. 5)
    # ------------------------------------------------------------------
    def _check_occupancy(self) -> None:
        """React to flow tables filling up by coarsening the indexing."""
        if not self.auto_coarsen or self._reindexing:
            return
        worst = 0.0
        for name in self.partition:
            table = self._applier.table(name)
            worst = max(worst, len(table) / table.capacity)
        if worst < self.occupancy_threshold:
            return
        old_length = self.indexer.max_dz_length
        new_length = max(self.min_dz_length, old_length // 2)
        if new_length >= old_length:
            return  # already at the floor: nothing left to trade
        coarser = SpatialIndexer(
            self.indexer.space,
            max_dz_length=new_length,
            max_cells=self.indexer.max_cells,
        )
        self.coarsen_events.append((old_length, new_length))
        self.reindex(coarser)

    def reindex(self, indexer: SpatialIndexer) -> None:
        """Re-deploy the whole partition under a new spatial indexer.

        After dimension selection the controller "generates new DZ for
        existing subscriptions and advertisements [and] installs flows
        w.r.t. the newly created DZ".  Requests arriving from federation
        (with explicit DZ sets but no filter) cannot be re-indexed and are
        replayed verbatim.
        """
        self._reindexing = True
        adv_states = list(self.advertisements.values())
        sub_states = list(self.subscriptions.values())
        # withdraw everything
        changed: dict[str, set[Dz]] = {}
        for tree in list(self.trees):
            for switch, dzs in self.ledger.remove_keys_where(
                tree_id=tree.tree_id
            ).items():
                changed.setdefault(switch, set()).update(dzs)
            self.trees.retire_tree(tree.tree_id)
        self.advertisements.clear()
        self.subscriptions.clear()
        self._withdraw(changed)
        self.indexer = indexer
        # replay
        try:
            for adv in adv_states:
                dz_set = (
                    indexer.filter_to_dzset(adv.advertisement.filter)
                    if adv.advertisement is not None
                    else adv.dz_set
                )
                self.advertise(
                    adv.endpoint.name,
                    adv.advertisement,
                    dz_set=dz_set,
                    adv_id=adv.adv_id,
                    _notify=False,
                )
            for sub in sub_states:
                dz_set = (
                    indexer.filter_to_dzset(sub.subscription.filter)
                    if sub.subscription is not None
                    else sub.dz_set
                )
                self.subscribe(
                    sub.endpoint.name,
                    sub.subscription,
                    dz_set=dz_set,
                    sub_id=sub.sub_id,
                    _notify=False,
                )
        finally:
            self._reindexing = False
        for listener in self.reindex_listeners:
            listener(indexer)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _add_flow_mult_sub(
        self, tree: SpanningTree, adv: AdvertisementState, dz_region: DzSet
    ) -> None:
        """``addFlowMultSub``: connect a publisher's new region to every
        stored subscription matching it (Algorithm 1, lines 26–30)."""
        for sub in self.subscriptions.values():
            overlap = dz_region.intersect(sub.dz_set)
            if overlap.is_empty:
                continue
            tree.join_subscriber(sub.sub_id, sub.endpoint, overlap)
            self._install_path(tree, adv, sub, overlap)

    def _install_path(
        self,
        tree: SpanningTree,
        adv: AdvertisementState,
        sub: SubscriptionState,
        overlap: DzSet,
    ) -> None:
        """``flowAddition`` over a route: install flows so events matching
        ``overlap`` travel from the publisher to the subscriber on ``tree``."""
        if overlap.is_empty:
            return
        pub_ep, sub_ep = adv.endpoint, sub.endpoint
        if pub_ep.name == sub_ep.name:
            return  # same host or same border gateway: nothing to route
        route = tree.path_between(pub_ep.switch, sub_ep.switch)
        changed: dict[str, set[Dz]] = {}
        for dz in overlap:
            key = PathKey(tree.tree_id, adv.adv_id, sub.sub_id, dz)
            if self.ledger.has_path(key):
                continue
            for i, switch in enumerate(route):
                if i + 1 < len(route):
                    action = Action(
                        self.network.port(switch, route[i + 1])
                    )
                else:
                    action = sub_ep.terminal_action()
                pair_is_new = self.ledger.add(switch, dz, action, key)
                if self.install_mode == "incremental":
                    self._count_mods(
                        switch,
                        flow_addition(
                            self._applier.table(switch),
                            dz,
                            {action},
                            registry=self.obs.registry,
                        ),
                    )
                elif pair_is_new:
                    changed.setdefault(switch, set()).add(dz)
        if self.install_mode == "reconcile":
            self._patch(changed)

    def _patch(self, changed: dict[str, set[Dz]]) -> None:
        """Incrementally repair switch tables after contribution changes.

        A change at dz can only affect the desired entries of dz itself and
        its finer descendants (coarser entries never depend on finer
        contributions), so only that closure is re-evaluated — this is what
        keeps per-request cost output-sensitive at paper scale.
        """
        batch: dict[str, int] = {}
        for name, dzs in changed.items():
            table = self._applier.table(name)
            trie = self.ledger.trie(name)
            closure: set[Dz] = set()
            for dz in dzs:
                closure.add(dz)
                closure.update(trie.descendants(dz))
            for dz in closure:
                desired = trie.desired_entry(dz)
                current = table.get_dz(dz)
                if desired is None:
                    if current is not None:
                        self._applier.remove(name, current.match)
                        batch[name] = batch.get(name, 0) + 1
                elif (
                    current is None
                    or current.actions != desired
                    or current.priority != len(dz)
                ):
                    self._applier.install(name, FlowEntry.for_dz(dz, desired))
                    batch[name] = batch.get(name, 0) + 1
        self._record_batch("patch", batch)

    def _withdraw(self, changed: dict[str, set[Dz]]) -> None:
        """Repair tables after contribution removals.

        Reconcile mode patches the affected closure; incremental mode falls
        back to full per-switch reconciliation, because flow_addition-built
        tables may hold redundant entries the closure walk would miss.
        """
        if self.install_mode == "reconcile":
            self._patch(changed)
        else:
            self._reconcile(changed.keys())

    def _reconcile(self, switches: Iterable[str]) -> None:
        """Bring whole switch tables to their desired state (slow path:
        used for incremental-mode withdrawals and full re-indexing)."""
        batch: dict[str, int] = {}
        for name in sorted(set(switches)):
            desired = desired_flows(self.ledger.contributions(name))
            diff = diff_table(self._applier.table(name), desired)
            if diff.is_empty:
                continue
            for entry in diff.deletions:
                self._applier.remove(name, entry.match)
            for entry in diff.modifications:
                self._applier.install(name, entry)
            for entry in diff.additions:
                self._applier.install(name, entry)
            batch[name] = diff.total_mods
        self._record_batch("reconcile", batch)

    def _merge_once(self) -> None:
        """Merge the cheapest tree pair and re-deploy its paths."""
        t1, t2 = self.trees.pick_merge_pair()
        with self.obs.tracer.span(
            "tree_merge",
            "merge",
            controller=self.name,
            merged_tree_ids=[t1.tree_id, t2.tree_id],
        ) as span:
            changed = self.ledger.remove_keys_where(tree_id=t1.tree_id)
            for switch, dzs in self.ledger.remove_keys_where(
                tree_id=t2.tree_id
            ).items():
                changed.setdefault(switch, set()).update(dzs)
            merged = self.trees.merge(t1, t2)
            span.attributes["result_tree_id"] = merged.tree_id
            # Recompute membership against the (possibly coarsened) DZ:
            # stored subscriptions and advertisements may overlap the wider
            # region.
            merged.publishers.clear()
            merged.subscribers.clear()
            for adv in self.advertisements.values():
                overlap = adv.dz_set.intersect(merged.dz_set)
                if not overlap.is_empty:
                    merged.join_publisher(adv.adv_id, adv.endpoint, overlap)
            # Withdrawals always go through the ledger-derived desired
            # state: the incremental cases only describe additions.
            self._withdraw(changed)
            for adv_id, member in merged.publishers.items():
                self._add_flow_mult_sub(
                    merged, self.advertisements[adv_id], member.overlap
                )

    def _record_batch(self, name: str, batch: dict[str, int]) -> None:
        """Count one flow-mod batch and trace its per-switch breakdown."""
        if not batch:
            return
        for switch in sorted(batch):
            self._count_mods(switch, batch[switch])
        self.obs.tracer.event(
            "flow_mod_batch",
            name,
            controller=self.name,
            mods={switch: batch[switch] for switch in sorted(batch)},
        )

    def _count_mods(self, switch: str, n: int = 1) -> None:
        """Account flow-mod messages: total, per switch, and registry."""
        if n <= 0:
            return
        self.total_flow_mods += n
        self.flow_mods_by_switch[switch] = (
            self.flow_mods_by_switch.get(switch, 0) + n
        )
        self._c_flow_mods.inc(n)

    @contextmanager
    def _request(self, kind: str) -> Iterator[None]:
        """Scope of one control request: opens a trace span, and on success
        appends the :class:`RequestStats` entry (flow mods, tree churn,
        measured compute time).  A failing request leaves no stats — as
        before — but its span survives with ``outcome="error"``.
        """
        span = self.obs.tracer.begin("request", kind, controller=self.name)
        started = time.perf_counter()
        mods_before = self.total_flow_mods
        per_switch_before = dict(self.flow_mods_by_switch)
        created_before = self.trees.trees_created
        merged_before = self.trees.trees_merged
        self._request_depth += 1
        try:
            yield
        except BaseException:
            self.obs.tracer.finish(span, outcome="error")
            raise
        finally:
            self._request_depth -= 1
        flow_mods = self.total_flow_mods - mods_before
        per_switch = {
            name: count - per_switch_before.get(name, 0)
            for name, count in sorted(self.flow_mods_by_switch.items())
            if count - per_switch_before.get(name, 0)
        }
        stats = RequestStats(
            kind=kind,
            flow_mods=flow_mods,
            compute_seconds=time.perf_counter() - started,
            flow_mod_latency_s=self.flow_mod_latency_s,
            trees_created=self.trees.trees_created - created_before,
            trees_merged=self.trees.trees_merged - merged_before,
        )
        self.requests_processed += 1
        self.request_log.append(stats)
        self.obs.registry.counter(
            "controller.requests", controller=self.name, kind=kind
        ).inc()
        self.obs.tracer.finish(
            span,
            flow_mods=flow_mods,
            flow_mods_by_switch=per_switch,
            trees_created=stats.trees_created,
            trees_merged=stats.trees_merged,
        )
        # Debug hook: prove the installed flow state correct before the
        # next request is admitted.  Only at the outermost request (repair
        # operations issue nested requests over transient state) and never
        # mid-reindex.
        if (
            self.verify_after_each_request
            and self._request_depth == 0
            and not self._reindexing
        ):
            from repro.analysis.verify import verify_controller

            verify_controller(self, raise_on_violation=True)

    # ------------------------------------------------------------------
    def installed_table(self, switch: str) -> "FlowTable":
        """The controller's authoritative view of a switch's flow table.

        Public read access for the static verifier and diagnostics; with a
        control channel this is the shadow table (what the controller
        believes is deployed), otherwise the physical TCAM itself.
        """
        return self._applier.table(switch)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-compatible diagnostic dump of the controller's state.

        Operators use this to inspect a live deployment: trees with their
        DZ and membership, client counts, per-switch flow occupancy, and
        cumulative control-plane work.
        """
        return {
            "controller": self.name,
            "partition": sorted(self.partition),
            "install_mode": self.install_mode,
            "advertisements": len(self.advertisements),
            "subscriptions": len(self.subscriptions),
            "trees": [
                {
                    "id": tree.tree_id,
                    "root": tree.root,
                    "dz": [dz.bits for dz in tree.dz_set],
                    "publishers": sorted(
                        m.endpoint.name for m in tree.publishers.values()
                    ),
                    "subscribers": sorted(
                        m.endpoint.name for m in tree.subscribers.values()
                    ),
                }
                for tree in sorted(self.trees, key=lambda t: t.tree_id)
            ],
            "flows_per_switch": {
                name: len(self._applier.table(name))
                for name in sorted(self.partition)
            },
            "total_flow_mods": self.total_flow_mods,
            "flow_mods_by_switch": {
                name: self.flow_mods_by_switch[name]
                for name in sorted(self.flow_mods_by_switch)
            },
            "requests_processed": self.requests_processed,
        }

    def check_invariants(self) -> None:
        """Structural sanity: disjoint trees, flows only in partition."""
        self.trees.check_invariants()
        for switch in self.ledger.switches():
            if switch not in self.partition:
                raise ControllerError(
                    f"controller {self.name} installed flows on foreign "
                    f"switch {switch!r}"
                )

    def __repr__(self) -> str:
        return (
            f"PleromaController({self.name!r}, partition={len(self.partition)}"
            f" switches, trees={len(self.trees)}, "
            f"advs={len(self.advertisements)}, subs={len(self.subscriptions)})"
        )


_next_id = 1_000_000


def _fresh_id() -> int:
    global _next_id
    _next_id += 1
    return _next_id
