"""Managing the set of spanning trees (Sec. 3.2).

The manager guarantees the paper's core invariant — ``DZ(t) ∩ DZ(t') = ∅``
for all distinct trees, so an event is disseminated in at most one tree —
and implements tree creation (shortest path tree rooted at the advertising
publisher's access switch) and merging: when the number of trees exceeds a
threshold, trees are merged "by mapping DZ of trees to a smaller set of
coarser subspaces", e.g. ``{0000, 0010}`` and ``{0001, 0011}`` merge into
``{00}``.  Coarsening must not collide with the DZ of third trees; when a
coarser covering subspace would, the merge falls back to the plain union
(still disjoint, just not shorter).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.core.dz import Dz
from repro.core.dzset import DzSet
from repro.controller.tree import SpanningTree
from repro.controller.tree_builders import TreeBuilder, shortest_path_tree
from repro.exceptions import ControllerError
from repro.network.topology import Topology

__all__ = ["TreeManager"]


class TreeManager:
    """Creates, finds, merges and retires spanning trees for one partition."""

    def __init__(
        self,
        topology: Topology,
        partition: Iterable[str] | None = None,
        merge_threshold: int = 16,
        tree_builder: TreeBuilder = shortest_path_tree,
    ) -> None:
        if merge_threshold < 1:
            raise ControllerError("merge threshold must be >= 1")
        self.tree_builder = tree_builder
        self.topology = topology
        self.partition = (
            set(partition) if partition is not None else set(topology.switches())
        )
        unknown = self.partition - set(topology.switches())
        if unknown:
            raise ControllerError(f"not switches: {sorted(unknown)}")
        self.merge_threshold = merge_threshold
        self.trees: dict[int, SpanningTree] = {}
        self.trees_created = 0
        self.trees_merged = 0

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[SpanningTree]:
        return iter(self.trees.values())

    def __len__(self) -> int:
        return len(self.trees)

    def get(self, tree_id: int) -> SpanningTree:
        try:
            return self.trees[tree_id]
        except KeyError:
            raise ControllerError(f"unknown tree {tree_id}") from None

    def overlapping(self, dz: Dz) -> list[SpanningTree]:
        """All trees whose DZ overlaps the subspace ``dz`` (Alg. 1 line 4)."""
        return [
            t
            for t in self.trees.values()
            if t.dz_set.overlaps_dz(dz)
        ]

    def overlapping_set(self, dzset: DzSet) -> list[SpanningTree]:
        return [t for t in self.trees.values() if t.dz_set.overlaps(dzset)]

    def total_coverage(self) -> DzSet:
        """The union of all trees' DZ."""
        result = DzSet(frozenset())
        for t in self.trees.values():
            result = result.union(t.dz_set)
        return result

    # ------------------------------------------------------------------
    def create_tree(self, root: str, dz_set: DzSet) -> SpanningTree:
        """``createTree``: a shortest path tree rooted at ``root`` spanning
        the partition, owning ``dz_set``."""
        if root not in self.partition:
            raise ControllerError(
                f"root {root!r} is not a switch of this partition"
            )
        if dz_set.is_empty:
            raise ControllerError("refusing to create a tree with empty DZ")
        for t in self.trees.values():
            if t.dz_set.overlaps(dz_set):
                raise ControllerError(
                    f"new DZ {dz_set} overlaps tree {t.tree_id} ({t.dz_set})"
                )
        parents = self.tree_builder(self.topology, self.partition, root)
        tree = SpanningTree(root=root, parents=parents, dz_set=dz_set)
        self.trees[tree.tree_id] = tree
        self.trees_created += 1
        return tree

    def retire_tree(self, tree_id: int) -> SpanningTree:
        """Remove a tree (its flows must have been withdrawn already)."""
        tree = self.get(tree_id)
        del self.trees[tree_id]
        return tree

    # ------------------------------------------------------------------
    def merges_needed(self) -> bool:
        return len(self.trees) > self.merge_threshold

    def pick_merge_pair(self) -> tuple[SpanningTree, SpanningTree]:
        """The cheapest pair to merge: the one whose combined DZ coarsens
        to the longest common prefix (least over-coverage)."""
        if len(self.trees) < 2:
            raise ControllerError("need two trees to merge")
        candidates = sorted(self.trees.values(), key=lambda t: t.tree_id)
        best_pair = None
        best_score = (-1, 0.0)
        for i, t1 in enumerate(candidates):
            for t2 in candidates[i + 1:]:
                combined = t1.dz_set.union(t2.dz_set)
                prefix = combined.coarsen_to_common_prefix()
                # prefer long common prefixes; tie-break on small coverage
                score = (len(prefix), -combined.total_measure())
                if score > best_score:
                    best_score = score
                    best_pair = (t1, t2)
        assert best_pair is not None
        return best_pair

    def merged_dz(self, t1: SpanningTree, t2: SpanningTree) -> DzSet:
        """The DZ of the merge of two trees.

        Prefer the coarsened single subspace (shorter dz, hence fewer and
        coarser flows); fall back to the plain union when the coarse
        subspace would overlap a third tree.
        """
        combined = t1.dz_set.union(t2.dz_set)
        coarse = DzSet(frozenset({combined.coarsen_to_common_prefix()}))
        for other in self.trees.values():
            if other.tree_id in (t1.tree_id, t2.tree_id):
                continue
            if other.dz_set.overlaps(coarse):
                return combined
        return coarse

    def merge(self, t1: SpanningTree, t2: SpanningTree) -> SpanningTree:
        """Structurally merge two trees into a new one.

        The merged tree is rooted at the root of the tree with more
        publishers (re-homing fewer paths).  Member sets are combined; the
        caller (the controller) is responsible for re-installing flows for
        the members of the retired trees.
        """
        if t1.tree_id not in self.trees or t2.tree_id not in self.trees:
            raise ControllerError("can only merge live trees")
        dz_set = self.merged_dz(t1, t2)
        survivor_root = (
            t1.root if len(t1.publishers) >= len(t2.publishers) else t2.root
        )
        del self.trees[t1.tree_id]
        del self.trees[t2.tree_id]
        parents = self.tree_builder(self.topology, self.partition, survivor_root)
        merged = SpanningTree(root=survivor_root, parents=parents, dz_set=dz_set)
        for source in (t1, t2):
            for adv_id, member in source.publishers.items():
                merged.join_publisher(adv_id, member.endpoint, member.overlap)
            for sub_id, member in source.subscribers.items():
                merged.join_subscriber(sub_id, member.endpoint, member.overlap)
        self.trees[merged.tree_id] = merged
        self.trees_merged += 1
        return merged

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert pairwise disjointness of tree DZ sets (test hook)."""
        trees = sorted(self.trees.values(), key=lambda t: t.tree_id)
        for i, t1 in enumerate(trees):
            for t2 in trees[i + 1:]:
                if t1.dz_set.overlaps(t2.dz_set):
                    raise ControllerError(
                        f"trees {t1.tree_id} and {t2.tree_id} overlap: "
                        f"{t1.dz_set} vs {t2.dz_set}"
                    )
