"""Declarative flow computation: contributions -> desired flow table.

This is the closed-form counterpart of Algorithm 1's incremental cases 1–5
(see :mod:`repro.controller.flow_installer` for the literal version).  Given
the aggregated contributions of a switch — every ``(dz, action set)`` some
installed path needs — the desired table is:

* one flow per *needed* dz.  A contributed dz is redundant when some coarser
  contributed dz already implies the same cumulative action set (this is
  case 2/3 of the paper: a covering flow makes the finer one unnecessary);
* the flow for dz carries the **cumulative** action set — the union of the
  actions of every contribution at dz or coarser.  TCAM executes only the
  single best match, so a fine flow must subsume what any coarser flow
  would have done for the same packet (cases 4/5: ports of partially
  covering flows are merged);
* priority equals ``|dz|``, so finer subspaces win, which is exactly the
  paper's priority-order rule (Fig. 3).

Reconciliation (diffing desired vs installed) then yields precisely the
paper's unsubscription behaviour: a flow whose last fine-grained
contribution left is *deleted* if nothing coarser needs the switch, or
*downgraded* to the surviving coarser dz (the Fig. 4 / Sec. 3.3.3 example
is a unit test).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from repro.core.dz import Dz
from repro.network.flow import Action, FlowEntry, FlowTable

__all__ = ["desired_flows", "FlowDiff", "diff_table", "apply_diff"]


def desired_flows(
    contributions: Mapping[Dz, frozenset[Action]],
) -> dict[Dz, frozenset[Action]]:
    """The minimal flow set realising the given contributions.

    Returns ``{dz: cumulative action set}`` for every needed dz.
    """
    desired: dict[Dz, frozenset[Action]] = {}
    for dz, actions in contributions.items():
        cumulative = set(actions)
        parent_cumulative: set[Action] = set()
        has_coarser = False
        for other_dz, other_actions in contributions.items():
            if other_dz == dz:
                continue
            if other_dz.covers(dz):
                cumulative |= other_actions
                parent_cumulative |= other_actions
                has_coarser = True
        if has_coarser and cumulative == parent_cumulative:
            continue  # fully implied by coarser flows — redundant
        desired[dz] = frozenset(cumulative)
    return desired


@dataclass(frozen=True)
class FlowDiff:
    """Flow-mod messages needed to move a table to the desired state."""

    additions: tuple[FlowEntry, ...]
    modifications: tuple[FlowEntry, ...]
    deletions: tuple[FlowEntry, ...]

    @property
    def total_mods(self) -> int:
        """Number of control-channel messages this diff costs."""
        return len(self.additions) + len(self.modifications) + len(self.deletions)

    @property
    def is_empty(self) -> bool:
        return self.total_mods == 0


def diff_table(
    table: FlowTable, desired: Mapping[Dz, frozenset[Action]]
) -> FlowDiff:
    """Compute the flow mods taking ``table`` to the desired state."""
    additions: list[FlowEntry] = []
    modifications: list[FlowEntry] = []
    deletions: list[FlowEntry] = []
    desired_remaining = dict(desired)
    for entry in table.entries():
        want = desired_remaining.pop(entry.dz, None)
        if want is None:
            deletions.append(entry)
        elif want != entry.actions or entry.priority != len(entry.dz):
            modifications.append(
                entry.with_actions(want).with_priority(len(entry.dz))
            )
    for dz, actions in desired_remaining.items():
        additions.append(FlowEntry.for_dz(dz, actions))
    return FlowDiff(
        additions=tuple(additions),
        modifications=tuple(modifications),
        deletions=tuple(deletions),
    )


def apply_diff(table: FlowTable, diff: FlowDiff) -> None:
    """Apply a diff to a live table (deletion first, then mods, then adds)."""
    for entry in diff.deletions:
        table.remove(entry.match)
    for entry in diff.modifications:
        table.install(entry)
    for entry in diff.additions:
        table.install(entry)
