"""The literal incremental flow-addition of Algorithm 1 (lines 31–51).

``flow_addition`` applies one new flow to one switch table, following the
paper's five cases:

1. nothing installed — add the new flow ``fl_n``;
2. an existing flow covers ``fl_n`` — do nothing;
3. ``fl_n`` covers an existing flow — delete the existing one;
4. an existing flow *partially* covers ``fl_n`` — add ``fl_n`` with the
   existing flow's out ports merged in and a higher priority;
5. ``fl_n`` partially covers an existing flow — update the existing flow to
   include the new out ports and hold higher priority than ``fl_n``.

Like the paper, priorities are realised by ``|dz|`` (longer dz = higher
priority), which maintains exactly the invariant cases 4/5 aim at: the
single best TCAM match must subsume everything a coarser flow would do.

The declarative reconciler in :mod:`repro.controller.reconciler` computes
the same forwarding behaviour from scratch; a property-based test asserts
the two agree on every address after every addition.  One deliberate
refinement over the paper's literal listing: after case 4 enlarges
``fl_n``'s action set, the case-3 deletion check is re-run, so flows that
*became* redundant through the merge are removed as well.  (The literal
order would leave them installed; they are behaviourally harmless but make
tables non-minimal.)
"""

from __future__ import annotations

from repro.core.dz import Dz
from repro.network.flow import Action, FlowEntry, FlowTable
from repro.obs.registry import MetricsRegistry

__all__ = ["flow_addition"]


def _count_case(registry: MetricsRegistry | None, case: str) -> None:
    if registry is not None:
        registry.counter("flow_installer.case_hits", case=case).inc()


def flow_addition(
    table: FlowTable,
    dz: Dz,
    actions: frozenset[Action] | set[Action],
    registry: MetricsRegistry | None = None,
) -> int:
    """Install a flow for ``dz``/``actions`` into ``table``.

    Returns the number of flow-mod messages (adds + modifies + deletes)
    the operation cost.  When a ``registry`` is given, per-case hit
    counters (``flow_installer.case_hits{case=1..5}``) record which of the
    paper's five situations the workload actually exercises.
    """
    fl_new = FlowEntry.for_dz(dz, frozenset(actions))
    current = table.entries()

    # Case 2: an existing flow fully covers the new one — no action needed.
    if any(fl_ex.covers(fl_new) for fl_ex in current):
        _count_case(registry, "2")
        return 0

    mods = 0

    # Case 4: existing coarser flows partially covering fl_new donate their
    # actions; the longer dz already outranks them in priority.
    merged_actions = set(fl_new.actions)
    for fl_ex in current:
        if fl_ex.partially_covers(fl_new):
            merged_actions |= fl_ex.actions
            _count_case(registry, "4")
    fl_new = fl_new.with_actions(frozenset(merged_actions))

    # Case 3: delete existing flows the (possibly enlarged) new flow covers.
    for fl_ex in current:
        if fl_new.covers(fl_ex) and fl_ex.match != fl_new.match:
            table.remove(fl_ex.match)
            mods += 1
            _count_case(registry, "3")

    # Case 5: existing finer flows partially covered by fl_new must absorb
    # the new actions so their higher-priority match keeps subsuming it.
    for fl_ex in table.entries():
        if fl_new.partially_covers(fl_ex) and fl_ex.match != fl_new.match:
            table.install(fl_ex.with_actions(fl_ex.actions | fl_new.actions))
            mods += 1
            _count_case(registry, "5")

    # Case 1 (and the add of cases 3-5): install the new flow.  If an entry
    # with the same match exists, merge actions instead of shadowing it.
    existing_same = table.get(fl_new.match)
    if existing_same is not None:
        fl_new = fl_new.with_actions(fl_new.actions | existing_same.actions)
    table.install(fl_new)
    _count_case(registry, "1")
    return mods + 1
