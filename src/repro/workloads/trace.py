"""Workload traces: record, persist and replay pub/sub activity.

Reproducible evaluation needs replayable workloads.  A trace is an ordered
list of timestamped operations (advertise, subscribe, unsubscribe,
publish, ...) serialisable to JSON-lines via the core codecs, so a
workload captured from one experiment — or authored by hand — can be
replayed bit-identically into any deployment:

    trace = TraceRecorder()
    ... drive middleware through recorder ...
    trace.save(path)

    TraceReplayer(Trace.load(path)).run(middleware)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterator
from typing import Any

from repro.core.codec import (
    decode_advertisement,
    decode_event,
    decode_subscription,
    encode_advertisement,
    encode_event,
    encode_subscription,
)
from repro.core.events import Event
from repro.core.subscription import Advertisement, Subscription
from repro.exceptions import WorkloadError

__all__ = ["TraceOp", "Trace", "TraceRecorder", "TraceReplayer"]

_KINDS = ("advertise", "subscribe", "unsubscribe", "unadvertise", "publish")


@dataclass(frozen=True)
class TraceOp:
    """One timestamped operation of a workload trace."""

    time: float
    kind: str
    host: str
    payload: Any = None  # Advertisement | Subscription | Event | int (ids)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise WorkloadError(f"unknown trace op kind {self.kind!r}")
        if self.time < 0:
            raise WorkloadError("trace op time must be >= 0")

    # ------------------------------------------------------------------
    def encode(self) -> dict[str, Any]:
        body: dict[str, Any] = {
            "time": self.time,
            "kind": self.kind,
            "host": self.host,
        }
        if self.kind == "advertise":
            body["advertisement"] = encode_advertisement(self.payload)
        elif self.kind == "subscribe":
            body["subscription"] = encode_subscription(self.payload)
        elif self.kind == "publish":
            body["event"] = encode_event(self.payload)
        else:  # unsubscribe / unadvertise carry the original id
            body["ref"] = self.payload
        return body

    @classmethod
    def decode(cls, body: dict[str, Any]) -> "TraceOp":
        kind = body["kind"]
        if kind == "advertise":
            payload: Any = decode_advertisement(body["advertisement"])
        elif kind == "subscribe":
            payload = decode_subscription(body["subscription"])
        elif kind == "publish":
            payload = decode_event(body["event"])
        else:
            payload = body["ref"]
        return cls(
            time=body["time"], kind=kind, host=body["host"], payload=payload
        )


@dataclass
class Trace:
    """An ordered, timestamped workload."""

    ops: list[TraceOp] = field(default_factory=list)

    def __post_init__(self) -> None:
        times = [op.time for op in self.ops]
        if times != sorted(times):
            raise WorkloadError("trace operations must be time-ordered")

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[TraceOp]:
        return iter(self.ops)

    @property
    def duration(self) -> float:
        return self.ops[-1].time if self.ops else 0.0

    # ------------------------------------------------------------------
    def dumps(self) -> str:
        """JSON-lines text, one op per line."""
        return "\n".join(
            json.dumps(op.encode(), sort_keys=True) for op in self.ops
        )

    @classmethod
    def loads(cls, text: str) -> "Trace":
        ops = [
            TraceOp.decode(json.loads(line))
            for line in text.splitlines()
            if line.strip()
        ]
        return cls(ops=ops)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.dumps() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        return cls.loads(Path(path).read_text())


class TraceRecorder:
    """Builds a trace while an experiment drives the middleware."""

    def __init__(self) -> None:
        self._ops: list[TraceOp] = []
        self._last_time = 0.0

    def _append(self, op: TraceOp) -> None:
        if op.time < self._last_time:
            raise WorkloadError(
                f"out-of-order trace op at {op.time} after {self._last_time}"
            )
        self._last_time = op.time
        self._ops.append(op)

    def advertise(self, time: float, host: str, adv: Advertisement) -> None:
        self._append(TraceOp(time, "advertise", host, adv))

    def subscribe(self, time: float, host: str, sub: Subscription) -> None:
        self._append(TraceOp(time, "subscribe", host, sub))

    def unsubscribe(self, time: float, host: str, sub_id: int) -> None:
        self._append(TraceOp(time, "unsubscribe", host, sub_id))

    def unadvertise(self, time: float, host: str, adv_id: int) -> None:
        self._append(TraceOp(time, "unadvertise", host, adv_id))

    def publish(self, time: float, host: str, event: Event) -> None:
        self._append(TraceOp(time, "publish", host, event))

    def trace(self) -> Trace:
        return Trace(ops=list(self._ops))


class TraceReplayer:
    """Feeds a trace into a middleware deployment on the simulated clock."""

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self.applied = 0

    def run(self, middleware) -> None:
        """Schedule every op at its timestamp and drain the simulation.

        Control operations go through the middleware's public API, so
        replay exercises exactly the code paths a live client would.
        """
        for op in self.trace:
            middleware.sim.schedule_at(op.time, self._apply, middleware, op)
        middleware.run()

    def _apply(self, middleware, op: TraceOp) -> None:
        if op.kind == "advertise":
            middleware.advertise(op.host, op.payload)
        elif op.kind == "subscribe":
            middleware.subscribe(op.host, op.payload)
        elif op.kind == "unsubscribe":
            middleware.unsubscribe(op.host, op.payload)
        elif op.kind == "unadvertise":
            middleware.unadvertise(op.host, op.payload)
        elif op.kind == "publish":
            middleware.publish(op.host, op.payload)
        self.applied += 1
