"""Workload generation: uniform and zipfian interest-popularity models."""

from repro.workloads.generators import Hotspot, UniformWorkload, ZipfianWorkload
from repro.workloads.trace import Trace, TraceOp, TraceRecorder, TraceReplayer
from repro.workloads.scenarios import (
    ZIPFIAN_TYPE_RESTRICTIONS,
    paper_space,
    paper_uniform,
    paper_zipfian,
    zipfian_type,
)

__all__ = [
    "Hotspot",
    "UniformWorkload",
    "ZipfianWorkload",
    "paper_space",
    "paper_uniform",
    "paper_zipfian",
    "zipfian_type",
    "ZIPFIAN_TYPE_RESTRICTIONS",
    "Trace",
    "TraceOp",
    "TraceRecorder",
    "TraceReplayer",
]
