"""Workload generators for the evaluation (Sec. 6.1).

Two distribution models, as in the paper:

* **uniform** — subscriptions and events drawn independently and uniformly
  over the event space;
* **interest popularity (zipfian)** — 7 hotspot regions; each subscription
  and event picks a hotspot with zipfian probability and is generated
  around it.

For the dimension-selection experiment (Fig. 7e) the zipfian generator
additionally supports *variance restrictions*: per-dimension scale factors
that confine hotspot placement and event spread along chosen dimensions,
"modelling varying selectivity across different dimensions of [the] event
space".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.core.events import Event, EventSpace
from repro.core.subscription import Advertisement, Filter, Subscription
from repro.exceptions import WorkloadError
from repro.sim.rng import ZipfSampler, make_rng

__all__ = ["UniformWorkload", "ZipfianWorkload", "Hotspot"]


def _clip(value: float, low: float, high: float) -> float:
    return max(low, min(value, high))


@dataclass(frozen=True)
class Hotspot:
    """One interest-popularity region: a centre point in raw coordinates."""

    center: tuple[float, ...]


class _WorkloadBase:
    """Common helpers shared by the two distribution models."""

    def __init__(self, space: EventSpace, seed: int, width_fraction: float):
        if not 0.0 < width_fraction <= 1.0:
            raise WorkloadError(
                f"width_fraction must be in (0, 1], got {width_fraction}"
            )
        self.space = space
        self.rng: random.Random = make_rng(seed)
        self.width_fraction = width_fraction
        self._event_counter = 0

    def _next_event_id(self) -> int:
        self._event_counter += 1
        return self._event_counter

    def _range_around(
        self, attr_index: int, center: float, width_fraction: float
    ) -> tuple[float, float]:
        attr = self.space.attributes[attr_index]
        span = (attr.high - attr.low) * width_fraction
        low = _clip(center - span / 2.0, attr.low, attr.high - attr.grain - 1e-9)
        high = _clip(low + span, low, attr.high - attr.grain - 1e-9)
        return (low, high)

    def subscriptions(self, count: int) -> list[Subscription]:
        return [self.subscription() for _ in range(count)]

    def events(self, count: int) -> list[Event]:
        return [self.event() for _ in range(count)]

    def subscription(self) -> Subscription:  # pragma: no cover - abstract
        raise NotImplementedError

    def event(self) -> Event:  # pragma: no cover - abstract
        raise NotImplementedError

    def advertisement_covering_all(self) -> Advertisement:
        """An advertisement spanning the whole space (for single-publisher
        experiments where the publisher may emit any event)."""
        return Advertisement(filter=Filter.of())


class UniformWorkload(_WorkloadBase):
    """Random subscriptions and events, independent of each other."""

    def __init__(
        self,
        space: EventSpace,
        seed: int = 0,
        width_fraction: float = 0.125,
        constrained_dimensions: Sequence[str] | None = None,
    ) -> None:
        super().__init__(space, seed, width_fraction)
        names = (
            tuple(constrained_dimensions)
            if constrained_dimensions is not None
            else space.names
        )
        for name in names:
            if name not in space:
                raise WorkloadError(f"unknown dimension {name!r}")
        self.constrained_dimensions = names

    def subscription(self) -> Subscription:
        ranges = {}
        for name in self.constrained_dimensions:
            idx = self.space.index_of(name)
            attr = self.space.attributes[idx]
            center = self.rng.uniform(attr.low, attr.high)
            ranges[name] = self._range_around(idx, center, self.width_fraction)
        return Subscription.of(**ranges)

    def event(self) -> Event:
        values = {
            attr.name: self.rng.uniform(attr.low, attr.high - 1e-9)
            for attr in self.space.attributes
        }
        return Event(values=values, event_id=self._next_event_id())


class ZipfianWorkload(_WorkloadBase):
    """The interest-popularity model: zipfian choice among hotspots.

    ``variance_scale`` maps dimension names to a factor in ``(0, 1]``
    restricting both hotspot placement and event spread along that
    dimension (1.0 = unrestricted, small values pin the dimension near the
    domain centre).  Dimensions absent from the mapping are unrestricted.
    """

    def __init__(
        self,
        space: EventSpace,
        seed: int = 0,
        hotspots: int = 7,
        exponent: float = 1.0,
        width_fraction: float = 0.125,
        event_spread_fraction: float = 0.05,
        variance_scale: Mapping[str, float] | None = None,
    ) -> None:
        super().__init__(space, seed, width_fraction)
        if hotspots < 1:
            raise WorkloadError("need at least one hotspot")
        if not 0.0 < event_spread_fraction <= 1.0:
            raise WorkloadError("event_spread_fraction must be in (0, 1]")
        self.variance_scale = dict(variance_scale or {})
        for name, scale in self.variance_scale.items():
            if name not in space:
                raise WorkloadError(f"unknown dimension {name!r}")
            if not 0.0 < scale <= 1.0:
                raise WorkloadError(
                    f"variance scale for {name!r} must be in (0, 1]"
                )
        self.event_spread_fraction = event_spread_fraction
        self.sampler = ZipfSampler(hotspots, exponent=exponent, rng=self.rng)
        self.hotspots: list[Hotspot] = [
            self._make_hotspot() for _ in range(hotspots)
        ]

    def _scale_for(self, name: str) -> float:
        return self.variance_scale.get(name, 1.0)

    def _make_hotspot(self) -> Hotspot:
        center = []
        for attr in self.space.attributes:
            scale = self._scale_for(attr.name)
            mid = (attr.low + attr.high) / 2.0
            half_span = (attr.high - attr.low) / 2.0 * scale
            center.append(self.rng.uniform(mid - half_span, mid + half_span))
        return Hotspot(center=tuple(center))

    def pick_hotspot(self) -> Hotspot:
        return self.hotspots[self.sampler.sample()]

    def subscription(self, hotspot: Hotspot | None = None) -> Subscription:
        """A subscription *around* a hotspot: the box centre is jittered by
        the same spread as the event traffic, so subscriptions for one
        hotspot overlap heavily but are not identical."""
        hotspot = hotspot if hotspot is not None else self.pick_hotspot()
        ranges = {}
        for idx, attr in enumerate(self.space.attributes):
            spread = (
                (attr.high - attr.low)
                * self.event_spread_fraction
                * self._scale_for(attr.name)
            )
            center = hotspot.center[idx] + self.rng.gauss(0.0, spread)
            ranges[attr.name] = self._range_around(
                idx, center, self.width_fraction
            )
        return Subscription.of(**ranges)

    def event(self, hotspot: Hotspot | None = None) -> Event:
        hotspot = hotspot if hotspot is not None else self.pick_hotspot()
        values = {}
        for idx, attr in enumerate(self.space.attributes):
            spread = (
                (attr.high - attr.low)
                * self.event_spread_fraction
                * self._scale_for(attr.name)
            )
            value = hotspot.center[idx] + self.rng.gauss(0.0, spread)
            values[attr.name] = _clip(value, attr.low, attr.high - 1e-9)
        return Event(values=values, event_id=self._next_event_id())
