"""Preset workloads matching the paper's evaluation setups (Sec. 6)."""

from __future__ import annotations

from repro.core.events import EventSpace
from repro.exceptions import WorkloadError
from repro.workloads.generators import UniformWorkload, ZipfianWorkload

__all__ = [
    "paper_space",
    "paper_uniform",
    "paper_zipfian",
    "zipfian_type",
    "ZIPFIAN_TYPE_RESTRICTIONS",
]


def paper_space(dimensions: int = 10) -> EventSpace:
    """The evaluation schema: up to 10 attributes over [0, 1023]."""
    return EventSpace.paper_schema(dimensions)


def paper_uniform(
    dimensions: int = 10, seed: int = 0, width_fraction: float = 0.125
) -> UniformWorkload:
    """The uniform distribution model of Sec. 6.1."""
    return UniformWorkload(
        paper_space(dimensions), seed=seed, width_fraction=width_fraction
    )


def paper_zipfian(
    dimensions: int = 10, seed: int = 0, width_fraction: float = 0.125
) -> ZipfianWorkload:
    """The interest-popularity model: 7 hotspots, zipfian popularity."""
    return ZipfianWorkload(
        paper_space(dimensions),
        seed=seed,
        hotspots=7,
        width_fraction=width_fraction,
    )


#: Per-type variance restrictions for the Fig. 7(e) experiment over a
#: 7-dimensional space.  Type 1 confines event variance to 2 informative
#: dimensions, type 2 to 4; type 3 leaves all dimensions informative.
ZIPFIAN_TYPE_RESTRICTIONS: dict[int, dict[str, float]] = {
    1: {f"attr{i}": 0.02 for i in range(2, 7)},
    2: {f"attr{i}": 0.02 for i in range(4, 7)},
    3: {},
}


def zipfian_type(type_id: int, seed: int = 0) -> ZipfianWorkload:
    """One of the three variance-restricted zipfian workloads (Fig. 7e)."""
    if type_id not in ZIPFIAN_TYPE_RESTRICTIONS:
        raise WorkloadError(f"zipfian workload type must be 1..3, got {type_id}")
    return ZipfianWorkload(
        paper_space(7),
        seed=seed,
        hotspots=7,
        variance_scale=ZIPFIAN_TYPE_RESTRICTIONS[type_id],
    )
