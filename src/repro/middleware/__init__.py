"""User-facing middleware: the Pleroma facade, clients and metrics."""

from repro.middleware.client import Publisher, Subscriber
from repro.middleware.metrics import (
    DeliveryRecord,
    MetricsCollector,
    summarize,
)
from repro.middleware.pleroma import Pleroma

__all__ = [
    "Pleroma",
    "Publisher",
    "Subscriber",
    "DeliveryRecord",
    "MetricsCollector",
    "summarize",
]
