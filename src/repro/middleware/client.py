"""Publisher and subscriber clients: the host-side API.

Clients wrap one end host each.  A publisher must advertise before
publishing (Sec. 2); a subscriber registers filters and receives matching
events through a callback.  Clients talk to the middleware facade, which
routes their requests to the responsible controller and stamps outgoing
events with the current spatial indexing (so dimension re-selection is
transparent to application code).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.core.events import Event
from repro.core.subscription import Advertisement, Filter, Subscription
from repro.exceptions import ControllerError

if TYPE_CHECKING:
    from repro.middleware.pleroma import Pleroma

__all__ = ["Publisher", "Subscriber"]

EventCallback = Callable[[Event, float], None]


@dataclass
class Publisher:
    """A publishing client bound to one end host."""

    middleware: "Pleroma"
    host: str
    _advertisements: dict[int, Advertisement] = field(default_factory=dict)
    published: int = 0

    def advertise(self, advertisement: Advertisement | Filter) -> int:
        """Declare a publication region; returns the advertisement id."""
        if isinstance(advertisement, Filter):
            advertisement = Advertisement(filter=advertisement)
        state = self.middleware.advertise(self.host, advertisement)
        self._advertisements[state.adv_id] = advertisement
        return state.adv_id

    def unadvertise(self, adv_id: int) -> None:
        if adv_id not in self._advertisements:
            raise ControllerError(
                f"publisher {self.host!r} holds no advertisement {adv_id}"
            )
        self.middleware.unadvertise(self.host, adv_id)
        del self._advertisements[adv_id]

    def publish(self, event: Event) -> None:
        """Send one event.  The event must be covered by one of this
        publisher's advertisements — publishing unadvertised content is a
        protocol violation (Sec. 2)."""
        if not any(
            adv.covers(event) for adv in self._advertisements.values()
        ):
            raise ControllerError(
                f"publisher {self.host!r} publishes outside its "
                f"advertisements: {event}"
            )
        self.middleware.publish(self.host, event)
        self.published += 1


@dataclass
class Subscriber:
    """A subscribing client bound to one end host.

    ``received`` records every event the host's NIC delivered, including
    network-level false positives; ``matched`` only those satisfying one of
    the client's subscriptions — the application-visible stream.
    """

    middleware: "Pleroma"
    host: str
    callback: EventCallback | None = None
    _subscriptions: dict[int, Subscription] = field(default_factory=dict)
    received: list[Event] = field(default_factory=list)
    matched: list[Event] = field(default_factory=list)

    def subscribe(self, subscription: Subscription | Filter) -> int:
        if isinstance(subscription, Filter):
            subscription = Subscription(filter=subscription)
        state = self.middleware.subscribe(self.host, subscription)
        self._subscriptions[state.sub_id] = subscription
        return state.sub_id

    def unsubscribe(self, sub_id: int) -> None:
        if sub_id not in self._subscriptions:
            raise ControllerError(
                f"subscriber {self.host!r} holds no subscription {sub_id}"
            )
        self.middleware.unsubscribe(self.host, sub_id)
        del self._subscriptions[sub_id]

    @property
    def subscriptions(self) -> dict[int, Subscription]:
        return dict(self._subscriptions)

    def _deliver(self, event: Event, now: float, matched: bool) -> None:
        """Called by the middleware for every event reaching this host."""
        self.received.append(event)
        if matched:
            self.matched.append(event)
            if self.callback is not None:
                self.callback(event, now)
