"""Measurement harness: delays, throughput, false positives, control cost.

The collector observes every published and delivered event and derives the
metrics of Sec. 6:

* **end-to-end delay** — delivery time minus publish time (Fig. 7a/b);
* **throughput** — events received per second vs. sent per second
  (Fig. 7c);
* **false positive rate** — the percentage of received events the receiving
  host never subscribed to, caused by dz truncation and enclosing
  approximations (Fig. 7d/e);
* **reconfiguration delay** — per-request controller cost, read from the
  controllers' request logs (Fig. 7f).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.core.events import Event
from repro.obs.registry import DELAY_BUCKETS_S, MetricsRegistry

__all__ = ["DeliveryRecord", "MetricsCollector", "summarize"]


@dataclass(frozen=True)
class DeliveryRecord:
    """One event delivered to one host."""

    host: str
    event: Event
    publish_time: float
    deliver_time: float
    matched: bool

    @property
    def delay(self) -> float:
        return self.deliver_time - self.publish_time


class MetricsCollector:
    """Accumulates publish/delivery observations.

    Counts delegate to a :class:`~repro.obs.registry.MetricsRegistry`
    (``events.published``, ``events.delivered``,
    ``events.false_positives`` and the ``delivery.delay_s`` histogram) so
    they appear in the deployment's observability snapshot; the
    per-delivery :class:`DeliveryRecord` list stays here for the derived
    metrics below.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.records: list[DeliveryRecord] = []
        self.first_publish_time: float | None = None
        self.last_publish_time: float | None = None
        self._c_published = self.registry.counter("events.published")
        self._c_delivered = self.registry.counter("events.delivered")
        self._c_false_positives = self.registry.counter(
            "events.false_positives"
        )
        self._h_delay = self.registry.histogram(
            "delivery.delay_s", DELAY_BUCKETS_S
        )

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def on_publish(self, now: float) -> None:
        self._c_published.inc()
        if self.first_publish_time is None:
            self.first_publish_time = now
        self.last_publish_time = now

    def on_delivery(self, record: DeliveryRecord) -> None:
        self.records.append(record)
        self._c_delivered.inc()
        self._h_delay.observe(record.delay)
        if not record.matched:
            self._c_false_positives.inc()

    def reset(self) -> None:
        self.records.clear()
        self.first_publish_time = None
        self.last_publish_time = None
        self._c_published.reset()
        self._c_delivered.reset()
        self._c_false_positives.reset()
        self._h_delay.reset()

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    @property
    def published(self) -> int:
        return self._c_published.value

    @property
    def delivered(self) -> int:
        return len(self.records)

    def delays(self) -> list[float]:
        return [r.delay for r in self.records]

    def mean_delay(self) -> float:
        delays = self.delays()
        if not delays:
            raise ValueError("no deliveries recorded")
        return sum(delays) / len(delays)

    def max_delay(self) -> float:
        delays = self.delays()
        if not delays:
            raise ValueError("no deliveries recorded")
        return max(delays)

    def false_positive_rate(self) -> float:
        """Unwanted deliveries over total deliveries, as a percentage —
        exactly the paper's FPR definition (Sec. 6.4)."""
        if not self.records:
            return 0.0
        unwanted = sum(1 for r in self.records if not r.matched)
        return 100.0 * unwanted / len(self.records)

    def deliveries_per_host(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.host] = counts.get(record.host, 0) + 1
        return counts

    def received_rate_eps(self) -> float:
        """Events received per second across all hosts, over the publishing
        window (Fig. 7c's y axis)."""
        if (
            self.first_publish_time is None
            or self.last_publish_time is None
            or self.last_publish_time <= self.first_publish_time
        ):
            raise ValueError("need a publishing window to compute a rate")
        window = self.last_publish_time - self.first_publish_time
        return self.delivered / window

    def sent_rate_eps(self) -> float:
        if (
            self.first_publish_time is None
            or self.last_publish_time is None
            or self.last_publish_time <= self.first_publish_time
        ):
            raise ValueError("need a publishing window to compute a rate")
        window = self.last_publish_time - self.first_publish_time
        return self.published / window


def summarize(values: Iterable[float]) -> dict[str, float]:
    """Small helper for benchmark tables: mean/min/max of a series."""
    data = list(values)
    if not data:
        raise ValueError("no values to summarise")
    return {
        "mean": sum(data) / len(data),
        "min": min(data),
        "max": max(data),
        "count": float(len(data)),
    }
