"""The PLEROMA middleware facade: one object to deploy and use the system.

``Pleroma`` wires together the simulated SDN fabric, one controller per
partition (federated when more than one), the spatial indexer, the metrics
collector and — optionally — the dimension-selection monitor.  Application
code only touches this facade and the :class:`Publisher` /
:class:`Subscriber` clients it hands out:

    middleware = Pleroma(paper_fat_tree(), dimensions=2)
    pub = middleware.publisher("h1")
    sub = middleware.subscriber("h8", callback=print)
    pub.advertise(Filter.of(attr0=(0, 511)))
    sub.subscribe(Filter.of(attr0=(0, 255)))
    pub.publish(Event.of(attr0=100, attr1=7))
    middleware.run()
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import TYPE_CHECKING

from repro.controller.controller import (
    AdvertisementState,
    PleromaController,
    SubscriptionState,
)
from repro.core.addressing import dz_to_address
from repro.core.events import Event, EventSpace
from repro.core.spatial_index import DEFAULT_MAX_DZ_LENGTH, SpatialIndexer
from repro.core.subscription import Advertisement, Subscription
from repro.dimsel.monitor import TrafficMonitor
from repro.dimsel.selection import DimensionSelection
from repro.exceptions import ControllerError
from repro.interop.federation import Federation
from repro.middleware.client import Publisher, Subscriber
from repro.middleware.metrics import DeliveryRecord, MetricsCollector
from repro.network.fabric import Network, NetworkParams
from repro.network.packet import EventPayload, Packet, event_packet_size
from repro.network.topology import Topology, partition_switches
from repro.obs.context import Observability
from repro.sim.engine import Simulator

if TYPE_CHECKING:
    from repro.resilience.detector import FailureDetector
    from repro.resilience.orchestrator import RecoveryOrchestrator

__all__ = ["Pleroma"]


class _DimselRecurrence:
    """Cancellation handle for periodic dimension selection."""

    def __init__(self, middleware: "Pleroma") -> None:
        self._middleware = middleware

    def cancel(self) -> None:
        self._middleware._cancel_dimsel()


class Pleroma:
    """Deploys the middleware over a topology and exposes the user API."""

    def __init__(
        self,
        topology: Topology,
        dimensions: int = 10,
        space: EventSpace | None = None,
        max_dz_length: int = DEFAULT_MAX_DZ_LENGTH,
        max_cells: int = 64,
        partitions: int = 1,
        params: NetworkParams | None = None,
        merge_threshold: int = 16,
        install_mode: str = "reconcile",
        covering_enabled: bool = True,
        flow_mod_latency_s: float | None = None,
        auto_coarsen: bool = False,
        occupancy_threshold: float = 0.9,
        verify_after_each_request: bool = False,
    ) -> None:
        self.topology = topology
        self.sim = Simulator()
        # one observability bundle per deployment: every device, controller
        # and the metrics collector report into its registry/tracer
        self.obs = Observability(self.sim)
        self.network = Network(
            self.sim, topology, params=params, registry=self.obs.registry
        )
        self.space = space if space is not None else EventSpace.paper_schema(dimensions)
        self.indexer = SpatialIndexer(
            self.space, max_dz_length=max_dz_length, max_cells=max_cells
        )
        controller_kwargs: dict = dict(
            merge_threshold=merge_threshold,
            install_mode=install_mode,
            auto_coarsen=auto_coarsen,
            occupancy_threshold=occupancy_threshold,
            verify_after_each_request=verify_after_each_request,
        )
        if flow_mod_latency_s is not None:
            controller_kwargs["flow_mod_latency_s"] = flow_mod_latency_s
        self.controllers: list[PleromaController] = [
            PleromaController(
                self.network,
                self.indexer,
                partition=chunk,
                name=f"c{i + 1}",
                obs=self.obs,
                **controller_kwargs,
            )
            for i, chunk in enumerate(partition_switches(topology, partitions))
        ]
        self.federation: Federation | None = None
        if partitions > 1:
            self.federation = Federation(
                self.network,
                self.controllers,
                covering_enabled=covering_enabled,
                obs=self.obs,
            )
        self.metrics = MetricsCollector(registry=self.obs.registry)
        self.monitor: TrafficMonitor | None = None
        self._dimsel_period: float | None = None
        self._dimsel_k: int | None = None
        self._dimsel_handle = None
        self._dimsel_new_events = 0
        self._subscribers: dict[str, Subscriber] = {}
        self._host_subs: dict[str, dict[int, Subscription]] = {}
        for host in topology.hosts():
            self.network.hosts[host].set_delivery_callback(
                self._make_delivery_handler(host)
            )
        if len(self.controllers) == 1:
            # keep the facade's indexer (used to stamp outgoing events) in
            # sync with controller-initiated re-indexing (auto-coarsening)
            self.controllers[0].reindex_listeners.append(
                lambda indexer: setattr(self, "indexer", indexer)
            )

    # ------------------------------------------------------------------
    # clients
    # ------------------------------------------------------------------
    def publisher(self, host: str) -> Publisher:
        self._require_host(host)
        return Publisher(middleware=self, host=host)

    def subscriber(
        self, host: str, callback: Callable[[Event, float], None] | None = None
    ) -> Subscriber:
        self._require_host(host)
        if host in self._subscribers:
            raise ControllerError(
                f"host {host!r} already has a subscriber client"
            )
        client = Subscriber(middleware=self, host=host, callback=callback)
        self._subscribers[host] = client
        return client

    def _require_host(self, host: str) -> None:
        if host not in self.network.hosts:
            raise ControllerError(f"unknown host {host!r}")

    # ------------------------------------------------------------------
    # control operations (routed to the responsible controller)
    # ------------------------------------------------------------------
    def _controller_for(self, host: str) -> PleromaController:
        if self.federation is not None:
            return self.federation.controller_for_host(host)
        return self.controllers[0]

    def advertise(
        self, host: str, advertisement: Advertisement
    ) -> AdvertisementState:
        return self._controller_for(host).advertise(host, advertisement)

    def subscribe(
        self, host: str, subscription: Subscription
    ) -> SubscriptionState:
        state = self._controller_for(host).subscribe(host, subscription)
        self._host_subs.setdefault(host, {})[state.sub_id] = subscription
        return state

    def unsubscribe(self, host: str, sub_id: int) -> None:
        if self.federation is not None:
            self.federation.unsubscribe(host, sub_id)
        else:
            self.controllers[0].unsubscribe(sub_id)
        self._host_subs.get(host, {}).pop(sub_id, None)

    def unadvertise(self, host: str, adv_id: int) -> None:
        if self.federation is not None:
            self.federation.unadvertise(host, adv_id)
        else:
            self.controllers[0].unadvertise(adv_id)

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def publish(self, host: str, event: Event) -> None:
        """Send one event from ``host``, stamped with its maximal dz under
        the current indexing."""
        self._require_host(host)
        dz = self.indexer.event_to_dz(event)
        payload = EventPayload(event, dz, host, self.sim.now)
        self.network.hosts[host].send(
            Packet(
                dst_address=dz_to_address(dz),
                payload=payload,
                size_bytes=event_packet_size(dz),
            )
        )
        self.metrics.on_publish(self.sim.now)
        self.obs.poke_samplers()
        if self.monitor is not None:
            self.monitor.record_event(event)
            self._dimsel_new_events += 1
            if self._dimsel_period is not None and self._dimsel_handle is None:
                self._arm_dimsel()

    def publish_stream(
        self,
        host: str,
        events: "Iterable[Event]",
        rate_eps: float,
        start_at: float | None = None,
    ) -> int:
        """Schedule a constant-rate event stream from ``host``.

        Returns the number of events scheduled.  The experiments of Sec. 6
        all publish "at a constant rate"; this helper encapsulates that
        pattern (events are spaced ``1/rate_eps`` apart starting at
        ``start_at``, default now)."""
        if rate_eps <= 0:
            raise ControllerError("publish rate must be positive")
        base = self.sim.now if start_at is None else start_at
        interval = 1.0 / rate_eps
        count = 0
        for i, event in enumerate(events):
            self.sim.schedule_at(
                base + i * interval, self.publish, host, event
            )
            count += 1
        return count

    def _make_delivery_handler(self, host: str):
        def handler(payload: EventPayload, packet: Packet, now: float) -> None:
            subs = self._host_subs.get(host, {})
            matched = any(s.matches(payload.event) for s in subs.values())
            self.metrics.on_delivery(
                DeliveryRecord(
                    host=host,
                    event=payload.event,
                    publish_time=payload.publish_time,
                    deliver_time=now,
                    matched=matched,
                )
            )
            client = self._subscribers.get(host)
            if client is not None:
                client._deliver(payload.event, now, matched)

        return handler

    # ------------------------------------------------------------------
    # failure injection and repair
    # ------------------------------------------------------------------
    def _controller_for_switch(self, switch: str) -> PleromaController:
        for controller in self.controllers:
            if switch in controller.partition:
                return controller
        raise ControllerError(f"no controller owns switch {switch!r}")

    def fail_link(self, a: str, b: str) -> None:
        """Kill a switch-to-switch link (data plane) and repair (control).

        Border links between partitions are not repairable — the paper's
        federation has no redundancy protocol across domains."""
        if not (self.topology.is_switch(a) and self.topology.is_switch(b)):
            raise ControllerError("only switch-to-switch links can fail")
        owner_a = self._controller_for_switch(a)
        owner_b = self._controller_for_switch(b)
        if owner_a is not owner_b:
            raise ControllerError(
                "failover across partition borders is not supported"
            )
        self.network.link_between(a, b).fail()
        owner_a.handle_link_failure(a, b)

    def fail_switch(self, name: str) -> None:
        """Kill a whole switch and let its controller repair around it."""
        if not self.topology.is_switch(name):
            raise ControllerError(f"{name!r} is not a switch")
        owner = self._controller_for_switch(name)
        for neighbor in self.topology.neighbors(name):
            self.network.link_between(name, neighbor).fail()
        owner.handle_switch_failure(name)

    def enable_resilience(
        self,
        probe_period_s: float | None = None,
        miss_threshold: int | None = None,
        seed: int = 0,
        verify: bool = True,
    ) -> "tuple[FailureDetector, RecoveryOrchestrator]":
        """Turn on the self-healing control plane (:mod:`repro.resilience`).

        Starts a :class:`~repro.resilience.detector.FailureDetector` probing
        every switch link and wires its verdicts into a
        :class:`~repro.resilience.orchestrator.RecoveryOrchestrator` that
        repairs the deployment without any oracle knowledge of the failure
        site.  ``fail_link``/``fail_switch`` stay available as the oracle
        alternative (instant repair, no detection latency) — don't combine
        the two on the same failure or it will be repaired twice.

        Single-controller deployments only: federated repair across
        partition borders has no redundancy protocol (Sec. 7 future work).
        """
        from repro.resilience.detector import FailureDetector
        from repro.resilience.orchestrator import RecoveryOrchestrator

        if len(self.controllers) != 1:
            raise ControllerError(
                "resilience requires a single-partition deployment"
            )
        kwargs: dict = {"seed": seed}
        if probe_period_s is not None:
            kwargs["period_s"] = probe_period_s
        if miss_threshold is not None:
            kwargs["miss_threshold"] = miss_threshold
        detector = FailureDetector(self.network, obs=self.obs, **kwargs)
        orchestrator = RecoveryOrchestrator(
            self.controllers[0], detector, obs=self.obs, verify=verify
        )
        detector.listeners.append(orchestrator.on_event)
        detector.start()
        return detector, orchestrator

    # ------------------------------------------------------------------
    # dimension selection (Sec. 5)
    # ------------------------------------------------------------------
    def enable_dimension_selection(
        self, window_size: int = 1000, threshold: float = 0.75
    ) -> TrafficMonitor:
        """Start collecting recent traffic for periodic re-selection.

        Only supported for single-partition deployments: the paper selects
        dimensions per partition but does not define how partitions with
        different dz encodings interoperate, so the reproduction restricts
        re-indexing to the single-controller case.
        """
        if self.federation is not None:
            raise ControllerError(
                "dimension selection requires a single partition"
            )
        self.monitor = TrafficMonitor(
            self.space,
            window_size=window_size,
            threshold=threshold,
            max_dz_length=self.indexer.max_dz_length,
        )
        return self.monitor

    def schedule_dimension_selection(
        self, period_s: float, k: int | None = None
    ) -> "_DimselRecurrence":
        """Re-run dimension selection every ``period_s`` of simulated time.

        This is the paper's adaptive mode: "a controller periodically
        collects information about the events disseminated in the recent
        time window and repeats the dimension selection process."

        The recurrence is traffic-driven: when a period elapses with no new
        publications, it pauses (so draining the simulator terminates) and
        re-arms automatically on the next publish.  Returns a handle whose
        ``cancel()`` stops it for good.
        """
        if self.monitor is None:
            raise ControllerError(
                "call enable_dimension_selection() before scheduling"
            )
        if period_s <= 0:
            raise ControllerError("period must be positive")
        self._dimsel_period = period_s
        self._dimsel_k = k
        self._dimsel_new_events = 0
        self._arm_dimsel()
        return _DimselRecurrence(self)

    def _arm_dimsel(self) -> None:
        self._dimsel_handle = self.sim.schedule(
            self._dimsel_period, self._dimsel_tick
        )

    def _dimsel_tick(self) -> None:
        if self._dimsel_period is None:
            return
        if self._dimsel_new_events:
            self._dimsel_new_events = 0
            self.reselect_dimensions(k=self._dimsel_k)
            self._arm_dimsel()
        else:
            # quiet period: pause; the next publish re-arms the timer
            self._dimsel_handle = None

    def _cancel_dimsel(self) -> None:
        self._dimsel_period = None
        if self._dimsel_handle is not None:
            self._dimsel_handle.cancel()
            self._dimsel_handle = None

    def reselect_dimensions(self, k: int | None = None) -> DimensionSelection:
        """Run one selection round and re-deploy the network accordingly."""
        if self.monitor is None:
            raise ControllerError(
                "call enable_dimension_selection() before reselecting"
            )
        controller = self.controllers[0]
        all_subs = [
            s.subscription
            for s in controller.subscriptions.values()
            if s.subscription is not None
        ]
        selection = self.monitor.reselect(all_subs, k=k)
        reduced = self.space.restrict(selection.selected)
        self.indexer = SpatialIndexer(
            reduced, max_dz_length=self.indexer.max_dz_length
        )
        controller.reindex(self.indexer)
        return selection

    # ------------------------------------------------------------------
    # simulation control
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    def run(self, until: float | None = None) -> None:
        """Drain the simulation (deliver in-flight packets)."""
        self.sim.run(until=until)

    def total_flows_installed(self) -> int:
        """Current number of flow entries across all switches."""
        return sum(len(s.table) for s in self.network.switches.values())

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def enable_sampling(self, period_s: float = 0.01):
        """Sample link utilization and TCAM occupancy every ``period_s``
        of simulated time (pauses in quiet periods; publishing re-arms)."""
        return self.obs.start_sampling(self.network, period_s)

    def enable_telemetry(
        self,
        period_s: float = 0.01,
        rules=None,
        top_k: int = 5,
        latency_s: float | None = None,
    ):
        """Turn on in-band statistics polling and alerting.

        Unlike :meth:`enable_sampling` — whose probes read switch and
        link internals directly (an oracle no real controller has) — this
        starts a :class:`~repro.obs.telemetry.StatsPoller` that learns the
        data-plane state purely from OpenFlow ``FlowStats`` / ``PortStats``
        / ``TableStats`` replies carried over a dedicated
        :class:`~repro.network.control_channel.ControlChannel` (every
        request and reply byte-accounted and latency-delayed), plus an
        :class:`~repro.obs.alerts.AlertEngine` evaluating ``rules``
        (default :data:`~repro.obs.alerts.DEFAULT_ALERT_RULES`) after each
        completed poll round.

        Each switch's ``IP_pub/sub`` diversion is rewired through the
        telemetry channel with the previous handler preserved, so
        controller and federation semantics are unchanged apart from the
        (realistic) control-channel latency on diverted packets.

        Returns ``(poller, engine)``; both are also reachable as
        ``obs.telemetry`` / ``obs.alerts`` and the polled state lands in
        the observability snapshot.
        """
        from repro.network.control_channel import ControlChannel
        from repro.obs.alerts import DEFAULT_ALERT_RULES, AlertEngine
        from repro.obs.telemetry import StatsPoller

        if self.obs.telemetry is not None:
            raise ControllerError("telemetry already enabled")
        kwargs: dict = {} if latency_s is None else {"latency_s": latency_s}
        channel = ControlChannel(
            self.sim, registry=self.obs.registry, **kwargs
        )
        port_peers: dict = {}
        for name in sorted(self.network.switches):
            switch = self.network.switches[name]
            prev = switch.control_handler
            handler = None
            if prev is not None:
                def handler(message, _prev=prev, _sw=switch):
                    _prev(_sw, message.packet, message.in_port)
            channel.connect(switch, handler)
            for port, link in sorted(switch.ports.items()):
                peer, peer_port = link.endpoint_for(switch)
                port_peers[(name, port)] = (
                    peer.name,
                    peer_port,
                    peer.name in self.network.switches,
                )
        poller = StatsPoller(
            self.sim,
            channel,
            self.obs.registry,
            period_s=period_s,
            port_peers=port_peers,
            top_k=top_k,
        ).start()
        engine = AlertEngine(
            registry=self.obs.registry,
            rules=tuple(rules) if rules is not None else DEFAULT_ALERT_RULES,
        )
        self.obs.attach_telemetry(poller, engine)
        return poller, engine

    def enable_flight_recorder(
        self,
        sample_every: int = 1,
        capacity: int = 65_536,
        seed: int = 0,
    ):
        """Record per-packet hop histories on the data plane.

        Off by default (the hooks cost one ``is not None`` test per
        packet when detached).  ``sample_every=N`` records 1 in N packets
        with a decision drawn from a seeded RNG, so identical-seed runs
        sample identically.  See :mod:`repro.obs.flight`.
        """
        return self.obs.enable_flight(
            self.network,
            sample_every=sample_every,
            capacity=capacity,
            seed=seed,
        )

    def disable_flight_recorder(self) -> None:
        """Detach the flight recorder and discard its records."""
        self.obs.disable_flight()

    def flight_report(self):
        """Path analytics over the recorded hop histories: delivery
        trees, delay attribution, drop forensics, path stretch
        (:class:`repro.obs.paths.FlightReport`)."""
        return self.obs.flight_report()

    def obs_snapshot(self, include_spans: bool = True) -> dict:
        """The deployment's full observability state (JSON-compatible)."""
        return self.obs.snapshot(include_spans=include_spans)

    def export_obs(self, path, include_spans: bool = True) -> dict:
        """Write the observability snapshot to ``path`` and return it."""
        from repro.obs.export import write_json

        document = self.obs_snapshot(include_spans=include_spans)
        write_json(document, path)
        return document

    def check_invariants(self) -> None:
        for controller in self.controllers:
            controller.check_invariants()

    def __repr__(self) -> str:
        return (
            f"Pleroma({self.topology.name}, {len(self.controllers)} "
            f"controller(s), {self.space.dimensions}-d space)"
        )
