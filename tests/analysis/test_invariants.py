"""Unit tests for the static data-plane invariant checks.

Each corruption scenario starts from a verified-clean deployment, breaks
one invariant by hand (bypassing the controller's bookkeeping the way a
real bug would) and asserts the matching violation kind is reported.
"""

import pytest

from repro.analysis.invariants import (
    VIOLATION_KINDS,
    check_forwarding,
    check_ledger,
    check_shadowing,
    check_table_drift,
    check_tree_disjointness,
)
from repro.analysis.verify import verify_controller
from repro.controller.tree import SpanningTree
from repro.core.dz import Dz
from repro.core.subscription import Advertisement, Subscription
from repro.middleware.pleroma import Pleroma
from repro.network.flow import Action, FlowEntry
from repro.network.topology import paper_fat_tree, ring


def deploy(topology=None, install_mode="reconcile"):
    middleware = Pleroma(
        topology if topology is not None else paper_fat_tree(),
        dimensions=2,
        install_mode=install_mode,
    )
    hosts = sorted(middleware.topology.hosts())
    middleware.advertise(
        hosts[0], Advertisement.of(d0=(0.0, 0.5), d1=(0.0, 1.0))
    )
    middleware.advertise(
        hosts[1], Advertisement.of(d0=(0.4, 1.0), d1=(0.0, 0.6))
    )
    middleware.subscribe(
        hosts[2], Subscription.of(d0=(0.1, 0.3), d1=(0.2, 0.8))
    )
    middleware.subscribe(
        hosts[-1], Subscription.of(d0=(0.0, 1.0), d1=(0.0, 1.0))
    )
    middleware.subscribe(
        hosts[3], Subscription.of(d0=(0.6, 0.9), d1=(0.0, 0.4))
    )
    return middleware


@pytest.fixture
def controller():
    middleware = deploy()
    ctrl = middleware.controllers[0]
    assert verify_controller(ctrl).ok  # precondition: clean baseline
    return ctrl


class TestCleanState:
    @pytest.mark.parametrize("install_mode", ["reconcile", "incremental"])
    def test_no_violations(self, install_mode):
        ctrl = deploy(install_mode=install_mode).controllers[0]
        report = verify_controller(ctrl)
        assert report.ok, report.render()
        assert set(report.checks_run) == {
            "tree_structure",
            "tree_disjointness",
            "ledger",
            "table_drift",
            "shadowing",
            "forwarding",
        }

    def test_violation_kinds_are_registered(self, controller):
        report = verify_controller(controller)
        assert report.kinds() <= set(VIOLATION_KINDS)


class TestTreeDisjointness:
    def test_duplicate_dz_between_trees(self, controller):
        victim = sorted(controller.trees, key=lambda t: t.tree_id)[0]
        parents = controller.trees.tree_builder(
            controller.topology, controller.partition, victim.root
        )
        rogue = SpanningTree(
            root=victim.root, parents=parents, dz_set=victim.dz_set
        )
        controller.trees.trees[rogue.tree_id] = rogue
        kinds = {v.kind for v in check_tree_disjointness(controller)}
        assert kinds == {"tree_overlap"}


class TestTableDrift:
    def test_missing_entry(self, controller):
        switch = next(
            name
            for name in sorted(controller.partition)
            if controller.installed_table(name).entries()
        )
        entry = controller.installed_table(switch).entries()[0]
        controller.installed_table(switch).remove(entry.match)
        violations = check_table_drift(controller)
        assert {v.kind for v in violations} == {"drift"}
        assert any(
            v.details.get("reason") == "missing_entry" for v in violations
        )

    def test_stale_extra_entry(self, controller):
        switch = sorted(controller.partition)[0]
        stale = FlowEntry.for_dz(
            Dz(controller.ledger.keys_for()[0].dz.bits + "101010"),
            {Action(1)},
        )
        controller.installed_table(switch).install(stale)
        violations = check_table_drift(controller)
        assert any(
            v.kind == "drift" and v.details.get("reason") == "extra_entry"
            for v in violations
        )

    def test_wrong_actions(self, controller):
        switch = next(
            name
            for name in sorted(controller.partition)
            if controller.installed_table(name).entries()
        )
        entry = controller.installed_table(switch).entries()[0]
        ports = sorted(controller.network.switches[switch].ports)
        wrong = next(
            p for p in ports if p not in {a.out_port for a in entry.actions}
        )
        controller.installed_table(switch).install(
            entry.with_actions(entry.actions | {Action(wrong)})
        )
        violations = check_table_drift(controller)
        assert any(
            v.kind == "drift" and v.details.get("reason") == "wrong_entry"
            for v in violations
        )

    def test_foreign_flow(self, controller):
        foreign = "NOT-A-PARTITION-SWITCH"
        key = controller.ledger.keys_for()[0]
        controller.ledger.add(foreign, key.dz, Action(1), key)
        kinds = {v.kind for v in check_table_drift(controller)}
        assert "foreign_flow" in kinds


class TestShadowing:
    def test_corrupted_priority_shadows_finer_entry(self, controller):
        switch, entry = next(
            (name, e)
            for name in sorted(controller.partition)
            for e in controller.installed_table(name).entries()
        )
        table = controller.installed_table(switch)
        finer = FlowEntry.for_dz(entry.dz.child(0), entry.actions)
        table.install(finer)
        # corrupt the coarser entry's priority above the finer one's
        table.install(entry.with_priority(finer.priority + 10))
        violations = check_shadowing(controller)
        assert violations
        assert {v.kind for v in violations} == {"shadowed_rule"}
        assert any(
            v.details["dead_dz"] == finer.dz.bits for v in violations
        )

    def test_clean_tables_have_no_dead_rules(self, controller):
        assert check_shadowing(controller) == []


class TestLedger:
    def test_dangling_subscription_reference(self, controller):
        sub_id = next(
            s
            for s in sorted(controller.subscriptions)
            if controller.ledger.keys_for(sub_id=s)
        )
        del controller.subscriptions[sub_id]
        for tree in controller.trees:
            tree.leave_subscriber(sub_id)
        kinds = {v.kind for v in check_ledger(controller)}
        assert "stale_path" in kinds

    def test_missing_path(self, controller):
        key = controller.ledger.keys_for()[0]
        controller.ledger.remove_key(key)
        kinds = {v.kind for v in check_ledger(controller)}
        assert "missing_path" in kinds

    def test_uncovered_advertisement(self, controller):
        adv_id = sorted(controller.advertisements)[0]
        for tree in controller.trees:
            tree.publishers.pop(adv_id, None)
        kinds = {v.kind for v in check_ledger(controller)}
        assert "uncovered_advertisement" in kinds


class TestForwarding:
    def test_unreached_subscriber_is_a_blackhole(self, controller):
        # cut the subscriber-facing terminal flow on an access switch
        sub_id = next(
            s
            for s in sorted(controller.subscriptions)
            if not controller.subscriptions[s].endpoint.is_virtual
            and controller.ledger.keys_for(sub_id=s)
        )
        endpoint = controller.subscriptions[sub_id].endpoint
        table = controller.installed_table(endpoint.switch)
        for entry in list(table.entries()):
            if any(a.set_dest is not None for a in entry.actions):
                table.remove(entry.match)
        violations = check_forwarding(controller)
        kinds = {v.kind for v in violations}
        assert "blackhole" in kinds

    def test_forwarding_loop_detected(self):
        middleware = Pleroma(ring(num_switches=4), dimensions=2)
        hosts = sorted(middleware.topology.hosts())
        middleware.advertise(hosts[0], Advertisement.of(d0=(0.0, 1.0)))
        middleware.subscribe(hosts[2], Subscription.of(d0=(0.0, 1.0)))
        ctrl = middleware.controllers[0]
        assert verify_controller(ctrl).ok
        dz = ctrl.ledger.keys_for()[0].dz
        # rewire the delivery switch onward around the ring and close the
        # cycle back into the publisher's access switch
        cycle = ["R1", "R2", "R3", "R4", "R1"]
        for here, there in zip(cycle, cycle[1:]):
            port = ctrl.network.port(here, there)
            ctrl.installed_table(here).install(
                FlowEntry.for_dz(dz, {Action(port)})
            )
        violations = check_forwarding(ctrl)
        assert "loop" in {v.kind for v in violations}

    def test_output_to_dead_port_is_a_blackhole(self, controller):
        switch = next(
            name
            for name in sorted(controller.partition)
            if controller.installed_table(name).entries()
        )
        entry = controller.installed_table(switch).entries()[0]
        dead_port = 10_000  # no link attached
        controller.installed_table(switch).install(
            entry.with_actions(frozenset({Action(dead_port)}))
        )
        violations = check_forwarding(controller)
        assert any(
            v.kind == "blackhole" and v.details.get("port") == dead_port
            for v in violations
        )

    def test_delivery_to_nonsubscriber_is_a_misdelivery(self, controller):
        # force a terminal flow towards an unsubscribed host sharing the
        # access switch of the publisher whose probe will traverse it
        key = controller.ledger.keys_for()[0]
        pub = controller.advertisements[key.adv_id].endpoint
        subscribed = {
            s.endpoint.name
            for s in controller.subscriptions.values()
            if not s.endpoint.is_virtual
        }
        host = next(
            h
            for h in sorted(controller.topology.hosts_of(pub.switch))
            if h not in subscribed and h != pub.name
        )
        port = controller.network.port(pub.switch, host)
        address = controller.network.hosts[host].address
        controller.installed_table(pub.switch).install(
            FlowEntry.for_dz(key.dz, {Action(port, set_dest=address)})
        )
        violations = check_forwarding(controller)
        assert "misdelivery" in {v.kind for v in violations}

    def test_determinism(self, controller):
        first = [v.to_dict() for v in check_forwarding(controller)]
        second = [v.to_dict() for v in check_forwarding(controller)]
        assert first == second
