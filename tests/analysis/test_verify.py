"""Tests for the verifier API, the fault-injection harness and the
controller's ``verify_after_each_request`` debug hook."""

import pytest

from repro.analysis.faults import (
    FAULT_INJECTORS,
    FaultInjectionError,
    inject_fault,
)
from repro.analysis.verify import (
    VerificationError,
    verify_controller,
    verify_deployment,
)
from repro.core.subscription import Advertisement, Subscription
from repro.middleware.pleroma import Pleroma
from repro.network.topology import line, paper_fat_tree, ring

from tests.analysis.test_invariants import deploy


class TestReport:
    def test_clean_report_shape(self):
        ctrl = deploy().controllers[0]
        report = verify_controller(ctrl)
        assert report.ok
        assert report.controller == ctrl.name
        assert report.by_kind() == {}
        assert "OK" in report.summary()
        document = report.to_dict()
        assert document["ok"] is True
        assert document["violations"] == []

    def test_skip_forwarding(self):
        ctrl = deploy().controllers[0]
        report = verify_controller(ctrl, include_forwarding=False)
        assert "forwarding" not in report.checks_run
        assert report.ok

    def test_raise_on_violation(self):
        ctrl = deploy().controllers[0]
        inject_fault(ctrl, "dropped_flow_mod")
        with pytest.raises(VerificationError) as excinfo:
            verify_controller(ctrl, raise_on_violation=True)
        assert not excinfo.value.report.ok
        assert "drift" in excinfo.value.report.kinds()

    def test_render_lists_violations(self):
        ctrl = deploy().controllers[0]
        inject_fault(ctrl, "dropped_flow_mod")
        report = verify_controller(ctrl)
        rendered = report.render()
        assert "drift" in rendered
        assert str(len(report.violations)) in report.summary()


class TestDeployment:
    @pytest.mark.parametrize("partitions", [1, 2])
    def test_verify_all_controllers(self, partitions):
        middleware = Pleroma(ring(), dimensions=2, partitions=partitions)
        hosts = sorted(middleware.topology.hosts())
        middleware.advertise(hosts[0], Advertisement.of(d0=(0.0, 1.0)))
        middleware.subscribe(hosts[5], Subscription.of(d0=(0.2, 0.7)))
        reports = verify_deployment(middleware)
        assert len(reports) == partitions
        assert all(report.ok for report in reports)

    def test_accepts_bare_controller_list(self):
        middleware = deploy()
        reports = verify_deployment(middleware.controllers)
        assert len(reports) == 1 and reports[0].ok

    def test_counters_recorded(self):
        middleware = deploy()
        ctrl = middleware.controllers[0]
        verify_deployment(middleware)
        runs = ctrl.obs.registry.counter(
            "analysis.verify.runs", controller=ctrl.name
        ).value
        assert runs == 1


class TestFaultInjection:
    """The acceptance gate: every seeded fault class must be detected as
    (at least) its declared violation kind."""

    @pytest.mark.parametrize("fault", sorted(FAULT_INJECTORS))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_fault_detected_with_expected_kind(self, fault, seed):
        ctrl = deploy().controllers[0]
        assert verify_controller(ctrl).ok
        injection = inject_fault(ctrl, fault, seed=seed)
        report = verify_controller(ctrl)
        assert not report.ok
        assert injection.expected_kinds & report.kinds(), (
            f"{fault}: expected {sorted(injection.expected_kinds)}, "
            f"got {sorted(report.kinds())}"
        )

    @pytest.mark.parametrize("fault", sorted(FAULT_INJECTORS))
    def test_injection_is_deterministic(self, fault):
        """Equal seeds corrupt structurally equal state.  (Ids in the
        description differ: adv/sub counters are process-global.)"""
        ctrl1 = deploy().controllers[0]
        ctrl2 = deploy().controllers[0]
        first = inject_fault(ctrl1, fault, seed=7)
        second = inject_fault(ctrl2, fault, seed=7)
        assert first.name == second.name
        assert first.expected_kinds == second.expected_kinds
        report1 = verify_controller(ctrl1)
        report2 = verify_controller(ctrl2)
        assert report1.by_kind() == report2.by_kind()

    def test_unknown_fault_rejected(self):
        ctrl = deploy().controllers[0]
        with pytest.raises(FaultInjectionError):
            inject_fault(ctrl, "meteor_strike")

    def test_empty_deployment_has_nothing_to_corrupt(self):
        middleware = Pleroma(line(3), dimensions=2)
        with pytest.raises(FaultInjectionError):
            inject_fault(middleware.controllers[0], "dropped_flow_mod")


class TestVerifyAfterEachRequest:
    def test_hook_runs_per_request(self):
        middleware = Pleroma(
            paper_fat_tree(), dimensions=2, verify_after_each_request=True
        )
        hosts = sorted(middleware.topology.hosts())
        adv = middleware.advertise(
            hosts[0], Advertisement.of(d0=(0.0, 0.6))
        )
        sub = middleware.subscribe(
            hosts[4], Subscription.of(d0=(0.2, 0.9))
        )
        middleware.unsubscribe(hosts[4], sub.sub_id)
        middleware.unadvertise(hosts[0], adv.adv_id)
        ctrl = middleware.controllers[0]
        runs = ctrl.obs.registry.counter(
            "analysis.verify.runs", controller=ctrl.name
        ).value
        assert runs == 4

    def test_hook_raises_on_corrupted_state(self):
        middleware = Pleroma(
            paper_fat_tree(), dimensions=2, verify_after_each_request=True
        )
        hosts = sorted(middleware.topology.hosts())
        middleware.advertise(hosts[0], Advertisement.of(d0=(0.0, 0.6)))
        middleware.subscribe(hosts[4], Subscription.of(d0=(0.2, 0.9)))
        inject_fault(middleware.controllers[0], "dropped_flow_mod")
        with pytest.raises(VerificationError):
            middleware.subscribe(
                hosts[5], Subscription.of(d0=(0.0, 1.0))
            )

    def test_hook_off_by_default(self):
        middleware = deploy()
        ctrl = middleware.controllers[0]
        assert ctrl.verify_after_each_request is False
        runs = ctrl.obs.registry.counter(
            "analysis.verify.runs", controller=ctrl.name
        ).value
        assert runs == 0

    def test_churn_under_hook_stays_clean(self):
        """Sustained churn with per-request verification — the paper's
        subscribe/unsubscribe maintenance cycle never leaves dirty state."""
        import random

        middleware = Pleroma(
            ring(num_switches=6),
            dimensions=2,
            verify_after_each_request=True,
        )
        hosts = sorted(middleware.topology.hosts())
        rng = random.Random(13)
        live = []
        for _ in range(20):
            if len(live) < 4 or rng.random() < 0.6:
                host = rng.choice(hosts)
                state = middleware.subscribe(
                    host,
                    Subscription.of(
                        d0=tuple(sorted((rng.random(), rng.random())))
                    ),
                )
                live.append((host, state.sub_id))
            else:
                host, sub_id = live.pop(rng.randrange(len(live)))
                middleware.unsubscribe(host, sub_id)
        middleware.advertise(hosts[0], Advertisement.of(d0=(0.0, 1.0)))
        for host, sub_id in live:
            middleware.unsubscribe(host, sub_id)
