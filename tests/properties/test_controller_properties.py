"""Property-based tests of controller-level invariants.

The headline guarantee of a publish/subscribe system: **no false
negatives** — every subscriber receives every advertised event matching one
of its subscriptions, regardless of workload, and the two installation
strategies behave identically.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Event
from repro.core.subscription import Advertisement, Filter, Subscription
from repro.network.topology import line, paper_fat_tree
from tests.helpers import make_system

int_values = st.integers(min_value=0, max_value=1023)


@st.composite
def filters_1d(draw):
    low = draw(int_values)
    high = draw(st.integers(min_value=low, max_value=1023))
    return Filter.of(attr0=(low, high))


@st.composite
def workloads(draw):
    """A small random workload: per-host subscriptions plus events."""
    subs = draw(
        st.lists(
            st.tuples(st.sampled_from(["h2", "h3", "h4"]), filters_1d()),
            min_size=1,
            max_size=5,
        )
    )
    events = draw(st.lists(int_values, min_size=1, max_size=8))
    return subs, events


class TestNoFalseNegatives:
    @settings(max_examples=40, deadline=None)
    @given(workloads())
    def test_every_matching_event_is_delivered(self, workload):
        subs, events = workload
        system = make_system(line(4), max_dz_length=12)
        system.controller.advertise(
            "h1", Advertisement.of(attr0=(0, 1023))
        )
        host_filters: dict[str, list[Filter]] = {}
        for host, filt in subs:
            system.controller.subscribe("h4" if host == "h1" else host,
                                        Subscription(filter=filt))
            host_filters.setdefault(
                "h4" if host == "h1" else host, []
            ).append(filt)
        for value in events:
            system.publish("h1", Event.of(attr0=value))
        system.run()
        for host, filts in host_filters.items():
            expected = [
                v
                for v in events
                if any(f.matches(Event.of(attr0=v)) for f in filts)
            ]
            got = [e.value("attr0") for e in system.delivered_events(host)]
            for value in expected:
                assert value in got, (
                    f"host {host} missed event {value} (got {got})"
                )

    @settings(max_examples=25, deadline=None)
    @given(workloads())
    def test_install_modes_equivalent(self, workload):
        subs, events = workload
        deliveries = {}
        for mode in ("reconcile", "incremental"):
            system = make_system(line(4), max_dz_length=12, install_mode=mode)
            system.controller.advertise(
                "h1", Advertisement.of(attr0=(0, 1023))
            )
            for host, filt in subs:
                system.controller.subscribe(host, Subscription(filter=filt))
            for value in events:
                system.publish("h1", Event.of(attr0=value))
            system.run()
            deliveries[mode] = {
                host: sorted(
                    e.value("attr0") for e in system.delivered_events(host)
                )
                for host in ("h2", "h3", "h4")
            }
        assert deliveries["reconcile"] == deliveries["incremental"]

    @settings(max_examples=25, deadline=None)
    @given(workloads(), st.integers(min_value=0, max_value=4))
    def test_unsubscribe_preserves_other_subscribers(self, workload, drop_idx):
        """Removing one subscription never disturbs the others."""
        subs, events = workload
        if drop_idx >= len(subs):
            drop_idx = len(subs) - 1
        system = make_system(line(4), max_dz_length=12)
        system.controller.advertise("h1", Advertisement.of(attr0=(0, 1023)))
        states = []
        for host, filt in subs:
            states.append(
                (host, filt, system.controller.subscribe(
                    host, Subscription(filter=filt)
                ))
            )
        dropped_host, _, dropped_state = states[drop_idx]
        system.controller.unsubscribe(dropped_state.sub_id)
        system.controller.check_invariants()
        for value in events:
            system.publish("h1", Event.of(attr0=value))
        system.run()
        survivors: dict[str, list[Filter]] = {}
        for i, (host, filt, _) in enumerate(states):
            if i != drop_idx:
                survivors.setdefault(host, []).append(filt)
        for host, filts in survivors.items():
            got = [e.value("attr0") for e in system.delivered_events(host)]
            for value in events:
                if any(f.matches(Event.of(attr0=value)) for f in filts):
                    assert value in got

    @settings(max_examples=20, deadline=None)
    @given(workloads(), st.lists(st.integers(0, 9), max_size=6))
    def test_history_independence_of_delivery(self, workload, churn):
        """Delivery behaviour depends only on the *surviving* requests,
        not on the order or churn through which they arrived.

        Tree structures may legitimately differ between histories (roots
        depend on arrival order), but the events each host receives must
        not."""
        subs, events = workload

        def deliveries(with_churn: bool):
            system = make_system(line(4), max_dz_length=12)
            system.controller.advertise(
                "h1", Advertisement.of(attr0=(0, 1023))
            )
            if with_churn:
                # transient subscriptions/advertisements, later withdrawn
                transient_subs = []
                transient_advs = []
                for i, index in enumerate(churn):
                    host = ["h2", "h3", "h4"][index % 3]
                    low = (index * 97) % 1024
                    if i % 2 == 0:
                        transient_subs.append(
                            system.controller.subscribe(
                                host,
                                Subscription(
                                    filter=Filter.of(
                                        attr0=(low, min(1023, low + 128))
                                    )
                                ),
                            )
                        )
                    else:
                        transient_advs.append(
                            system.controller.advertise(
                                host,
                                Advertisement(
                                    filter=Filter.of(
                                        attr0=(low, min(1023, low + 64))
                                    )
                                ),
                            )
                        )
                for state in transient_subs:
                    system.controller.unsubscribe(state.sub_id)
                for state in transient_advs:
                    system.controller.unadvertise(state.adv_id)
            for host, filt in subs:
                system.controller.subscribe(host, Subscription(filter=filt))
            for value in events:
                system.publish("h1", Event.of(attr0=value))
            system.run()
            system.controller.check_invariants()
            return {
                host: sorted(
                    e.value("attr0") for e in system.delivered_events(host)
                )
                for host in ("h2", "h3", "h4")
            }

        assert deliveries(False) == deliveries(True)

    @settings(max_examples=15, deadline=None)
    @given(workloads())
    def test_tree_merging_preserves_delivery(self, workload):
        """An aggressive merge threshold must not lose events."""
        subs, events = workload
        publishers = ["h1", "h2", "h5", "h7"]
        system = make_system(
            paper_fat_tree(), max_dz_length=12, merge_threshold=1
        )
        # several publishers with narrow advertisements force merges
        quarters = [(0, 255), (256, 511), (512, 767), (768, 1023)]
        for host, quarter in zip(publishers, quarters):
            system.controller.advertise(
                host, Advertisement.of(attr0=quarter)
            )
        system.controller.subscribe("h8", Subscription.of(attr0=(0, 1023)))
        system.controller.check_invariants()
        for value in events:
            publisher = publishers[value * 4 // 1024]
            system.publish(publisher, Event.of(attr0=value))
        system.run()
        got = [e.value("attr0") for e in system.delivered_events("h8")]
        for value in events:
            if publishers[value * 4 // 1024] != "h8":
                assert value in got
