"""Property-based round-trip tests for the wire codecs."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.codec import (
    decode_dzset,
    decode_event,
    decode_filter,
    decode_subscription,
    encode_dzset,
    encode_event,
    encode_filter,
    encode_subscription,
    from_bytes,
    to_bytes,
)
from repro.core.dz import Dz
from repro.core.dzset import DzSet
from repro.core.events import Event
from repro.core.subscription import Filter, Subscription

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8
)
finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9
)


@st.composite
def events(draw):
    values = draw(
        st.dictionaries(names, finite, min_size=0, max_size=5)
    )
    return Event(values=values, event_id=draw(st.integers(0, 2**31)))


@st.composite
def filters(draw):
    predicates = {}
    for name in draw(st.lists(names, max_size=4, unique=True)):
        low = draw(finite)
        high = draw(
            st.floats(
                min_value=low,
                max_value=1e9,
                allow_nan=False,
                allow_infinity=False,
            )
        )
        predicates[name] = (low, high)
    return Filter.of(**predicates)


dzsets = st.lists(
    st.text(alphabet="01", max_size=10), max_size=6
).map(lambda items: DzSet.of(*items))


class TestRoundTripProperties:
    @given(events())
    def test_event(self, event):
        assert decode_event(from_bytes(to_bytes(encode_event(event)))) == event

    @given(filters())
    def test_filter(self, filt):
        assert decode_filter(encode_filter(filt)) == filt

    @given(filters())
    def test_subscription(self, filt):
        sub = Subscription(filter=filt)
        decoded = decode_subscription(
            from_bytes(to_bytes(encode_subscription(sub)))
        )
        assert decoded == sub
        assert decoded.sub_id == sub.sub_id

    @given(dzsets)
    def test_dzset(self, dzset):
        assert decode_dzset(encode_dzset(dzset)) == dzset

    @given(events())
    def test_bytes_are_stable(self, event):
        a = to_bytes(encode_event(event))
        b = to_bytes(encode_event(decode_event(from_bytes(a))))
        assert a == b
