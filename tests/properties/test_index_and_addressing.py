"""Property-based tests: spatial index soundness, addressing round trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addressing import (
    address_to_dz,
    dz_to_address,
    dz_to_prefix,
    prefix_to_dz,
)
from repro.core.dz import Dz
from repro.core.events import Event, EventSpace
from repro.core.spatial_index import SpatialIndexer
from repro.core.subscription import Filter, Subscription

bits = st.text(alphabet="01", min_size=0, max_size=40)

SPACE = EventSpace.paper_schema(3)
INDEXER = SpatialIndexer(SPACE, max_dz_length=15, max_cells=64)

int_values = st.integers(min_value=0, max_value=1023)


@st.composite
def integer_events(draw):
    return Event.of(
        attr0=draw(int_values), attr1=draw(int_values), attr2=draw(int_values)
    )


@st.composite
def integer_filters(draw):
    """Random rectangular subscriptions over 1-3 of the dimensions."""
    names = draw(
        st.lists(
            st.sampled_from(["attr0", "attr1", "attr2"]),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    ranges = {}
    for name in names:
        low = draw(int_values)
        high = draw(st.integers(min_value=low, max_value=1023))
        ranges[name] = (low, high)
    return Filter.of(**ranges)


class TestAddressingProperties:
    @given(bits)
    def test_round_trip(self, b):
        dz = Dz(b)
        assert prefix_to_dz(dz_to_prefix(dz)) == dz
        assert address_to_dz(dz_to_address(dz), len(dz)) == dz

    @given(bits, bits)
    def test_prefix_covering_mirrors_dz_covering(self, a, b):
        assert dz_to_prefix(Dz(a)).covers(dz_to_prefix(Dz(b))) == Dz(a).covers(
            Dz(b)
        )

    @given(bits, bits)
    def test_event_address_matches_iff_flow_covers(self, flow_bits, event_bits):
        """Holds whenever the event dz is at least as long as the flow dz —
        which the system guarantees: events carry maximal-length dz, flows
        carry (shorter) subscription overlaps.  A *shorter* event dz can
        spuriously match through zero padding, which is exactly why events
        are stamped with maximum length (Sec. 2)."""
        if len(event_bits) < len(flow_bits):
            event_bits = (event_bits + "0" * len(flow_bits))[: len(flow_bits)]
        flow = dz_to_prefix(Dz(flow_bits))
        address = dz_to_address(Dz(event_bits))
        assert flow.matches(address) == Dz(flow_bits).covers(Dz(event_bits))


class TestSpatialIndexSoundness:
    @settings(max_examples=60, deadline=None)
    @given(integer_filters(), integer_events())
    def test_no_false_negatives(self, filt, event):
        """Every event matching a filter must land inside the filter's
        enclosing DZ approximation — the network may over-deliver but never
        under-deliver."""
        sub = Subscription(filter=filt)
        if sub.matches(event):
            region = INDEXER.filter_to_dzset(filt)
            assert INDEXER.matches(region, event)

    @settings(max_examples=60, deadline=None)
    @given(integer_filters())
    def test_members_within_length(self, filt):
        region = INDEXER.filter_to_dzset(filt)
        assert all(len(dz) <= INDEXER.max_dz_length for dz in region)
        assert len(region) <= INDEXER.max_cells

    @settings(max_examples=60, deadline=None)
    @given(integer_filters())
    def test_coarser_budget_over_approximates(self, filt):
        tight = SpatialIndexer(SPACE, max_dz_length=15, max_cells=4)
        assert tight.filter_to_dzset(filt).covers(INDEXER.filter_to_dzset(filt))

    @settings(max_examples=100, deadline=None)
    @given(integer_events(), st.integers(min_value=1, max_value=15))
    def test_event_dz_nested_across_lengths(self, event, length):
        """Truncating the indexing length coarsens the event's cell: the
        shorter dz is always a prefix of the longer one."""
        fine = INDEXER.event_to_dz(event, length=15)
        coarse = INDEXER.event_to_dz(event, length=length)
        assert coarse.covers(fine)

    @settings(max_examples=100, deadline=None)
    @given(integer_events())
    def test_event_point_in_own_cell(self, event):
        dz = INDEXER.event_to_dz(event)
        cell = INDEXER.cell(dz)
        for coordinate, (lo, hi) in zip(SPACE.point(event), cell):
            assert lo <= coordinate < hi
