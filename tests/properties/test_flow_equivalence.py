"""Property-based equivalence of the two flow-maintenance formulations.

Algorithm 1's incremental cases 1-5 (:func:`flow_addition`) and the
declarative reconciler (:func:`desired_flows`) must yield *behaviourally*
identical switch tables after any sequence of additions: for every incoming
event address, the executed action set is the same.  The reconciled table
is additionally minimal.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.flow_installer import flow_addition
from repro.controller.reconciler import apply_diff, desired_flows, diff_table
from repro.core.addressing import dz_to_address
from repro.core.dz import Dz
from repro.network.flow import Action, FlowTable

bits = st.text(alphabet="01", min_size=0, max_size=6)
actions = st.builds(
    Action,
    out_port=st.integers(min_value=1, max_value=4),
    set_dest=st.one_of(st.none(), st.integers(min_value=1, max_value=3)),
)
contribution_sequences = st.lists(
    st.tuples(bits, actions), min_size=1, max_size=12
)


def forwarding_behaviour(table: FlowTable) -> dict[str, frozenset[Action]]:
    """The action set executed for every probe address (all dz of length 7)."""
    behaviour = {}
    for value in range(2 ** 7):
        probe = format(value, "07b")
        entry = table.lookup(dz_to_address(Dz(probe)))
        behaviour[probe] = entry.actions if entry else frozenset()
    return behaviour


def build_incremental(sequence) -> FlowTable:
    table = FlowTable()
    for dz_bits, action in sequence:
        flow_addition(table, Dz(dz_bits), {action})
    return table


def build_reconciled(sequence) -> FlowTable:
    contributions: dict[Dz, set[Action]] = {}
    for dz_bits, action in sequence:
        contributions.setdefault(Dz(dz_bits), set()).add(action)
    table = FlowTable()
    desired = desired_flows(
        {dz: frozenset(acts) for dz, acts in contributions.items()}
    )
    apply_diff(table, diff_table(table, desired))
    return table


class TestEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(contribution_sequences)
    def test_incremental_matches_reconciled_behaviour(self, sequence):
        incremental = build_incremental(sequence)
        reconciled = build_reconciled(sequence)
        assert forwarding_behaviour(incremental) == forwarding_behaviour(
            reconciled
        )

    @settings(max_examples=120, deadline=None)
    @given(contribution_sequences)
    def test_incremental_order_independent_behaviour(self, sequence):
        forward = build_incremental(sequence)
        backward = build_incremental(list(reversed(sequence)))
        assert forwarding_behaviour(forward) == forwarding_behaviour(backward)

    @settings(max_examples=120, deadline=None)
    @given(contribution_sequences)
    def test_reconciled_reachable_entries_are_necessary(self, sequence):
        """Dropping any entry the TCAM actually executes changes behaviour.

        (An entry fully shadowed by both its children is unreachable and
        therefore exempt — removing it is a no-op by construction.)
        """
        reconciled = build_reconciled(sequence)
        reference = forwarding_behaviour(reconciled)
        executed_matches = set()
        for value in range(2 ** 7):
            entry = reconciled.lookup(dz_to_address(Dz(format(value, "07b"))))
            if entry is not None:
                executed_matches.add(entry.match)
        for entry in reconciled.entries():
            if entry.match not in executed_matches:
                continue
            reconciled.remove(entry.match)
            assert forwarding_behaviour(reconciled) != reference
            reconciled.install(entry)

    @settings(max_examples=120, deadline=None)
    @given(contribution_sequences)
    def test_every_contribution_honoured(self, sequence):
        """Any event inside a contributed dz must execute at least that
        contribution's action (no lost forwarding legs)."""
        table = build_reconciled(sequence)
        for dz_bits, action in sequence:
            probe = (dz_bits + "0" * 7)[:7]
            entry = table.lookup(dz_to_address(Dz(probe)))
            assert entry is not None
            assert action in entry.actions

    @settings(max_examples=100, deadline=None)
    @given(contribution_sequences)
    def test_priorities_strictly_finer_wins(self, sequence):
        """In the reconciled table, matching entries are totally ordered by
        (priority, specificity) with the finest dz executing."""
        table = build_reconciled(sequence)
        for value in range(2 ** 7):
            probe = dz_to_address(Dz(format(value, "07b")))
            matches = table.matching_entries(probe)
            if len(matches) > 1:
                executed = table.lookup(probe)
                finest = max(matches, key=lambda e: e.match.prefix_len)
                assert executed is finest
                # the executed action set subsumes all coarser matches
                for other in matches:
                    assert executed.actions >= other.actions
