"""Property-based tests for failure repair.

On a 2-edge-connected fabric (the fat tree core), the repair machinery
must preserve the delivery contract across any single internal link
failure and any sequence of survivable failures.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Event
from repro.core.subscription import Advertisement, Subscription
from repro.middleware.pleroma import Pleroma
from repro.network.topology import paper_fat_tree, ring

int_values = st.integers(min_value=0, max_value=1023)


def _switch_edges(topology):
    return sorted(
        (spec.a, spec.b)
        for spec in topology.links()
        if topology.is_switch(spec.a) and topology.is_switch(spec.b)
    )


class TestSingleFailure:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=15),
        st.lists(int_values, min_size=1, max_size=5),
    )
    def test_any_single_fat_tree_link_survivable(self, edge_index, values):
        """The fat tree stays connected after any one switch-switch link
        dies; repair must preserve every matching delivery."""
        middleware = Pleroma(paper_fat_tree(), dimensions=1, max_dz_length=10)
        publisher = middleware.publisher("h1")
        publisher.advertise(Advertisement.of(attr0=(0, 1023)).filter)
        subscriber = middleware.subscriber("h8")
        subscriber.subscribe(Subscription.of(attr0=(0, 1023)).filter)
        edges = _switch_edges(middleware.topology)
        a, b = edges[edge_index % len(edges)]
        middleware.fail_link(a, b)
        for i, value in enumerate(values):
            publisher.publish(Event.of(event_id=i + 1, attr0=value))
        middleware.run()
        assert len(subscriber.matched) == len(values)
        middleware.check_invariants()

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=15),
            min_size=1,
            max_size=3,
            unique=True,
        ),
        st.lists(int_values, min_size=1, max_size=4),
    )
    def test_sequential_failures_until_disconnection(self, edge_indices, values):
        """Multiple failures: each either repairs cleanly or raises on
        genuine disconnection — it must never silently lose events."""
        from repro.exceptions import ControllerError

        middleware = Pleroma(paper_fat_tree(), dimensions=1, max_dz_length=10)
        publisher = middleware.publisher("h1")
        publisher.advertise(Advertisement.of(attr0=(0, 1023)).filter)
        subscriber = middleware.subscriber("h8")
        subscriber.subscribe(Subscription.of(attr0=(0, 1023)).filter)
        edges = _switch_edges(middleware.topology)
        survived = True
        for index in edge_indices:
            a, b = edges[index % len(edges)]
            if frozenset((a, b)) not in {
                frozenset((s.a, s.b)) for s in middleware.topology.links()
            }:
                continue  # already removed by an earlier failure
            try:
                middleware.fail_link(a, b)
            except ControllerError:
                survived = False
                break
        if not survived:
            return  # disconnection correctly refused
        for i, value in enumerate(values):
            publisher.publish(Event.of(event_id=i + 1, attr0=value))
        middleware.run()
        assert len(subscriber.matched) == len(values)
        middleware.check_invariants()


class TestRingRepair:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=5),
        st.lists(int_values, min_size=1, max_size=4),
    )
    def test_ring_survives_any_single_link(self, edge_index, values):
        middleware = Pleroma(ring(6), dimensions=1, max_dz_length=8)
        publisher = middleware.publisher("h1")
        publisher.advertise(Advertisement.of(attr0=(0, 1023)).filter)
        subscriber = middleware.subscriber("h4")
        subscriber.subscribe(Subscription.of(attr0=(0, 1023)).filter)
        edges = _switch_edges(middleware.topology)
        a, b = edges[edge_index % len(edges)]
        middleware.fail_link(a, b)
        for i, value in enumerate(values):
            publisher.publish(Event.of(event_id=i + 1, attr0=value))
        middleware.run()
        assert len(subscriber.matched) == len(values)
