"""The dz-trie's incremental desired-state must equal the from-scratch
reconciler after any add/remove sequence — including the closure-patching
strategy the controller uses."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.dztrie import DzTrie
from repro.controller.reconciler import desired_flows
from repro.core.dz import Dz
from repro.network.flow import Action, FlowEntry, FlowTable

bits = st.text(alphabet="01", min_size=0, max_size=5)
actions = st.builds(Action, out_port=st.integers(min_value=1, max_value=3))
operations = st.lists(
    st.tuples(st.booleans(), bits, actions), min_size=1, max_size=20
)


def apply_ops(ops):
    """Run ops through the trie, mirroring holder counts for removals."""
    trie = DzTrie()
    holders: dict[tuple[str, Action], int] = {}
    for is_add, dz_bits, action in ops:
        key = (dz_bits, action)
        if is_add:
            trie.add(Dz(dz_bits), action)
            holders[key] = holders.get(key, 0) + 1
        elif holders.get(key, 0) > 0:
            trie.remove(Dz(dz_bits), action)
            holders[key] -= 1
    return trie, holders


class TestTrieMatchesReconciler:
    @settings(max_examples=150, deadline=None)
    @given(operations)
    def test_desired_entries_equal(self, ops):
        trie, holders = apply_ops(ops)
        contributions: dict[Dz, set[Action]] = {}
        for (dz_bits, action), count in holders.items():
            if count > 0:
                contributions.setdefault(Dz(dz_bits), set()).add(action)
        spec = desired_flows(
            {dz: frozenset(a) for dz, a in contributions.items()}
        )
        # the trie must agree on every contributed dz and report None
        # everywhere else (probe all dz up to the max length used)
        probes = {Dz(b) for _, b, _ in ops}
        probes |= set(spec)
        for dz in probes:
            assert trie.desired_entry(dz) == spec.get(dz), f"dz={dz}"

    @settings(max_examples=100, deadline=None)
    @given(operations)
    def test_closure_patching_converges_to_spec(self, ops):
        """Applying the controller's patch rule (re-evaluate changed dz and
        their descendants after each op) keeps the table at the reconciled
        desired state."""
        trie = DzTrie()
        holders: dict[tuple[str, Action], int] = {}
        table = FlowTable()
        for is_add, dz_bits, action in ops:
            dz = Dz(dz_bits)
            key = (dz_bits, action)
            if is_add:
                changed = trie.add(dz, action)
                holders[key] = holders.get(key, 0) + 1
            elif holders.get(key, 0) > 0:
                changed = trie.remove(dz, action)
                holders[key] -= 1
            else:
                continue
            if not changed:
                continue
            closure = {dz, *trie.descendants(dz)}
            for probe in closure:
                desired = trie.desired_entry(probe)
                current = table.get_dz(probe)
                if desired is None:
                    if current is not None:
                        table.remove(current.match)
                elif current is None or current.actions != desired:
                    table.install(FlowEntry.for_dz(probe, desired))
        spec = desired_flows(trie.contributions())
        assert {e.dz: e.actions for e in table} == spec
