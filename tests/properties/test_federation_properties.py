"""Property-based tests of multi-partition interoperability.

Whatever the workload and partitioning, the federation must preserve the
pub/sub contract: every advertised event matching a subscription arrives
at its subscriber **exactly once**, regardless of which partitions the
publisher and subscriber live in.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Event
from repro.core.subscription import Advertisement, Subscription
from repro.network.topology import line, ring
from tests.helpers import make_federated_system

int_values = st.integers(min_value=0, max_value=1023)


@st.composite
def federated_workloads(draw):
    partitions = draw(st.integers(min_value=1, max_value=3))
    pub_host = draw(st.sampled_from(["h1", "h3", "h5"]))
    subs = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["h2", "h4", "h6"]),
                int_values,
                int_values,
            ),
            min_size=1,
            max_size=4,
        )
    )
    events = draw(st.lists(int_values, min_size=1, max_size=6))
    use_ring = draw(st.booleans())
    return partitions, pub_host, subs, events, use_ring


class TestFederatedContract:
    @settings(max_examples=25, deadline=None)
    @given(federated_workloads())
    def test_exactly_once_matching_delivery(self, workload):
        partitions, pub_host, subs, events, use_ring = workload
        topo = ring(6) if use_ring else line(6)
        system = make_federated_system(topo, partitions, max_dz_length=10)
        system.federation.advertise(
            pub_host, Advertisement.of(attr0=(0, 1023))
        )
        system.run()
        host_filters: dict[str, list] = {}
        for host, lo, hi in subs:
            low, high = min(lo, hi), max(lo, hi)
            sub = Subscription.of(attr0=(low, high))
            system.federation.subscribe(host, sub)
            host_filters.setdefault(host, []).append(sub)
            system.run()
        for i, value in enumerate(events):
            system.publish(pub_host, Event.of(event_id=i + 1, attr0=value))
        system.run()
        for host, filters in host_filters.items():
            if host == pub_host:
                continue
            got = [e.value("attr0") for e in system.delivered_events(host)]
            for value in events:
                matching = any(
                    f.matches(Event.of(attr0=value)) for f in filters
                )
                if matching:
                    # at least once (no false negatives) ...
                    assert value in got, (
                        f"{host} missed {value} over {partitions} partitions"
                    )
            # ... and never twice (no cyclic duplication)
            from collections import Counter

            counts = Counter(
                e.event_id for e in system.delivered_events(host)
            )
            assert all(c == 1 for c in counts.values()), counts
        system.federation.check_invariants()

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=1, max_value=3),
        st.lists(
            st.tuples(
                st.sampled_from(["h2", "h4", "h6"]),
                int_values,
                int_values,
            ),
            min_size=2,
            max_size=5,
        ),
        st.lists(st.integers(0, 4), max_size=3),
        st.lists(int_values, min_size=1, max_size=5),
    )
    def test_withdrawal_churn_preserves_survivors(
        self, partitions, subs, drops, events
    ):
        """Unsubscribing some random subset (including covering/covered
        combinations) never disturbs the survivors, across partitions."""
        system = make_federated_system(line(6), partitions, max_dz_length=10)
        system.federation.advertise("h1", Advertisement.of(attr0=(0, 1023)))
        system.run()
        states = []
        for host, lo, hi in subs:
            low, high = min(lo, hi), max(lo, hi)
            sub = Subscription.of(attr0=(low, high))
            state = system.federation.subscribe(host, sub)
            states.append((host, sub, state))
            system.run()
        dropped = set()
        for index in drops:
            pos = index % len(states)
            if pos in dropped:
                continue
            host, _, state = states[pos]
            system.federation.unsubscribe(host, state.sub_id)
            dropped.add(pos)
            system.run()
        for i, value in enumerate(events):
            system.publish("h1", Event.of(event_id=i + 1, attr0=value))
        system.run()
        from collections import Counter

        survivors: dict[str, list] = {}
        for pos, (host, sub, _) in enumerate(states):
            if pos not in dropped:
                survivors.setdefault(host, []).append(sub)
        for host, filters in survivors.items():
            if host == "h1":
                continue
            got = Counter(
                e.event_id for e in system.delivered_events(host)
            )
            for i, value in enumerate(events):
                if any(f.matches(Event.of(attr0=value)) for f in filters):
                    assert got[i + 1] == 1, (
                        f"{host} got event {i + 1} {got[i + 1]} times "
                        f"after dropping {sorted(dropped)}"
                    )
        system.federation.check_invariants()

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=1, max_value=3),
        st.lists(int_values, min_size=1, max_size=5),
    )
    def test_partition_count_invisible_to_clients(self, partitions, events):
        """The same workload delivers the same matched events whether the
        network is one partition or several."""
        outcomes = []
        for count in (1, partitions):
            system = make_federated_system(line(6), count, max_dz_length=10)
            system.federation.advertise(
                "h1", Advertisement.of(attr0=(0, 1023))
            )
            system.run()
            system.federation.subscribe(
                "h6", Subscription.of(attr0=(0, 511))
            )
            system.run()
            for i, value in enumerate(events):
                system.publish("h1", Event.of(event_id=i + 1, attr0=value))
            system.run()
            outcomes.append(
                sorted(
                    e.event_id for e in system.delivered_events("h6")
                )
            )
        assert outcomes[0] == outcomes[1]
