"""Cross-run determinism: same seed, same bytes.

Two layers of guarantee:

* **in-process** — running the quickstart scenario twice in one
  interpreter yields identical delivery records and byte-identical
  observability snapshots (no hidden global state leaks between
  deployments);
* **cross-process** — two interpreters with *different*
  ``PYTHONHASHSEED`` values produce byte-identical output.  This is the
  regression test for the switch jitter RNG, which was once seeded with
  the salted ``hash(name)`` and silently diverged between runs.
"""

import json
import os
import random
import subprocess
import sys
from pathlib import Path

import repro
from repro.core.events import Event
from repro.core.subscription import Filter
from repro.middleware.pleroma import Pleroma
from repro.network.topology import paper_fat_tree


def run_quickstart() -> Pleroma:
    """The README quickstart, plus sampling: one publisher, one
    subscriber, a burst of events through the paper's fat-tree."""
    rng = random.Random(7)
    middleware = Pleroma(paper_fat_tree(), dimensions=2, max_dz_length=12)
    middleware.enable_sampling(period_s=2e-3)
    publisher = middleware.publisher("h1")
    publisher.advertise(Filter.of())
    subscriber = middleware.subscriber("h8")
    subscriber.subscribe(Filter.of(attr0=(0, 511)))
    for i in range(25):
        middleware.sim.schedule(
            i * 1e-3,
            middleware.publish,
            "h1",
            Event.of(attr0=rng.uniform(0, 1023), attr1=rng.uniform(0, 1023)),
        )
    middleware.run()
    return middleware


class TestInProcessDeterminism:
    def test_quickstart_twice_identical(self):
        first = run_quickstart()
        second = run_quickstart()
        assert first.metrics.records == second.metrics.records
        assert first.metrics.published == second.metrics.published
        assert (
            first.obs.registry.snapshot() == second.obs.registry.snapshot()
        )
        # and the full snapshots serialise to identical bytes (spans and
        # trace summaries contain no wall-clock values)
        a = json.dumps(first.obs_snapshot(), sort_keys=True)
        b = json.dumps(second.obs_snapshot(), sort_keys=True)
        assert a == b


_SCRIPT = """
import json
import random

from repro.core.events import Event
from repro.core.subscription import Filter
from repro.middleware.pleroma import Pleroma
from repro.network.switch import Switch
from repro.network.topology import paper_fat_tree
from repro.sim.engine import Simulator

# raw jitter samples: the switch RNG seed must not depend on hash(name)
sim = Simulator()
for name in ("R1", "edge-3", "core/0"):
    rng = Switch(sim, name)._rng
    print(name, [rng.uniform(0.0, 1e-6) for _ in range(5)])

rng = random.Random(7)
middleware = Pleroma(paper_fat_tree(), dimensions=2, max_dz_length=12)
middleware.enable_sampling(period_s=2e-3)
middleware.publisher("h1").advertise(Filter.of())
middleware.subscriber("h8").subscribe(Filter.of(attr0=(0, 511)))
for i in range(20):
    middleware.sim.schedule(
        i * 1e-3,
        middleware.publish,
        "h1",
        Event.of(attr0=rng.uniform(0, 1023), attr1=rng.uniform(0, 1023)),
    )
middleware.run()
print(json.dumps(middleware.obs_snapshot(), sort_keys=True))
"""


class TestHashSeedInvariance:
    def test_different_hash_seeds_identical_output(self, tmp_path):
        script = tmp_path / "scenario.py"
        script.write_text(_SCRIPT, encoding="utf-8")
        src_dir = str(Path(repro.__file__).resolve().parents[1])

        def run(seed: str) -> bytes:
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = src_dir
            result = subprocess.run(
                [sys.executable, str(script)],
                capture_output=True,
                env=env,
                timeout=300,
            )
            assert result.returncode == 0, result.stderr.decode()
            return result.stdout

        assert run("0") == run("424242")


class TestFlightTraceDeterminism:
    """Same-seed ``trace`` runs export byte-identical documents — packet
    ids are process-global, so this must compare fresh interpreters."""

    def test_trace_exports_byte_identical(self, tmp_path):
        src_dir = str(Path(repro.__file__).resolve().parents[1])

        def run(tag: str, hash_seed: str) -> tuple[bytes, bytes]:
            out = tmp_path / f"trace-{tag}.json"
            chrome = tmp_path / f"chrome-{tag}.json"
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = src_dir
            result = subprocess.run(
                [
                    sys.executable, "-m", "repro", "trace",
                    "--events", "20", "--seed", "11", "--fail-link",
                    "--out", str(out), "--chrome-out", str(chrome),
                ],
                capture_output=True,
                env=env,
                timeout=300,
            )
            assert result.returncode == 0, result.stderr.decode()
            return out.read_bytes(), chrome.read_bytes()

        assert run("a", "0") == run("b", "31337")
