"""Property tests for detector-driven repair (no oracle failure path).

For ANY single switch-link failure on EVERY built-in topology, the
self-healing loop must leave the deployment statically verified with zero
violations, every still-connected subscriber must keep receiving, and the
whole episode must be same-seed deterministic.
"""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.verify import verify_controller
from repro.core.events import Event
from repro.core.subscription import Filter
from repro.middleware.pleroma import Pleroma
from repro.network.topology import (
    line,
    mininet_fat_tree,
    paper_fat_tree,
    ring,
)

TOPOLOGIES = {
    "line": lambda: line(4),
    "mininet-fat-tree": mininet_fat_tree,
    "paper-fat-tree": paper_fat_tree,
    "ring": lambda: ring(6),
}


def _switch_edges(topology):
    return sorted(
        tuple(sorted((spec.a, spec.b)))
        for spec in topology.links()
        if topology.is_switch(spec.a) and topology.is_switch(spec.b)
    )


def run_episode(name: str, edge_index: int, seed: int) -> dict:
    """Cut one link under detector-driven repair; return the outcome."""
    middleware = Pleroma(TOPOLOGIES[name](), dimensions=2, max_dz_length=10)
    detector, orchestrator = middleware.enable_resilience(seed=seed)
    hosts = sorted(middleware.topology.hosts())
    publisher, listeners = hosts[0], hosts[1:]
    middleware.publisher(publisher).advertise(Filter.of())
    clients = {}
    for host in listeners:
        client = middleware.subscriber(host)
        client.subscribe(Filter.of())
        clients[host] = client
    edges = _switch_edges(middleware.topology)
    a, b = edges[edge_index % len(edges)]
    middleware.sim.schedule_at(
        0.005, middleware.network.link_between(a, b).fail
    )
    # long enough for phase + miss budget + repair on any seed
    middleware.run(until=0.005 + 6 * detector.period_s + 0.005)
    detector.stop()

    # who is still connected to the publisher after the cut?
    graph = nx.Graph()
    graph.add_nodes_from(
        s for s in middleware.topology.switches()
    )
    graph.add_edges_from(e for e in edges if e != (a, b))
    pub_switch = middleware.topology.access_switch(publisher)
    reachable = nx.node_connected_component(graph, pub_switch)
    connected = [
        h
        for h in listeners
        if middleware.topology.access_switch(h) in reachable
    ]

    middleware.publish(publisher, Event.of(attr0=1.0, attr1=1.0))
    middleware.run()
    report = verify_controller(middleware.controllers[0])
    return {
        "edge": (a, b),
        "verifier_ok": report.ok,
        "violations": len(report.violations),
        "received": sorted(h for h, c in clients.items() if len(c.matched) == 1),
        "connected": sorted(connected),
        "events": [
            (e.kind, e.subject, e.time, e.misses) for e in detector.events
        ],
        "repairs": [r.to_dict() for r in orchestrator.records],
    }


class TestAnySingleLinkFailure:
    @settings(max_examples=20, deadline=None)
    @given(
        st.sampled_from(sorted(TOPOLOGIES)),
        st.integers(min_value=0, max_value=63),
    )
    def test_repaired_state_verifies_clean_and_delivers(self, name, edge_index):
        outcome = run_episode(name, edge_index, seed=0)
        assert outcome["verifier_ok"]
        assert outcome["violations"] == 0
        # every subscriber still connected to the publisher got the probe
        # event (degraded mode must not under-deliver within the primary)
        assert outcome["received"] == outcome["connected"]

    @settings(max_examples=8, deadline=None)
    @given(
        st.sampled_from(sorted(TOPOLOGIES)),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=3),
    )
    def test_episode_is_same_seed_deterministic(self, name, edge_index, seed):
        assert run_episode(name, edge_index, seed) == run_episode(
            name, edge_index, seed
        )
