"""Property-based tests for the dz algebra and DZ sets."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dz import ROOT, Dz
from repro.core.dzset import DzSet

bits = st.text(alphabet="01", min_size=0, max_size=12)
dzs = bits.map(Dz)
dz_lists = st.lists(bits, min_size=0, max_size=8).map(
    lambda items: DzSet.of(*items)
)


def region_contains(dzset: DzSet, probe: Dz) -> bool:
    """Semantic membership: does the region fully contain the probe cell?"""
    return dzset.covers_dz(probe)


@st.composite
def probes(draw):
    """A fine probe cell used to compare regions semantically."""
    return Dz(draw(st.text(alphabet="01", min_size=14, max_size=14)))


class TestCoverPartialOrder:
    @given(dzs)
    def test_reflexive(self, a):
        assert a.covers(a)

    @given(dzs, dzs)
    def test_antisymmetric(self, a, b):
        if a.covers(b) and b.covers(a):
            assert a == b

    @given(dzs, dzs, dzs)
    def test_transitive(self, a, b, c):
        if a.covers(b) and b.covers(c):
            assert a.covers(c)

    @given(dzs, dzs)
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(dzs, dzs)
    def test_intersect_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(dzs, dzs)
    def test_intersect_is_the_longer(self, a, b):
        hit = a.intersect(b)
        if hit is not None:
            assert hit in (a, b)
            assert len(hit) == max(len(a), len(b))


class TestSubtract:
    @given(dzs, dzs)
    def test_pieces_disjoint_from_subtrahend(self, a, b):
        for piece in a.subtract(b):
            assert not piece.overlaps(b)

    @given(dzs, dzs)
    def test_pieces_inside_original(self, a, b):
        for piece in a.subtract(b):
            assert a.covers(piece)

    @given(dzs, dzs)
    def test_measure_conserved(self, a, b):
        """|a - b| + |a ∩ b| = |a|."""
        remainder = sum(2.0 ** -len(p) for p in a.subtract(b))
        hit = a.intersect(b)
        overlap = 2.0 ** -len(hit) if hit is not None else 0.0
        assert abs(remainder + overlap - 2.0 ** -len(a)) < 1e-12

    @given(dzs, dzs)
    def test_pieces_pairwise_disjoint(self, a, b):
        pieces = a.subtract(b)
        for i, p in enumerate(pieces):
            for q in pieces[i + 1:]:
                assert not p.overlaps(q)


class TestCommonPrefix:
    @given(dzs, dzs)
    def test_covers_both(self, a, b):
        prefix = a.common_prefix(b)
        assert prefix.covers(a)
        assert prefix.covers(b)

    @given(dzs, dzs)
    def test_is_tightest(self, a, b):
        prefix = a.common_prefix(b)
        if len(prefix) < min(len(a), len(b)):
            # one more bit must fail to cover one of the two
            for bit in (0, 1):
                child = prefix.child(bit)
                assert not (child.covers(a) and child.covers(b))


class TestDzSetCanonical:
    @given(dz_lists)
    def test_canonicalisation_idempotent(self, s):
        assert DzSet(s.members) == s

    @given(dz_lists)
    def test_members_pairwise_disjoint(self, s):
        members = list(s)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                assert not a.overlaps(b)

    @given(dz_lists)
    def test_no_complete_sibling_pairs(self, s):
        for member in s:
            if not member.is_root:
                assert member.sibling() not in s

    @given(st.lists(bits, min_size=0, max_size=8), probes())
    def test_canonicalisation_preserves_region(self, raw, probe):
        canonical = DzSet.of(*raw)
        naive = any(Dz(b).covers(probe) for b in raw)
        assert region_contains(canonical, probe) == naive


class TestDzSetAlgebra:
    @settings(max_examples=60)
    @given(dz_lists, dz_lists, probes())
    def test_union_semantics(self, a, b, probe):
        assert region_contains(a.union(b), probe) == (
            region_contains(a, probe) or region_contains(b, probe)
        )

    @settings(max_examples=60)
    @given(dz_lists, dz_lists, probes())
    def test_intersect_semantics(self, a, b, probe):
        assert region_contains(a.intersect(b), probe) == (
            region_contains(a, probe) and region_contains(b, probe)
        )

    @settings(max_examples=60)
    @given(dz_lists, dz_lists, probes())
    def test_subtract_semantics(self, a, b, probe):
        assert region_contains(a.subtract(b), probe) == (
            region_contains(a, probe) and not b.overlaps_dz(probe)
        )

    @given(dz_lists, dz_lists)
    def test_subtract_then_union_restores(self, a, b):
        """(a - b) ∪ (a ∩ b) has the same measure as a."""
        rebuilt = a.subtract(b).union(a.intersect(b))
        assert abs(rebuilt.total_measure() - a.total_measure()) < 1e-12

    @given(dz_lists, dz_lists)
    def test_covers_iff_subtract_empty(self, a, b):
        assert b.covers(a) == a.subtract(b).is_empty

    @given(dz_lists)
    def test_measure_bounds(self, a):
        assert 0.0 <= a.total_measure() <= 1.0 + 1e-12

    @given(dz_lists)
    def test_truncate_coarsens(self, a):
        truncated = a.truncate(3)
        assert truncated.covers(a)
        assert all(len(m) <= 3 for m in truncated)
