"""Property-based tests for tree-set invariants under random operations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dzset import DzSet
from repro.controller.tree_manager import TreeManager
from repro.exceptions import ControllerError
from repro.network.topology import paper_fat_tree

bits = st.text(alphabet="01", min_size=1, max_size=6)
ops = st.lists(
    st.tuples(
        st.sampled_from(["create", "retire", "merge"]),
        st.lists(bits, min_size=1, max_size=3),
        st.integers(min_value=0, max_value=9),
    ),
    min_size=1,
    max_size=20,
)

ROOTS = ["R7", "R8", "R9", "R10"]


@settings(max_examples=60, deadline=None)
@given(ops)
def test_dz_disjointness_is_invariant(operations):
    """Whatever the sequence of creates/retires/merges, tree DZ sets stay
    pairwise disjoint and overlap lookups stay consistent."""
    topo = paper_fat_tree()
    manager = TreeManager(topo, merge_threshold=64)
    for kind, dz_bits, selector in operations:
        live = sorted(manager.trees.values(), key=lambda t: t.tree_id)
        if kind == "create":
            region = DzSet.of(*dz_bits)
            overlapping = manager.overlapping_set(region)
            if overlapping:
                # creation must be refused when the region collides
                try:
                    manager.create_tree(ROOTS[selector % len(ROOTS)], region)
                    raise AssertionError("overlap accepted")
                except ControllerError:
                    pass
            else:
                manager.create_tree(ROOTS[selector % len(ROOTS)], region)
        elif kind == "retire" and live:
            manager.retire_tree(live[selector % len(live)].tree_id)
        elif kind == "merge" and len(live) >= 2:
            t1 = live[selector % len(live)]
            t2 = live[(selector + 1) % len(live)]
            if t1.tree_id != t2.tree_id:
                merged = manager.merge(t1, t2)
                # the merge covers both constituents
                assert merged.dz_set.covers(t1.dz_set)
                assert merged.dz_set.covers(t2.dz_set)
        manager.check_invariants()
        # overlap lookups agree with the membership structure
        for tree in manager:
            for dz in tree.dz_set:
                assert tree in manager.overlapping(dz)


@settings(max_examples=40, deadline=None)
@given(st.lists(bits, min_size=2, max_size=6, unique=True))
def test_total_coverage_monotone_under_merge(regions):
    """Merging never shrinks the covered region."""
    topo = paper_fat_tree()
    manager = TreeManager(topo, merge_threshold=64)
    created = []
    for i, b in enumerate(regions):
        region = DzSet.of(b)
        if not manager.overlapping_set(region):
            created.append(
                manager.create_tree(ROOTS[i % len(ROOTS)], region)
            )
    if len(created) < 2:
        return
    before = manager.total_coverage()
    merged = manager.merge(created[0], created[1])
    after = manager.total_coverage()
    assert after.covers(before)
    manager.check_invariants()
