"""Unit tests for canonical DZ sets."""

import pytest

from repro.core.dz import ROOT, Dz
from repro.core.dzset import EMPTY, OMEGA, DzSet


class TestCanonicalisation:
    def test_removes_covered_members(self):
        assert DzSet.of("1", "10", "101") == DzSet.of("1")

    def test_merges_siblings(self):
        assert DzSet.of("00", "01") == DzSet.of("0")

    def test_merges_siblings_recursively(self):
        assert DzSet.of("00", "01", "10", "11") == OMEGA

    def test_paper_merge_example(self):
        """Sec. 3.2: DZ {0000, 0010} u {0001, 0011} merges into {00}."""
        merged = DzSet.of("0000", "0010").union(DzSet.of("0001", "0011"))
        assert merged == DzSet.of("00")

    def test_semantic_equality(self):
        assert DzSet.of("0", "10") == DzSet.of("00", "01", "10")

    def test_accepts_strings_and_dz(self):
        assert DzSet.of(Dz("01"), "10") == DzSet.of("01", "10")


class TestBasicProtocol:
    def test_empty(self):
        assert EMPTY.is_empty
        assert not EMPTY
        assert len(EMPTY) == 0

    def test_iteration_sorted(self):
        s = DzSet.of("11", "0", "100")
        assert list(s) == [Dz("0"), Dz("11"), Dz("100")]

    def test_full_cover_collapses_to_omega(self):
        # {11, 0, 10}: 10 and 11 merge into 1, then 0 and 1 into the root
        assert DzSet.of("11", "0", "10") == OMEGA

    def test_contains(self):
        assert Dz("0") in DzSet.of("0", "11")

    def test_str(self):
        assert str(DzSet.of("0")) == "{0}"


class TestRegionAlgebra:
    def test_covers_dz(self):
        s = DzSet.of("0", "10")
        assert s.covers_dz(Dz("010"))
        assert s.covers_dz(Dz("10"))
        assert not s.covers_dz(Dz("11"))
        assert not s.covers_dz(ROOT)

    def test_covers_dz_via_merged_siblings(self):
        # 00 and 01 merge to 0, which covers 0 itself
        assert DzSet.of("00", "01").covers_dz(Dz("0"))

    def test_overlaps_dz(self):
        s = DzSet.of("01")
        assert s.overlaps_dz(Dz("0"))  # coarser
        assert s.overlaps_dz(Dz("011"))  # finer
        assert not s.overlaps_dz(Dz("00"))

    def test_covers_set(self):
        assert DzSet.of("0").covers(DzSet.of("00", "011"))
        assert not DzSet.of("00").covers(DzSet.of("0"))

    def test_overlaps_set(self):
        assert DzSet.of("0").overlaps(DzSet.of("01", "11"))
        assert not DzSet.of("00").overlaps(DzSet.of("01", "1"))

    def test_intersect_dz(self):
        s = DzSet.of("0", "11")
        assert s.intersect_dz(Dz("01")) == DzSet.of("01")
        assert s.intersect_dz(Dz("1")) == DzSet.of("11")
        assert s.intersect_dz(Dz("10")) == EMPTY

    def test_intersect_sets(self):
        a = DzSet.of("0", "10")
        b = DzSet.of("01", "1")
        assert a.intersect(b) == DzSet.of("01", "10")

    def test_intersect_with_omega(self):
        a = DzSet.of("010", "111")
        assert a.intersect(OMEGA) == a

    def test_union(self):
        assert DzSet.of("00").union(DzSet.of("01")) == DzSet.of("0")

    def test_subtract_dz(self):
        assert DzSet.of("0").subtract_dz(Dz("00")) == DzSet.of("01")

    def test_subtract_sets_paper_uncovered(self):
        """Alg. 1 line 10: advertisement {0} joining tree {00} leaves {01}."""
        adv = DzSet.of("0")
        tree = DzSet.of("00")
        assert adv.subtract(tree) == DzSet.of("01")

    def test_subtract_everything(self):
        assert OMEGA.subtract(OMEGA) == EMPTY

    def test_subtract_disjoint(self):
        a = DzSet.of("00")
        assert a.subtract(DzSet.of("01")) == a

    def test_truncate(self):
        assert DzSet.of("0000", "1111").truncate(2) == DzSet.of("00", "11")

    def test_truncate_can_merge(self):
        # truncation may collapse members into one coarser subspace
        assert DzSet.of("000", "001").truncate(2) == DzSet.of("00")


class TestMeasure:
    def test_total_measure(self):
        assert DzSet.of("0").total_measure() == pytest.approx(0.5)
        assert DzSet.of("00", "01").total_measure() == pytest.approx(0.5)
        assert OMEGA.total_measure() == pytest.approx(1.0)
        assert EMPTY.total_measure() == 0.0

    def test_coarsen_to_common_prefix(self):
        assert DzSet.of("0000", "0010").coarsen_to_common_prefix() == Dz("00")
        assert DzSet.of("0", "1").coarsen_to_common_prefix() == ROOT
        assert EMPTY.coarsen_to_common_prefix() == ROOT
