"""Unit tests for the dz-expression algebra."""

import pytest

from repro.core.dz import ROOT, Dz
from repro.exceptions import SpatialIndexError


class TestConstruction:
    def test_root_is_empty(self):
        assert ROOT.bits == ""
        assert ROOT.is_root
        assert len(ROOT) == 0

    def test_rejects_non_binary(self):
        with pytest.raises(SpatialIndexError):
            Dz("012")

    def test_from_value_round_trip(self):
        dz = Dz.from_value(0b1011, 4)
        assert dz.bits == "1011"
        assert dz.value == 0b1011

    def test_from_value_pads_leading_zeros(self):
        assert Dz.from_value(1, 4).bits == "0001"

    def test_from_value_zero_length(self):
        assert Dz.from_value(0, 0) == ROOT

    def test_from_value_overflow(self):
        with pytest.raises(SpatialIndexError):
            Dz.from_value(4, 2)

    def test_from_value_negative(self):
        with pytest.raises(SpatialIndexError):
            Dz.from_value(-1, 4)

    def test_str(self):
        assert str(Dz("101")) == "101"
        assert str(ROOT) == "<root>"


class TestStructure:
    def test_child(self):
        assert Dz("10").child(1) == Dz("101")
        assert ROOT.child(0) == Dz("0")

    def test_child_rejects_bad_bit(self):
        with pytest.raises(SpatialIndexError):
            Dz("1").child(2)

    def test_parent(self):
        assert Dz("101").parent() == Dz("10")

    def test_root_has_no_parent(self):
        with pytest.raises(SpatialIndexError):
            ROOT.parent()

    def test_sibling(self):
        assert Dz("100").sibling() == Dz("101")
        assert Dz("101").sibling() == Dz("100")

    def test_root_has_no_sibling(self):
        with pytest.raises(SpatialIndexError):
            ROOT.sibling()

    def test_ancestors(self):
        assert list(Dz("101").ancestors()) == [ROOT, Dz("1"), Dz("10")]

    def test_truncate(self):
        assert Dz("101101").truncate(3) == Dz("101")
        assert Dz("10").truncate(5) == Dz("10")

    def test_truncate_negative(self):
        with pytest.raises(SpatialIndexError):
            Dz("1").truncate(-1)


class TestCovering:
    """Paper Sec. 2 properties of dz-expressions."""

    def test_root_covers_everything(self):
        assert ROOT.covers(Dz("101101"))
        assert ROOT.covers(ROOT)

    def test_prefix_covers(self):
        # dz=101 covers dz=101101 (the paper's ff0e example pair)
        assert Dz("101").covers(Dz("101101"))
        assert not Dz("101101").covers(Dz("101"))

    def test_self_covering(self):
        assert Dz("01").covers(Dz("01"))

    def test_disjoint_do_not_cover(self):
        assert not Dz("10").covers(Dz("11"))
        assert not Dz("11").covers(Dz("10"))

    def test_covered_by(self):
        assert Dz("101101").covered_by(Dz("101"))

    def test_overlap_symmetry(self):
        assert Dz("0").overlaps(Dz("000"))
        assert Dz("000").overlaps(Dz("0"))
        assert not Dz("000").overlaps(Dz("001"))

    def test_intersect_is_longer(self):
        # property 3: the overlap is identified by the longest of the two
        assert Dz("1").intersect(Dz("100")) == Dz("100")
        assert Dz("100").intersect(Dz("1")) == Dz("100")

    def test_intersect_disjoint_is_none(self):
        assert Dz("01").intersect(Dz("10")) is None


class TestSubtract:
    def test_paper_example(self):
        """Paper property 4: '0' minus '000' contains 001, 010 and 011.

        Our representation returns the minimal form {001, 01}, which is the
        same region (01 = 010 u 011).
        """
        remainder = Dz("0").subtract(Dz("000"))
        assert set(remainder) == {Dz("001"), Dz("01")}

    def test_subtract_disjoint(self):
        assert Dz("01").subtract(Dz("10")) == [Dz("01")]

    def test_subtract_covering_other(self):
        assert Dz("000").subtract(Dz("0")) == []

    def test_subtract_self(self):
        assert Dz("101").subtract(Dz("101")) == []

    def test_remainder_disjoint_from_subtrahend(self):
        remainder = Dz("1").subtract(Dz("10110"))
        for piece in remainder:
            assert not piece.overlaps(Dz("10110"))

    def test_remainder_plus_subtrahend_covers_original(self):
        # measure check: |1| = 1/2; pieces + subtrahend must sum to 1/2
        remainder = Dz("1").subtract(Dz("10110"))
        total = sum(2.0 ** -len(p) for p in remainder) + 2.0 ** -5
        assert total == pytest.approx(0.5)


class TestCommonPrefix:
    def test_common_prefix(self):
        assert Dz("0000").common_prefix(Dz("0011")) == Dz("00")

    def test_common_prefix_disjoint_at_root(self):
        assert Dz("0").common_prefix(Dz("1")) == ROOT

    def test_common_prefix_of_related(self):
        assert Dz("00").common_prefix(Dz("0011")) == Dz("00")


class TestOrdering:
    def test_sort_is_deterministic(self):
        dzs = [Dz("1"), Dz("0"), Dz("01"), Dz("")]
        assert sorted(dzs) == [Dz(""), Dz("0"), Dz("01"), Dz("1")]

    def test_hashable(self):
        assert len({Dz("0"), Dz("0"), Dz("1")}) == 2
