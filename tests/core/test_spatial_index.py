"""Unit tests for the spatial indexer (Fig. 2 decomposition)."""

import pytest

from repro.core.dz import ROOT, Dz
from repro.core.dzset import OMEGA, DzSet
from repro.core.events import Attribute, Event, EventSpace
from repro.core.spatial_index import SpatialIndexer
from repro.core.subscription import Filter
from repro.exceptions import SpatialIndexError


@pytest.fixture
def fig2_space():
    """Two continuous attributes A and B over [0, 100), as in Fig. 2."""
    return EventSpace.of(Attribute("A", 0, 100), Attribute("B", 0, 100))


@pytest.fixture
def fig2_indexer(fig2_space):
    return SpatialIndexer(fig2_space, max_dz_length=8)


class TestCells:
    def test_root_cell_is_unit_box(self, fig2_indexer):
        assert fig2_indexer.cell(ROOT) == ((0.0, 1.0), (0.0, 1.0))

    def test_first_bit_splits_first_dimension(self, fig2_indexer):
        assert fig2_indexer.cell(Dz("0")) == ((0.0, 0.5), (0.0, 1.0))
        assert fig2_indexer.cell(Dz("1")) == ((0.5, 1.0), (0.0, 1.0))

    def test_second_bit_splits_second_dimension(self, fig2_indexer):
        # Fig. 2 second panel: dz '01' is the top-left quadrant
        assert fig2_indexer.cell(Dz("01")) == ((0.0, 0.5), (0.5, 1.0))

    def test_third_bit_refines_first_dimension_again(self, fig2_indexer):
        # Fig. 2 fourth panel: dz '110' is the top-row cell A in [50,75),
        # B in [50,100); '100' is its bottom-row counterpart
        assert fig2_indexer.cell(Dz("110")) == ((0.5, 0.75), (0.5, 1.0))
        assert fig2_indexer.cell(Dz("100")) == ((0.5, 0.75), (0.0, 0.5))

    def test_cell_volume_halves_per_bit(self, fig2_indexer):
        for bits in ("", "1", "10", "101", "1011"):
            cell = fig2_indexer.cell(Dz(bits))
            volume = 1.0
            for lo, hi in cell:
                volume *= hi - lo
            assert volume == pytest.approx(2.0 ** -len(bits))


class TestPointToDz:
    def test_length(self, fig2_indexer):
        dz = fig2_indexer.point_to_dz((0.3, 0.7), length=6)
        assert len(dz) == 6

    def test_point_lands_in_own_cell(self, fig2_indexer):
        point = (0.34, 0.68)
        dz = fig2_indexer.point_to_dz(point, length=8)
        cell = fig2_indexer.cell(dz)
        for coordinate, (lo, hi) in zip(point, cell):
            assert lo <= coordinate < hi

    def test_rejects_bad_point(self, fig2_indexer):
        with pytest.raises(SpatialIndexError):
            fig2_indexer.point_to_dz((1.5, 0.2))
        with pytest.raises(SpatialIndexError):
            fig2_indexer.point_to_dz((0.1,))

    def test_event_to_dz(self, fig2_space):
        idx = SpatialIndexer(fig2_space, max_dz_length=2)
        # A=60 -> right half (1); B=20 -> bottom half (0)
        assert idx.event_to_dz(Event.of(A=60, B=20)) == Dz("10")

    def test_default_length_is_max(self, fig2_indexer):
        assert len(fig2_indexer.event_to_dz(Event.of(A=1, B=1))) == 8


class TestFilterDecomposition:
    def test_fig2_advertisement(self, fig2_indexer):
        """The paper's running example: Adv {A=[50,75], B=[0,100]} -> {110, 100}.

        {110, 100} canonicalises to... they are disjoint and not siblings, so
        it stays as the two subspaces shown in Fig. 2.
        """
        adv = Filter.of(A=(50, 75), B=(0, 100))
        assert fig2_indexer.filter_to_dzset(adv) == DzSet.of("110", "100")

    def test_whole_space(self, fig2_indexer):
        assert fig2_indexer.filter_to_dzset(Filter.of()) == OMEGA

    def test_half_space(self, fig2_indexer):
        assert fig2_indexer.filter_to_dzset(
            Filter.of(A=(0, 50))
        ) == DzSet.of("0")

    def test_decomposition_covers_filter_events(self, fig2_indexer):
        """Enclosing approximation: every matching event maps inside."""
        filt = Filter.of(A=(12, 37), B=(44, 91))
        region = fig2_indexer.filter_to_dzset(filt)
        for a in range(13, 37, 3):
            for b in range(45, 91, 5):
                event = Event.of(A=a, B=b)
                assert fig2_indexer.matches(region, event)

    def test_respects_max_len(self, fig2_indexer):
        filt = Filter.of(A=(12, 37))
        region = fig2_indexer.filter_to_dzset(filt, max_len=3)
        assert all(len(dz) <= 3 for dz in region)

    def test_cell_budget_coarsens(self, fig2_space):
        tight = SpatialIndexer(fig2_space, max_dz_length=16, max_cells=4)
        loose = SpatialIndexer(fig2_space, max_dz_length=16, max_cells=256)
        filt = Filter.of(A=(12, 37), B=(44, 91))
        region_tight = tight.filter_to_dzset(filt)
        region_loose = loose.filter_to_dzset(filt)
        assert len(region_tight) <= 4
        # the tight budget yields a coarser superset of the fine region
        assert region_tight.covers(region_loose)

    def test_integer_boundary_event_not_lost(self):
        """With integer grain, an event at the subscription's upper bound
        stays inside the decomposition (no false negatives)."""
        space = EventSpace.paper_schema(2)
        idx = SpatialIndexer(space, max_dz_length=12)
        filt = Filter.of(attr0=(0, 10))
        region = idx.filter_to_dzset(filt)
        assert idx.matches(region, Event.of(attr0=10, attr1=500))

    def test_bad_max_len(self, fig2_indexer):
        with pytest.raises(SpatialIndexError):
            fig2_indexer.filter_to_dzset(Filter.of(), max_len=0)

    def test_bad_parameters(self, fig2_space):
        with pytest.raises(SpatialIndexError):
            SpatialIndexer(fig2_space, max_dz_length=0)
        with pytest.raises(SpatialIndexError):
            SpatialIndexer(fig2_space, max_cells=0)


class TestMatching:
    def test_matches_respects_truncation(self, fig2_space):
        # with a very short dz, distinct filters become indistinguishable:
        # exactly the paper's L_dz false-positive effect (Sec. 6.4)
        idx = SpatialIndexer(fig2_space, max_dz_length=1)
        region = idx.filter_to_dzset(Filter.of(A=(50, 75)))
        # event outside the filter but in the same half-space: false positive
        assert idx.matches(region, Event.of(A=99, B=1))

    def test_matches_rejects_outside(self, fig2_indexer):
        region = fig2_indexer.filter_to_dzset(Filter.of(A=(50, 75)))
        assert not fig2_indexer.matches(region, Event.of(A=10, B=10))
