"""Unit tests for filters, subscriptions and advertisements."""

import pytest

from repro.core.events import Attribute, Event, EventSpace
from repro.core.subscription import (
    Advertisement,
    Filter,
    RangePredicate,
    Subscription,
)
from repro.exceptions import SchemaError


class TestRangePredicate:
    def test_matches_closed_interval(self):
        p = RangePredicate(10, 20)
        assert p.matches(10)
        assert p.matches(20)
        assert not p.matches(9.999)
        assert not p.matches(20.001)

    def test_invalid(self):
        with pytest.raises(SchemaError):
            RangePredicate(5, 4)

    def test_point_range(self):
        assert RangePredicate(5, 5).matches(5)

    def test_overlaps(self):
        assert RangePredicate(0, 10).overlaps(RangePredicate(10, 20))
        assert not RangePredicate(0, 9).overlaps(RangePredicate(10, 20))

    def test_contains(self):
        assert RangePredicate(0, 10).contains(RangePredicate(2, 8))
        assert not RangePredicate(2, 8).contains(RangePredicate(0, 10))


class TestFilter:
    def test_matches_conjunction(self):
        f = Filter.of(a=(0, 10), b=(5, 5))
        assert f.matches(Event.of(a=10, b=5))
        assert not f.matches(Event.of(a=10, b=6))

    def test_unconstrained_attributes_ignored(self):
        f = Filter.of(a=(0, 10))
        assert f.matches(Event.of(a=1, b=9999))

    def test_matches_along(self):
        f = Filter.of(a=(0, 10))
        e = Event.of(a=50, b=1)
        assert not f.matches_along("a", e)
        assert f.matches_along("b", e)  # unconstrained dimension

    def test_overlaps(self):
        assert Filter.of(a=(0, 10)).overlaps(Filter.of(a=(10, 20)))
        assert not Filter.of(a=(0, 9)).overlaps(Filter.of(a=(10, 20)))
        # different attributes never conflict
        assert Filter.of(a=(0, 1)).overlaps(Filter.of(b=(5, 6)))

    def test_normalized_box_full_domain_for_unconstrained(self):
        space = EventSpace.of("a", "b")
        box = Filter.of(a=(0, 511)).normalized_box(space)
        assert box[1] == (0.0, 1.0)

    def test_normalized_box_clamps(self):
        space = EventSpace.of(Attribute("a", 0, 100))
        box = Filter.of(a=(-50, 500)).normalized_box(space)
        assert box[0] == (0.0, 1.0)

    def test_normalized_box_fig2_example(self):
        """Fig. 2: Adv = {A=[50,75], B=[0,100]} over [0,100)^2."""
        space = EventSpace.of(Attribute("A", 0, 100), Attribute("B", 0, 100))
        box = Filter.of(A=(50, 75), B=(0, 100)).normalized_box(space)
        (a_lo, a_hi), (b_lo, b_hi) = box
        assert (a_lo, b_lo, b_hi) == (0.5, 0.0, 1.0)
        assert a_hi == pytest.approx(0.75)


class TestIdentities:
    def test_subscription_ids_unique(self):
        s1, s2 = Subscription.of(a=(0, 1)), Subscription.of(a=(0, 1))
        assert s1.sub_id != s2.sub_id

    def test_subscription_matches(self):
        assert Subscription.of(a=(0, 10)).matches(Event.of(a=5))

    def test_advertisement_covers(self):
        assert Advertisement.of(a=(0, 10)).covers(Event.of(a=5))
        assert not Advertisement.of(a=(0, 10)).covers(Event.of(a=11))
