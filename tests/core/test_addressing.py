"""Unit tests for the IPv6 multicast embedding of dz-expressions."""

import ipaddress

import pytest

from repro.core.addressing import (
    MAX_DZ_BITS,
    PUBSUB_CONTROL_ADDRESS,
    MulticastPrefix,
    address_to_dz,
    dz_to_address,
    dz_to_prefix,
    prefix_to_dz,
)
from repro.core.dz import ROOT, Dz
from repro.exceptions import AddressingError


class TestPaperExamples:
    """Sec. 3.3.2 gives two worked encodings; both must hold exactly."""

    def test_dz_101_is_ff0e_a000_slash_19(self):
        prefix = dz_to_prefix(Dz("101"))
        assert str(prefix) == "ff0e:a000::/19"

    def test_dz_101101_is_ff0e_b400_slash_22(self):
        prefix = dz_to_prefix(Dz("101101"))
        assert str(prefix) == "ff0e:b400::/22"

    def test_event_matches_covering_flow(self):
        """ff0e:a000::/19 must match an event carrying dz=101101."""
        flow_prefix = dz_to_prefix(Dz("101"))
        event_address = dz_to_address(Dz("101101"))
        assert flow_prefix.matches(event_address)

    def test_event_does_not_match_disjoint_flow(self):
        flow_prefix = dz_to_prefix(Dz("100"))
        event_address = dz_to_address(Dz("101101"))
        assert not flow_prefix.matches(event_address)


class TestRoundTrips:
    @pytest.mark.parametrize(
        "bits", ["", "0", "1", "01", "101101", "0" * 50, "1" * 112]
    )
    def test_prefix_round_trip(self, bits):
        dz = Dz(bits)
        assert prefix_to_dz(dz_to_prefix(dz)) == dz

    def test_address_round_trip(self):
        dz = Dz("0110100")
        assert address_to_dz(dz_to_address(dz), len(dz)) == dz

    def test_address_truncation_recovers_prefix(self):
        dz = Dz("0110100")
        assert address_to_dz(dz_to_address(dz), 3) == Dz("011")

    def test_root_maps_to_base(self):
        prefix = dz_to_prefix(ROOT)
        assert str(prefix) == "ff0e::/16"


class TestValidation:
    def test_dz_too_long(self):
        with pytest.raises(AddressingError):
            dz_to_prefix(Dz("0" * (MAX_DZ_BITS + 1)))

    def test_prefix_outside_range_rejected(self):
        prefix = MulticastPrefix(prefix_len=16, network=0xFF0F << 112)
        with pytest.raises(AddressingError):
            prefix_to_dz(prefix)

    def test_prefix_shorter_than_base_rejected(self):
        with pytest.raises(AddressingError):
            prefix_to_dz(MulticastPrefix(prefix_len=8, network=0xFF << 120))

    def test_network_bits_outside_mask_rejected(self):
        with pytest.raises(AddressingError):
            MulticastPrefix(prefix_len=16, network=(0xFF0E << 112) | 1)

    def test_bad_prefix_len(self):
        with pytest.raises(AddressingError):
            MulticastPrefix(prefix_len=129, network=0)

    def test_address_to_dz_outside_range(self):
        with pytest.raises(AddressingError):
            address_to_dz(0x2001 << 112, 4)


class TestPrefixSemantics:
    def test_covers(self):
        assert dz_to_prefix(Dz("10")).covers(dz_to_prefix(Dz("101")))
        assert not dz_to_prefix(Dz("101")).covers(dz_to_prefix(Dz("10")))
        assert not dz_to_prefix(Dz("100")).covers(dz_to_prefix(Dz("101")))

    def test_cover_mirrors_dz_cover(self):
        pairs = [("", "1"), ("1", "10"), ("01", "0110"), ("11", "0")]
        for a, b in pairs:
            assert dz_to_prefix(Dz(a)).covers(dz_to_prefix(Dz(b))) == Dz(
                a
            ).covers(Dz(b))

    def test_mask_width(self):
        assert dz_to_prefix(Dz("101")).prefix_len == 19

    def test_control_address_in_multicast_range(self):
        assert (PUBSUB_CONTROL_ADDRESS >> 112) == 0xFF0E
        assert ipaddress.IPv6Address(PUBSUB_CONTROL_ADDRESS).is_multicast

    def test_ordering_by_specificity(self):
        coarse, fine = dz_to_prefix(Dz("1")), dz_to_prefix(Dz("11"))
        assert coarse < fine
