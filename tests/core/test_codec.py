"""Unit tests for the wire codecs."""

import pytest

from repro.core.codec import (
    decode_advertisement,
    decode_dzset,
    decode_event,
    decode_filter,
    decode_space,
    decode_subscription,
    encode_advertisement,
    encode_dzset,
    encode_event,
    encode_filter,
    encode_space,
    encode_subscription,
    from_bytes,
    to_bytes,
)
from repro.core.dzset import DzSet
from repro.core.events import Attribute, Event, EventSpace
from repro.core.subscription import Advertisement, Filter, Subscription
from repro.exceptions import SchemaError


class TestRoundTrips:
    def test_event(self):
        event = Event.of(event_id=42, price=10.5, volume=3)
        assert decode_event(encode_event(event)) == event

    def test_filter(self):
        filt = Filter.of(a=(0, 10), b=(5.5, 6.5))
        assert decode_filter(encode_filter(filt)) == filt

    def test_empty_filter(self):
        filt = Filter.of()
        assert decode_filter(encode_filter(filt)) == filt

    def test_subscription_keeps_identity(self):
        sub = Subscription.of(a=(1, 2))
        decoded = decode_subscription(encode_subscription(sub))
        assert decoded == sub
        assert decoded.sub_id == sub.sub_id

    def test_advertisement_keeps_identity(self):
        adv = Advertisement.of(a=(1, 2))
        decoded = decode_advertisement(encode_advertisement(adv))
        assert decoded == adv
        assert decoded.adv_id == adv.adv_id

    def test_dzset(self):
        s = DzSet.of("0", "101", "111")
        assert decode_dzset(encode_dzset(s)) == s

    def test_empty_dzset(self):
        s = DzSet(frozenset())
        assert decode_dzset(encode_dzset(s)) == s

    def test_space(self):
        space = EventSpace(
            (
                Attribute("x", 0, 100, grain=1),
                Attribute("y", -5, 5),
            )
        )
        assert decode_space(encode_space(space)) == space


class TestBytes:
    def test_bytes_round_trip(self):
        event = Event.of(event_id=1, x=2.0)
        data = to_bytes(encode_event(event))
        assert isinstance(data, bytes)
        assert decode_event(from_bytes(data)) == event

    def test_bytes_deterministic(self):
        event = Event.of(event_id=1, b=2.0, a=1.0)
        assert to_bytes(encode_event(event)) == to_bytes(encode_event(event))

    def test_malformed_bytes(self):
        with pytest.raises(SchemaError):
            from_bytes(b"not json{")
        with pytest.raises(SchemaError):
            from_bytes(b"[1, 2]")


class TestValidation:
    def test_kind_mismatch(self):
        with pytest.raises(SchemaError):
            decode_event(encode_filter(Filter.of()))

    def test_version_check(self):
        payload = encode_event(Event.of(x=1))
        payload["v"] = 999
        with pytest.raises(SchemaError):
            decode_event(payload)


class TestSnapshot:
    def test_controller_snapshot_is_json_compatible(self):
        import json

        from repro.core.subscription import Advertisement, Subscription
        from repro.network.topology import line
        from tests.helpers import make_system

        system = make_system(line(3))
        system.controller.advertise("h1", Advertisement.of(attr0=(0, 511)))
        system.controller.subscribe("h3", Subscription.of(attr0=(0, 255)))
        snap = system.controller.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["advertisements"] == 1
        assert snap["subscriptions"] == 1
        assert len(snap["trees"]) == 1
        tree = snap["trees"][0]
        assert tree["publishers"] == ["h1"]
        assert tree["subscribers"] == ["h3"]
        assert sum(snap["flows_per_switch"].values()) > 0
