"""Tests for the ASCII rendering helpers."""

import pytest

from repro.core.dzset import DzSet, EMPTY, OMEGA
from repro.core.events import Attribute, EventSpace
from repro.core.render import render_dz_tree, render_filter, render_region
from repro.core.spatial_index import SpatialIndexer
from repro.core.subscription import Filter
from repro.exceptions import SpatialIndexError


@pytest.fixture
def indexer():
    space = EventSpace.of(Attribute("A", 0, 100), Attribute("B", 0, 100))
    return SpatialIndexer(space, max_dz_length=10)


class TestRenderRegion:
    def test_dimensions(self, indexer):
        art = render_region(indexer, OMEGA, width=8, height=4)
        lines = art.splitlines()
        assert len(lines) == 4
        assert all(len(line) == 8 for line in lines)

    def test_omega_fills_everything(self, indexer):
        art = render_region(indexer, OMEGA, width=8, height=4)
        assert set(art) <= {"#", "\n"}

    def test_empty_fills_nothing(self, indexer):
        art = render_region(indexer, EMPTY, width=8, height=4)
        assert set(art) <= {".", "\n"}

    def test_left_half_space(self, indexer):
        art = render_region(indexer, DzSet.of("0"), width=8, height=4)
        for line in art.splitlines():
            assert line == "####...."

    def test_fig2_advertisement(self, indexer):
        """Fig. 2: {100, 110} is the vertical band A in [50, 75)."""
        art = render_region(indexer, DzSet.of("100", "110"), width=8, height=4)
        for line in art.splitlines():
            assert line == "....##.."

    def test_bottom_left_quadrant_is_dz_00(self, indexer):
        art = render_region(indexer, DzSet.of("00"), width=4, height=4)
        lines = art.splitlines()
        assert lines[0] == "...."  # top rows empty
        assert lines[3] == "##.."  # bottom-left filled

    def test_requires_2d(self):
        indexer_3d = SpatialIndexer(EventSpace.paper_schema(3))
        with pytest.raises(SpatialIndexError):
            render_region(indexer_3d, OMEGA)

    def test_bad_grid(self, indexer):
        with pytest.raises(SpatialIndexError):
            render_region(indexer, OMEGA, width=0)


class TestRenderFilter:
    def test_marks_fringe(self, indexer):
        # a box not aligned to cell boundaries has a '+' fringe
        art = render_filter(
            indexer, Filter.of(A=(10, 40), B=(10, 40)), width=16, height=16
        )
        assert "#" in art
        assert "+" in art
        assert "." in art

    def test_aligned_box_has_no_fringe(self, indexer):
        art = render_filter(
            indexer, Filter.of(A=(0, 49.999), B=(0, 49.999)), width=8, height=8
        )
        assert "+" not in art


class TestRenderTree:
    def test_structure(self):
        art = render_dz_tree(DzSet.of("00", "101"))
        lines = art.splitlines()
        assert lines[0] == "<root>"
        assert "  0" in lines
        assert "    00 *" in lines
        assert "      101 *" in lines

    def test_root_member(self):
        assert render_dz_tree(OMEGA) == "<root> *"

    def test_empty(self):
        assert render_dz_tree(EMPTY) == "<root>"
