"""Unit tests for the event-space schema and events."""

import pytest

from repro.core.events import Attribute, Event, EventSpace
from repro.exceptions import SchemaError


class TestAttribute:
    def test_defaults_match_paper_domain(self):
        a = Attribute("price")
        assert a.low == 0.0
        assert a.high == 1024.0

    def test_normalize(self):
        a = Attribute("x", 0, 100)
        assert a.normalize(0) == 0.0
        assert a.normalize(50) == pytest.approx(0.5)

    def test_normalize_out_of_domain(self):
        a = Attribute("x", 0, 100)
        with pytest.raises(SchemaError):
            a.normalize(100)  # high end is exclusive
        with pytest.raises(SchemaError):
            a.normalize(-1)

    def test_denormalize_round_trip(self):
        a = Attribute("x", 10, 20)
        assert a.denormalize(a.normalize(17.5)) == pytest.approx(17.5)

    def test_invalid_domain(self):
        with pytest.raises(SchemaError):
            Attribute("x", 5, 5)

    def test_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute("")


class TestEventSpace:
    def test_of_bare_names(self):
        space = EventSpace.of("a", "b")
        assert space.dimensions == 2
        assert space.names == ("a", "b")

    def test_paper_schema(self):
        space = EventSpace.paper_schema(10)
        assert space.dimensions == 10
        assert all(a.high == 1024.0 for a in space.attributes)

    def test_paper_schema_bounds(self):
        with pytest.raises(SchemaError):
            EventSpace.paper_schema(0)
        with pytest.raises(SchemaError):
            EventSpace.paper_schema(27)

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            EventSpace.of("a", "a")

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            EventSpace(())

    def test_index_of(self):
        space = EventSpace.of("a", "b", "c")
        assert space.index_of("b") == 1
        with pytest.raises(SchemaError):
            space.index_of("nope")

    def test_contains(self):
        space = EventSpace.of("a")
        assert "a" in space
        assert "z" not in space

    def test_restrict_preserves_order_given(self):
        space = EventSpace.of("a", "b", "c")
        reduced = space.restrict(["c", "a"])
        assert reduced.names == ("c", "a")

    def test_restrict_unknown_attribute(self):
        with pytest.raises(SchemaError):
            EventSpace.of("a").restrict(["b"])

    def test_point_projection(self):
        space = EventSpace.of(Attribute("a", 0, 100), Attribute("b", 0, 10))
        event = Event.of(a=50, b=5, c=999)  # extra attr ignored
        assert space.point(event) == pytest.approx((0.5, 0.5))

    def test_point_on_restricted_space(self):
        space = EventSpace.of(Attribute("a", 0, 100), Attribute("b", 0, 10))
        reduced = space.restrict(["b"])
        assert reduced.point(Event.of(a=1, b=5)) == pytest.approx((0.5,))


class TestEvent:
    def test_value_access(self):
        e = Event.of(x=3.0)
        assert e.value("x") == 3.0

    def test_missing_attribute(self):
        with pytest.raises(SchemaError):
            Event.of(x=1.0).value("y")

    def test_str_is_stable(self):
        assert "x=1" in str(Event.of(event_id=7, x=1.0))
