"""Unit tests for workload generators."""

import pytest

from repro.core.events import EventSpace
from repro.exceptions import WorkloadError
from repro.workloads.generators import UniformWorkload, ZipfianWorkload
from repro.workloads.scenarios import (
    paper_space,
    paper_uniform,
    paper_zipfian,
    zipfian_type,
)


class TestUniform:
    def test_events_within_domain(self):
        wl = paper_uniform(dimensions=3, seed=1)
        for event in wl.events(100):
            for attr in wl.space.attributes:
                assert attr.low <= event.value(attr.name) < attr.high

    def test_subscriptions_valid_and_constrained(self):
        wl = paper_uniform(dimensions=3, seed=1)
        for sub in wl.subscriptions(50):
            assert set(sub.filter.predicates) == set(wl.space.names)
            for pred in sub.filter.predicates.values():
                assert pred.low <= pred.high

    def test_width_fraction_respected(self):
        wl = paper_uniform(dimensions=2, seed=1, width_fraction=0.1)
        for sub in wl.subscriptions(50):
            for pred in sub.filter.predicates.values():
                assert pred.high - pred.low <= 0.1 * 1024 + 1e-6

    def test_deterministic_with_seed(self):
        a = paper_uniform(seed=7).events(10)
        b = paper_uniform(seed=7).events(10)
        assert [e.values for e in a] == [e.values for e in b]

    def test_constrained_subset_of_dimensions(self):
        space = paper_space(4)
        wl = UniformWorkload(space, constrained_dimensions=["attr1", "attr3"])
        sub = wl.subscription()
        assert set(sub.filter.predicates) == {"attr1", "attr3"}

    def test_unknown_constrained_dimension(self):
        with pytest.raises(WorkloadError):
            UniformWorkload(paper_space(2), constrained_dimensions=["zzz"])

    def test_invalid_width(self):
        with pytest.raises(WorkloadError):
            UniformWorkload(paper_space(2), width_fraction=0.0)

    def test_event_ids_unique(self):
        wl = paper_uniform(seed=1)
        ids = [e.event_id for e in wl.events(20)]
        assert len(set(ids)) == 20

    def test_advertisement_covering_all(self):
        adv = paper_uniform().advertisement_covering_all()
        assert list(adv.filter.constrained_names()) == []


class TestZipfian:
    def test_seven_hotspots_by_default(self):
        assert len(paper_zipfian().hotspots) == 7

    def test_events_cluster_around_hotspots(self):
        wl = paper_zipfian(dimensions=2, seed=3)
        centers = [h.center for h in wl.hotspots]
        for event in wl.events(100):
            distances = [
                max(
                    abs(event.value(a.name) - c[i])
                    for i, a in enumerate(wl.space.attributes)
                )
                for c in centers
            ]
            # each event lies close to at least one hotspot centre
            assert min(distances) < 0.3 * 1024

    def test_popular_hotspot_dominates(self):
        wl = paper_zipfian(dimensions=1, seed=5)
        counts = [0] * len(wl.hotspots)
        for _ in range(2000):
            counts[wl.hotspots.index(wl.pick_hotspot())] += 1
        assert counts[0] == max(counts)

    def test_events_within_domain(self):
        wl = paper_zipfian(dimensions=3, seed=1)
        for event in wl.events(200):
            for attr in wl.space.attributes:
                assert attr.low <= event.value(attr.name) < attr.high

    def test_variance_restriction_narrows_dimension(self):
        import statistics

        space = paper_space(2)
        restricted = ZipfianWorkload(
            space, seed=2, variance_scale={"attr1": 0.02}
        )
        values0 = [e.value("attr0") for e in restricted.events(300)]
        values1 = [e.value("attr1") for e in restricted.events(300)]
        assert statistics.pstdev(values1) < statistics.pstdev(values0) / 3

    def test_invalid_variance_scale(self):
        with pytest.raises(WorkloadError):
            ZipfianWorkload(paper_space(2), variance_scale={"attr0": 0.0})
        with pytest.raises(WorkloadError):
            ZipfianWorkload(paper_space(2), variance_scale={"zzz": 0.5})

    def test_invalid_hotspots(self):
        with pytest.raises(WorkloadError):
            ZipfianWorkload(paper_space(2), hotspots=0)

    def test_subscription_around_hotspot(self):
        wl = paper_zipfian(dimensions=2, seed=9)
        hotspot = wl.hotspots[0]
        sub = wl.subscription(hotspot)
        for i, attr in enumerate(wl.space.attributes):
            pred = sub.filter.predicate_for(attr.name)
            assert pred.low - 1e6 <= hotspot.center[i] <= pred.high + 1e6


class TestScenarioPresets:
    def test_zipfian_types(self):
        for type_id in (1, 2, 3):
            wl = zipfian_type(type_id, seed=0)
            assert wl.space.dimensions == 7

    def test_type1_more_restricted_than_type3(self):
        import statistics

        type1 = zipfian_type(1, seed=4)
        type3 = zipfian_type(3, seed=4)
        spread1 = statistics.pstdev(
            e.value("attr5") for e in type1.events(300)
        )
        spread3 = statistics.pstdev(
            e.value("attr5") for e in type3.events(300)
        )
        assert spread1 < spread3

    def test_unknown_type(self):
        with pytest.raises(WorkloadError):
            zipfian_type(4)

    def test_paper_space_defaults(self):
        space = paper_space()
        assert space.dimensions == 10
        assert space.attributes[0].high == 1024.0
