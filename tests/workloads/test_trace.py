"""Tests for workload trace recording, persistence and replay."""

import pytest

from repro.core.events import Event
from repro.core.subscription import Advertisement, Subscription
from repro.exceptions import WorkloadError
from repro.middleware.pleroma import Pleroma
from repro.network.topology import line
from repro.workloads.trace import Trace, TraceOp, TraceRecorder, TraceReplayer


def sample_trace():
    recorder = TraceRecorder()
    adv = Advertisement.of(attr0=(0, 1023))
    sub = Subscription.of(attr0=(0, 511))
    recorder.advertise(0.0, "h1", adv)
    recorder.subscribe(0.1, "h3", sub)
    recorder.publish(0.2, "h1", Event.of(event_id=1, attr0=100))
    recorder.publish(0.3, "h1", Event.of(event_id=2, attr0=900))
    recorder.unsubscribe(0.4, "h3", sub.sub_id)
    recorder.publish(0.5, "h1", Event.of(event_id=3, attr0=100))
    recorder.unadvertise(0.6, "h1", adv.adv_id)
    return recorder.trace()


class TestTraceModel:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            TraceOp(0.0, "frobnicate", "h1")
        with pytest.raises(WorkloadError):
            TraceOp(-1.0, "publish", "h1", Event.of(a=1))

    def test_time_ordering_enforced(self):
        recorder = TraceRecorder()
        recorder.publish(1.0, "h1", Event.of(a=1))
        with pytest.raises(WorkloadError):
            recorder.publish(0.5, "h1", Event.of(a=2))
        with pytest.raises(WorkloadError):
            Trace(
                ops=[
                    TraceOp(1.0, "publish", "h1", Event.of(a=1)),
                    TraceOp(0.0, "publish", "h1", Event.of(a=2)),
                ]
            )

    def test_duration(self):
        assert sample_trace().duration == 0.6
        assert Trace().duration == 0.0


class TestPersistence:
    def test_text_round_trip(self):
        trace = sample_trace()
        restored = Trace.loads(trace.dumps())
        assert len(restored) == len(trace)
        for a, b in zip(trace, restored):
            assert (a.time, a.kind, a.host) == (b.time, b.kind, b.host)
            assert a.payload == b.payload

    def test_file_round_trip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "workload.jsonl"
        trace.save(path)
        restored = Trace.load(path)
        assert len(restored) == len(trace)

    def test_blank_lines_ignored(self):
        trace = sample_trace()
        padded = trace.dumps() + "\n\n"
        assert len(Trace.loads(padded)) == len(trace)


class TestReplay:
    def test_replay_drives_middleware(self):
        middleware = Pleroma(line(3), dimensions=1, max_dz_length=10)
        replayer = TraceReplayer(sample_trace())
        replayer.run(middleware)
        assert replayer.applied == 7
        # event 1 matched a live subscription; 2 missed the filter; 3 came
        # after the unsubscribe
        assert middleware.metrics.delivered == 1
        # the final unadvertise left the fabric clean
        assert middleware.total_flows_installed() == 0

    def test_replay_is_deterministic(self):
        def run():
            middleware = Pleroma(line(3), dimensions=1, max_dz_length=10)
            TraceReplayer(Trace.loads(sample_trace().dumps())).run(middleware)
            return [
                (r.host, r.event.event_id, round(r.deliver_time, 12))
                for r in middleware.metrics.records
            ]

        assert run() == run()

    def test_recorded_then_saved_then_replayed(self, tmp_path):
        """Full loop: record -> save -> load -> replay on fresh deployment."""
        path = tmp_path / "t.jsonl"
        sample_trace().save(path)
        middleware = Pleroma(line(3), dimensions=1, max_dz_length=10)
        TraceReplayer(Trace.load(path)).run(middleware)
        assert middleware.metrics.published == 3
