"""Unit tests for spectral dimension selection (Sec. 5)."""

import numpy as np
import pytest

from repro.core.events import Event, EventSpace
from repro.core.subscription import Subscription
from repro.dimsel.selection import build_match_matrix, select_dimensions
from repro.exceptions import SchemaError, WorkloadError
from repro.workloads.scenarios import zipfian_type


@pytest.fixture
def space():
    return EventSpace.paper_schema(3)


def subs_selective_on(name, count=5, width=100):
    """Subscriptions selective on one attribute, open on the rest."""
    return [
        Subscription.of(**{name: (i * width, i * width + width - 1)})
        for i in range(count)
    ]


class TestMatchMatrix:
    def test_shape(self, space):
        subs = subs_selective_on("attr0")
        events = [Event.of(attr0=10, attr1=10, attr2=10)]
        w = build_match_matrix(space, subs, events)
        assert w.shape == (3, 1)

    def test_unconstrained_dimension_matches_all(self, space):
        subs = subs_selective_on("attr0", count=4)
        events = [Event.of(attr0=550, attr1=10, attr2=10)]
        w = build_match_matrix(space, subs, events)
        # along attr1/attr2 every subscription matches (no constraint)
        assert w[1, 0] == 4
        assert w[2, 0] == 4

    def test_selective_dimension_counts(self, space):
        subs = subs_selective_on("attr0", count=4, width=100)
        events = [Event.of(attr0=150, attr1=0, attr2=0)]
        w = build_match_matrix(space, subs, events)
        assert w[0, 0] == 1  # only the [100,199] subscription matches

    def test_requires_inputs(self, space):
        with pytest.raises(WorkloadError):
            build_match_matrix(space, [], [Event.of(attr0=1)])
        with pytest.raises(WorkloadError):
            build_match_matrix(space, subs_selective_on("attr0"), [])


class TestSelection:
    def test_variable_dimension_ranked_first(self, space):
        """Only attr0 discriminates among subscriptions as events move, so
        it must rank highest; the unconstrained dimensions carry no
        variance."""
        subs = subs_selective_on("attr0", count=8, width=128)
        rng = np.random.default_rng(0)
        events = [
            Event.of(
                attr0=float(rng.uniform(0, 1023)),
                attr1=float(rng.uniform(0, 1023)),
                attr2=float(rng.uniform(0, 1023)),
            )
            for _ in range(100)
        ]
        selection = select_dimensions(space, subs, events, threshold=0.5)
        assert selection.ranked[0] == "attr0"
        assert selection.selected[0] == "attr0"

    def test_forced_k(self, space):
        subs = subs_selective_on("attr0")
        events = [
            Event.of(attr0=float(v), attr1=1.0, attr2=1.0)
            for v in range(0, 1000, 50)
        ]
        selection = select_dimensions(space, subs, events, k=2)
        assert selection.k == 2
        assert len(selection.selected) == 2

    def test_threshold_selects_fewer_for_concentrated_variance(self, space):
        subs = subs_selective_on("attr0", count=8, width=128)
        rng = np.random.default_rng(1)
        events = [
            Event.of(
                attr0=float(rng.uniform(0, 1023)), attr1=5.0, attr2=5.0
            )
            for _ in range(100)
        ]
        selection = select_dimensions(space, subs, events, threshold=0.9)
        assert selection.k == 1  # all variance lives on attr0

    def test_scores_and_eigenvalues_exposed(self, space):
        subs = subs_selective_on("attr0")
        events = [Event.of(attr0=float(v), attr1=0.0, attr2=0.0) for v in range(0, 900, 100)]
        selection = select_dimensions(space, subs, events)
        assert set(selection.scores) == set(space.names)
        assert len(selection.eigenvalues) == 3
        assert selection.eigenvalues[0] >= selection.eigenvalues[-1]

    def test_no_variance_falls_back_to_schema_order(self, space):
        subs = [Subscription.of()]  # matches everything along every dim
        events = [Event.of(attr0=1.0, attr1=1.0, attr2=1.0)] * 5
        selection = select_dimensions(space, subs, events, threshold=0.5)
        assert selection.ranked[0] == "attr0"

    def test_validation(self, space):
        subs = subs_selective_on("attr0")
        events = [Event.of(attr0=1.0, attr1=1.0, attr2=1.0)]
        with pytest.raises(WorkloadError):
            select_dimensions(space, subs, events, threshold=0.0)
        with pytest.raises(SchemaError):
            select_dimensions(space, subs, events, k=99)


class TestOnZipfianTypes:
    def test_restricted_workload_needs_fewer_dimensions(self):
        """Type 1 (variance confined to 2 dims) should satisfy the same
        threshold with fewer selected dimensions than type 3."""
        ks = {}
        for type_id in (1, 3):
            wl = zipfian_type(type_id, seed=11)
            subs = wl.subscriptions(60)
            events = wl.events(200)
            selection = select_dimensions(
                wl.space, subs, events, threshold=0.8
            )
            ks[type_id] = selection.k
        assert ks[1] <= ks[3]

    def test_restricted_dimensions_ranked_low(self):
        wl = zipfian_type(1, seed=13)
        subs = wl.subscriptions(60)
        events = wl.events(200)
        selection = select_dimensions(wl.space, subs, events, k=2)
        # the informative dimensions are attr0/attr1 (unrestricted)
        assert set(selection.selected) <= {"attr0", "attr1"}
