"""Unit tests for the traffic monitor and re-selection driver."""

import pytest

from repro.core.events import Event, EventSpace
from repro.core.subscription import Subscription
from repro.dimsel.monitor import TrafficMonitor
from repro.exceptions import WorkloadError
from repro.workloads.scenarios import zipfian_type


@pytest.fixture
def space():
    return EventSpace.paper_schema(3)


def feed(monitor, count=50):
    import random

    rng = random.Random(3)
    for _ in range(count):
        monitor.record_event(
            Event.of(
                attr0=rng.uniform(0, 1023),
                attr1=1.0,
                attr2=1.0,
            )
        )


class TestWindow:
    def test_window_bounded(self, space):
        monitor = TrafficMonitor(space, window_size=10)
        feed(monitor, 25)
        assert len(monitor.window) == 10

    def test_invalid_window(self, space):
        with pytest.raises(WorkloadError):
            TrafficMonitor(space, window_size=0)

    def test_reselect_requires_events(self, space):
        monitor = TrafficMonitor(space)
        with pytest.raises(WorkloadError):
            monitor.reselect([Subscription.of()])


class TestReselect:
    def test_produces_restricted_indexer(self, space):
        monitor = TrafficMonitor(space, max_dz_length=12)
        feed(monitor)
        received = []
        monitor.on_reselect(lambda idx, sel: received.append((idx, sel)))
        subs = [
            Subscription.of(attr0=(i * 100, i * 100 + 99)) for i in range(8)
        ]
        selection = monitor.reselect(subs, k=1)
        assert selection.selected == ("attr0",)
        assert len(received) == 1
        indexer, _ = received[0]
        assert indexer.space.names == ("attr0",)
        assert indexer.max_dz_length == 12

    def test_rounds_counted(self, space):
        monitor = TrafficMonitor(space)
        feed(monitor)
        subs = [Subscription.of(attr0=(0, 99))]
        monitor.reselect(subs, k=1)
        monitor.reselect(subs, k=2)
        assert monitor.rounds == 2
        assert monitor.last_selection.k == 2

    def test_end_to_end_with_zipfian_type(self):
        wl = zipfian_type(1, seed=21)
        monitor = TrafficMonitor(wl.space, window_size=200)
        for event in wl.events(200):
            monitor.record_event(event)
        selection = monitor.reselect(wl.subscriptions(40), k=2)
        assert set(selection.selected) <= {"attr0", "attr1"}
