"""End-to-end integration tests: realistic workloads through the full stack."""

import pytest

from repro.core.events import Event
from repro.core.subscription import Filter
from repro.middleware.pleroma import Pleroma
from repro.network.topology import mininet_fat_tree, paper_fat_tree, ring
from repro.workloads.scenarios import paper_uniform, paper_zipfian


class TestRealisticWorkloads:
    def test_uniform_workload_no_false_negatives(self):
        """Every event matching a host's subscription must arrive, for a
        random uniform workload over the full testbed."""
        workload = paper_uniform(dimensions=3, seed=71, width_fraction=0.25)
        middleware = Pleroma(
            paper_fat_tree(), space=workload.space, max_dz_length=15,
            max_cells=128,
        )
        publisher = middleware.publisher("h1")
        publisher.advertise(workload.advertisement_covering_all())
        hosts = ["h2", "h3", "h4", "h5", "h6", "h7", "h8"]
        host_subs = {h: [] for h in hosts}
        for i, sub in enumerate(workload.subscriptions(40)):
            host = hosts[i % len(hosts)]
            middleware.subscribe(host, sub)
            host_subs[host].append(sub)
        events = workload.events(200)
        clients = {h: middleware.subscriber(h) for h in hosts}
        for event in events:
            publisher.publish(event)
        middleware.run()
        for host in hosts:
            wanted = [
                e for e in events
                if any(s.matches(e) for s in host_subs[host])
            ]
            got_ids = {e.event_id for e in clients[host].matched}
            for e in wanted:
                assert e.event_id in got_ids, (
                    f"{host} missed {e} "
                    f"(matched {len(clients[host].matched)})"
                )
        middleware.check_invariants()

    def test_zipfian_workload_bounded_false_positives(self):
        workload = paper_zipfian(dimensions=3, seed=73, width_fraction=0.25)
        middleware = Pleroma(
            paper_fat_tree(), space=workload.space, max_dz_length=18,
            max_cells=128,
        )
        publisher = middleware.publisher("h1")
        publisher.advertise(workload.advertisement_covering_all())
        for i, sub in enumerate(workload.subscriptions(100)):
            middleware.subscribe(f"h{2 + i % 7}", sub)
        for event in workload.events(300):
            publisher.publish(event)
        middleware.run()
        assert middleware.metrics.delivered > 0
        # fine indexing keeps unwanted traffic a minority
        assert middleware.metrics.false_positive_rate() < 50.0

    def test_churn_soak(self):
        """Random interleaving of subscribe/unsubscribe/advertise/
        unadvertise keeps all invariants and ends in a clean state."""
        import random

        rng = random.Random(77)
        workload = paper_uniform(dimensions=2, seed=79)
        middleware = Pleroma(
            mininet_fat_tree(), space=workload.space, max_dz_length=12
        )
        hosts = middleware.topology.hosts()
        live_subs: list[tuple[str, int]] = []
        live_advs: list[tuple[str, int]] = []
        for step in range(150):
            roll = rng.random()
            if roll < 0.35 or not live_advs:
                host = rng.choice(hosts)
                from repro.core.subscription import Advertisement

                state = middleware.advertise(
                    host, Advertisement(filter=workload.subscription().filter)
                )
                live_advs.append((host, state.adv_id))
            elif roll < 0.70:
                host = rng.choice(hosts)
                state = middleware.subscribe(host, workload.subscription())
                live_subs.append((host, state.sub_id))
            elif roll < 0.85 and live_subs:
                host, sub_id = live_subs.pop(
                    rng.randrange(len(live_subs))
                )
                middleware.unsubscribe(host, sub_id)
            elif live_advs:
                host, adv_id = live_advs.pop(
                    rng.randrange(len(live_advs))
                )
                middleware.unadvertise(host, adv_id)
            if step % 25 == 0:
                middleware.check_invariants()
        # tear everything down: the fabric must end empty
        for host, sub_id in live_subs:
            middleware.unsubscribe(host, sub_id)
        for host, adv_id in live_advs:
            middleware.unadvertise(host, adv_id)
        assert middleware.total_flows_installed() == 0
        assert len(middleware.controllers[0].trees) == 0

    def test_federated_soak(self):
        """Cross-partition churn on a partitioned ring stays consistent."""
        import random

        rng = random.Random(83)
        workload = paper_uniform(dimensions=2, seed=89, width_fraction=0.4)
        middleware = Pleroma(
            ring(12), space=workload.space, max_dz_length=10, partitions=3
        )
        hosts = middleware.topology.hosts()
        publishers = {}
        for host in hosts[:3]:
            pub = middleware.publisher(host)
            pub.advertise(Filter.of())
            publishers[host] = pub
        middleware.run()
        live = []
        for _ in range(30):
            host = rng.choice(hosts[3:])
            state = middleware.subscribe(host, workload.subscription())
            live.append((host, state.sub_id))
            middleware.run()
        for host, sub_id in rng.sample(live, 10):
            middleware.unsubscribe(host, sub_id)
            live.remove((host, sub_id))
            middleware.run()
        middleware.check_invariants()
        # publish and confirm deliveries still flow across partitions
        for pub in publishers.values():
            for event in workload.events(10):
                pub.publish(event)
        middleware.run()
        assert middleware.metrics.published == 30


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        """Two identical runs produce identical delivery sequences."""

        def run():
            workload = paper_zipfian(dimensions=2, seed=97)
            middleware = Pleroma(
                paper_fat_tree(), space=workload.space, max_dz_length=12
            )
            publisher = middleware.publisher("h1")
            publisher.advertise(workload.advertisement_covering_all())
            for i, sub in enumerate(workload.subscriptions(30)):
                middleware.subscribe(f"h{2 + i % 7}", sub)
            for i, event in enumerate(workload.events(100)):
                middleware.sim.schedule(
                    i * 1e-3, middleware.publish, "h1", event
                )
            middleware.run()
            return [
                (r.host, r.event.event_id, round(r.deliver_time, 12))
                for r in middleware.metrics.records
            ]

        assert run() == run()

    def test_flow_tables_deterministic(self):
        def tables():
            workload = paper_uniform(dimensions=2, seed=101)
            middleware = Pleroma(
                paper_fat_tree(), space=workload.space, max_dz_length=12
            )
            middleware.advertise(
                "h1", workload.advertisement_covering_all()
            )
            for i, sub in enumerate(workload.subscriptions(50)):
                middleware.subscribe(f"h{2 + i % 7}", sub)
            return {
                name: sorted(
                    (str(e.match), e.priority, tuple(sorted(map(str, e.actions))))
                    for e in switch.table
                )
                for name, switch in middleware.network.switches.items()
            }

        assert tables() == tables()


class TestScaleSmoke:
    def test_thousand_subscriptions(self):
        """A thousand subscriptions deploy quickly and deliver correctly."""
        workload = paper_zipfian(dimensions=4, seed=103)
        middleware = Pleroma(
            paper_fat_tree(), space=workload.space, max_dz_length=16
        )
        publisher = middleware.publisher("h1")
        publisher.advertise(workload.advertisement_covering_all())
        for i, sub in enumerate(workload.subscriptions(1000)):
            middleware.subscribe(f"h{2 + i % 7}", sub)
        middleware.check_invariants()
        for event in workload.events(50):
            publisher.publish(event)
        middleware.run()
        assert middleware.metrics.delivered > 0
        # the per-switch flow counts stay well within TCAM limits
        for switch in middleware.network.switches.values():
            assert len(switch.table) < 40_000
