"""End-to-end in-band telemetry: polling over real workloads on every
built-in topology, oracle reconciliation, alerting, cross-instance
determinism."""

import json
import random

import pytest

from repro.core.events import Event
from repro.core.subscription import Filter
from repro.middleware.pleroma import Pleroma
from repro.network.topology import (
    line,
    mininet_fat_tree,
    paper_fat_tree,
    ring,
)
from repro.obs.telemetry import reconcile_with_oracle

TOPOLOGIES = {
    "paper-fat-tree": paper_fat_tree,
    "mininet-fat-tree": mininet_fat_tree,
    "ring": ring,
    "line": lambda: line(4),
}


def run_workload(middleware: Pleroma, events: int = 60, seed: int = 0):
    rng = random.Random(seed)
    hosts = sorted(middleware.topology.hosts())
    middleware.publisher(hosts[0]).advertise(Filter.of())
    bands = ((0, 255), (256, 511), (512, 767), (768, 1023))
    for i, host in enumerate(hosts[1:]):
        middleware.subscriber(host).subscribe(
            Filter.of(attr0=bands[i % len(bands)])
        )
    for i in range(events):
        middleware.sim.schedule(
            i * 1e-3,
            middleware.publish,
            hosts[0],
            Event.of(
                attr0=rng.uniform(0, 1023), attr1=rng.uniform(0, 1023)
            ),
        )
    middleware.run()


class TestReconciliationEverywhere:
    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    def test_polled_counters_reconcile_with_oracle(self, name):
        """Acceptance: on every built-in topology, per-rule packet counts
        assembled purely from FlowStats replies agree with the oracle
        counters once the network drains (any residual error would have
        to come from traffic inside the final polling window — and after
        a drain plus a closing poll there is none)."""
        middleware = Pleroma(
            TOPOLOGIES[name](), dimensions=2, max_dz_length=12
        )
        poller, _engine = middleware.enable_telemetry(period_s=0.01)
        run_workload(middleware)
        poller.poll_now()
        middleware.run()
        report = reconcile_with_oracle(poller, middleware.network)
        assert report["max_rule_error_packets"] == 0, report
        assert report["max_age_s"] == pytest.approx(0.0)
        total_polled = sum(
            s["packets_polled"] for s in report["switches"].values()
        )
        assert total_polled > 0, "workload produced no counted traffic"


class TestEnableTelemetry:
    def test_returns_attached_poller_and_engine(self):
        middleware = Pleroma(paper_fat_tree(), dimensions=2)
        poller, engine = middleware.enable_telemetry()
        assert middleware.obs.telemetry is poller
        assert middleware.obs.alerts is engine
        assert engine.evaluate in poller.round_listeners
        assert poller.running

    def test_double_enable_rejected(self):
        from repro.exceptions import ControllerError

        middleware = Pleroma(paper_fat_tree(), dimensions=2)
        middleware.enable_telemetry()
        with pytest.raises(ControllerError):
            middleware.enable_telemetry()

    def test_client_requests_still_work_through_diversion(self):
        """Rewiring the switches through the telemetry channel must keep
        the in-band ``IP_pub/sub`` request path working."""
        from repro.controller.requests import SubscribeRequest
        from repro.core.addressing import PUBSUB_CONTROL_ADDRESS
        from repro.core.subscription import Subscription
        from repro.network.packet import Packet

        middleware = Pleroma(paper_fat_tree(), dimensions=2)
        middleware.enable_telemetry()
        middleware.network.hosts["h1"].send(
            Packet(
                dst_address=PUBSUB_CONTROL_ADDRESS,
                payload=SubscribeRequest(
                    "h1", Subscription.of(attr0=(0, 10))
                ),
            )
        )
        middleware.run()
        assert len(middleware.controllers[0].subscriptions) == 1

    def test_snapshot_gains_sections_only_when_enabled(self):
        plain = Pleroma(paper_fat_tree(), dimensions=2)
        document = plain.obs_snapshot(include_spans=False)
        assert "telemetry" not in document
        assert "alerts" not in document
        enabled = Pleroma(paper_fat_tree(), dimensions=2)
        enabled.enable_telemetry()
        run_workload(enabled, events=10)
        document = enabled.obs_snapshot(include_spans=False)
        assert document["telemetry"]["rounds_completed"] >= 1
        assert document["alerts"]["evaluations"] >= 1
        json.dumps(document, sort_keys=True)

    def test_port_loss_alert_fires_on_silent_link_failure(self):
        """A pure data-plane link failure (controller not told) surfaces
        through polled tx_dropped deltas and fires the default port-loss
        alert — detection without any oracle read."""
        middleware = Pleroma(paper_fat_tree(), dimensions=2)
        poller, engine = middleware.enable_telemetry(period_s=0.005)
        hosts = sorted(middleware.topology.hosts())
        middleware.publisher(hosts[0]).advertise(Filter.of())
        middleware.subscriber(hosts[-1]).subscribe(Filter.of())
        victim = middleware.topology.access_switch(hosts[-1])
        middleware.sim.schedule(
            0.02,
            middleware.network.link_between(hosts[-1], victim).fail,
        )
        for i in range(80):
            middleware.sim.schedule(
                i * 1e-3,
                middleware.publish,
                hosts[0],
                Event.of(attr0=500.0, attr1=500.0),
            )
        middleware.run()
        fired_rules = {alert.rule for alert in engine.history}
        assert "port-loss" in fired_rules


class TestCrossInstanceDeterminism:
    def test_two_deployments_same_seed_identical_telemetry(self):
        """Regression for the module-level cookie/xid leak: the second
        deployment in a process must produce byte-identical telemetry
        (cookies ride in FlowStats replies, so a leaked counter would
        show up here)."""

        def deploy() -> str:
            middleware = Pleroma(
                paper_fat_tree(), dimensions=2, max_dz_length=12
            )
            poller, engine = middleware.enable_telemetry(period_s=0.01)
            run_workload(middleware, events=30, seed=5)
            poller.poll_now()
            middleware.run()
            cookies = sorted(
                entry.cookie
                for view in poller.views.values()
                for entry in view.flows.values()
            )
            document = {
                "telemetry": poller.summary(),
                "alerts": engine.summary(),
                "cookies": cookies,
            }
            return json.dumps(document, sort_keys=True)

        assert deploy() == deploy()
