"""Unit tests for end-host behaviour beyond the fabric-level coverage."""

import pytest

from repro.exceptions import TopologyError
from repro.network.host import HOST_ADDRESS_BASE, Host
from repro.network.link import Link
from repro.network.packet import EventPayload, Packet
from repro.core.dz import Dz
from repro.core.events import Event
from repro.sim.engine import Simulator


class _Sink:
    name = "SINK"

    def __init__(self):
        self.packets = []

    def receive(self, packet, in_port):
        self.packets.append(packet)

    def attach_link(self, port, link):
        pass


def wire(sim, host):
    sink = _Sink()
    link = Link(sim, host, 1, sink, 1, delay_s=0.0, bandwidth_bps=1e12)
    host.attach_link(1, link)
    return sink


class TestLifecycle:
    def test_validation(self):
        sim = Simulator()
        with pytest.raises(TopologyError):
            Host(sim, "h", processing_rate_eps=0)
        with pytest.raises(TopologyError):
            Host(sim, "h", queue_capacity=0)

    def test_explicit_address(self):
        host = Host(Simulator(), "h", address=1234)
        assert host.address == 1234

    def test_fallback_address_unique(self):
        a = Host(Simulator(), "a")
        b = Host(Simulator(), "b")
        assert a.address != b.address
        assert a.address > HOST_ADDRESS_BASE

    def test_unattached_send_rejected(self):
        host = Host(Simulator(), "h")
        with pytest.raises(TopologyError):
            host.send(Packet(dst_address=1, payload=None))

    def test_double_attach_rejected(self):
        sim = Simulator()
        host = Host(sim, "h")
        wire(sim, host)
        with pytest.raises(TopologyError):
            wire(sim, host)


class TestSendReceive:
    def test_send_stamps_source_address(self):
        sim = Simulator()
        host = Host(sim, "h", address=77)
        sink = wire(sim, host)
        host.send(Packet(dst_address=1, payload=None))
        sim.run()
        assert sink.packets[0].src_address == 77
        assert host.packets_sent == 1

    def test_service_time_applied(self):
        sim = Simulator()
        host = Host(sim, "h", processing_rate_eps=100.0)
        delivered = []
        host.set_delivery_callback(lambda p, pkt, t: delivered.append(t))
        payload = EventPayload(Event.of(x=1), Dz("0"), "src", 0.0)
        host.receive(Packet(dst_address=host.address, payload=payload), 1)
        sim.run()
        assert delivered == [pytest.approx(0.01)]  # 1/rate

    def test_backlog_serialises(self):
        sim = Simulator()
        host = Host(sim, "h", processing_rate_eps=100.0, queue_capacity=10)
        times = []
        host.set_delivery_callback(lambda p, pkt, t: times.append(t))
        payload = EventPayload(Event.of(x=1), Dz("0"), "src", 0.0)
        for _ in range(3):
            host.receive(
                Packet(dst_address=host.address, payload=payload), 1
            )
        sim.run()
        assert times == [
            pytest.approx(0.01),
            pytest.approx(0.02),
            pytest.approx(0.03),
        ]

    def test_non_event_payload_counted_but_not_dispatched(self):
        sim = Simulator()
        host = Host(sim, "h")
        seen = []
        host.set_delivery_callback(lambda p, pkt, t: seen.append(p))
        host.receive(Packet(dst_address=host.address, payload="raw"), 1)
        sim.run()
        assert host.packets_delivered == 1
        assert seen == []

    def test_reset_counters(self):
        sim = Simulator()
        host = Host(sim, "h")
        host.receive(Packet(dst_address=host.address, payload=None), 1)
        sim.run()
        host.reset_counters()
        assert host.packets_arrived == 0
        assert host.packets_delivered == 0

    def test_queue_overflow_drop_labelled_in_snapshot(self):
        sim = Simulator()
        host = Host(sim, "h", processing_rate_eps=100.0, queue_capacity=1)
        # all at t=0: one in service, one queued, the rest overflow
        for _ in range(4):
            host.receive(Packet(dst_address=host.address, payload=None), 1)
        sim.run()
        assert host.packets_dropped == 2
        counters = host.registry.snapshot()["counters"]
        assert counters[
            "host.packets_dropped{host=h,reason=queue-overflow}"
        ] == 2
