"""Per-rule hardware counters (FlowStats) and cookie-counter scoping."""

import pytest

from repro.core.addressing import dz_to_address
from repro.core.dz import Dz
from repro.network.flow import (
    Action,
    FlowEntry,
    FlowStats,
    FlowTable,
    reset_cookie_counter,
)


def entry(bits: str, *ports: int) -> FlowEntry:
    return FlowEntry.for_dz(Dz(bits), {Action(p) for p in ports})


@pytest.fixture
def clocked_table():
    clock = {"now": 0.0}
    table = FlowTable(capacity=16, clock=lambda: clock["now"])
    return table, clock


class TestFlowStats:
    def test_fresh_entry_has_zero_counters(self, clocked_table):
        table, clock = clocked_table
        clock["now"] = 2.5
        e = entry("10", 1)
        table.install(e)
        stats = table.stats_for(e.match)
        assert stats == FlowStats(packets=0, bytes=0, created_at=2.5)
        assert stats.last_hit_at is None

    def test_record_hit_accumulates(self, clocked_table):
        table, _ = clocked_table
        e = entry("10", 1)
        table.install(e)
        table.record_hit(e, 100, 1.0)
        table.record_hit(e, 250, 2.0)
        stats = table.stats_for(e.match)
        assert stats.packets == 2
        assert stats.bytes == 350
        assert stats.last_hit_at == 2.0

    def test_modify_preserves_counters(self, clocked_table):
        """OpenFlow MODIFY semantics: replacing the entry for an existing
        match keeps the accumulated counters (only ADD of a new match
        starts from zero)."""
        table, clock = clocked_table
        e = entry("10", 1)
        table.install(e)
        table.record_hit(e, 100, 1.0)
        clock["now"] = 5.0
        replacement = entry("10", 2)
        table.install(replacement)
        stats = table.stats_for(replacement.match)
        assert stats.packets == 1
        assert stats.created_at == 0.0  # original install time survives

    def test_remove_deletes_stats(self, clocked_table):
        table, _ = clocked_table
        e = entry("10", 1)
        table.install(e)
        table.record_hit(e, 100, 1.0)
        table.remove(e.match)
        assert table.stats_for(e.match) is None
        # reinstalling the same match starts a fresh counter
        table.install(entry("10", 1))
        assert table.stats_for(e.match).packets == 0

    def test_clear_drops_all_stats(self, clocked_table):
        table, _ = clocked_table
        a, b = entry("10", 1), entry("01", 2)
        table.install(a)
        table.install(b)
        table.clear()
        assert table.stats_for(a.match) is None
        assert table.stats_for(b.match) is None

    def test_entries_with_stats_canonical_order(self, clocked_table):
        """(prefix_len desc, network asc) — the same canonical order the
        table iterates in, so stats replies are deterministic."""
        table, _ = clocked_table
        for bits in ("1", "01", "11", "000"):
            table.install(entry(bits, 1))
        listed = table.entries_with_stats()
        keys = [(e.match.prefix_len, e.match.network) for e, _ in listed]
        assert keys == sorted(keys, key=lambda k: (-k[0], k[1]))
        assert all(isinstance(s, FlowStats) for _, s in listed)

    def test_lookup_does_not_count(self, clocked_table):
        """Counting happens in ``Switch.receive`` (the switch knows the
        packet size); a bare lookup must not bump counters."""
        table, _ = clocked_table
        e = entry("10", 1)
        table.install(e)
        table.lookup(dz_to_address(Dz("10")))
        assert table.stats_for(e.match).packets == 0


class TestSwitchCounting:
    def test_receive_updates_rule_counters(self):
        from repro.network.fabric import Network
        from repro.network.packet import Packet
        from repro.network.topology import line
        from repro.sim.engine import Simulator

        sim = Simulator()
        net = Network(sim, line(2, hosts_per_switch=1))
        sw = net.switches["R1"]
        e = FlowEntry.for_dz(Dz("1"), {Action(net.port("R1", "R2"))})
        sw.table.install(e)
        for _ in range(3):
            sw.receive(
                Packet(
                    dst_address=dz_to_address(Dz("1")),
                    payload=None,
                    size_bytes=500,
                ),
                in_port=net.port("R1", "h1"),
            )
        sim.run()
        stats = sw.table.stats_for(e.match)
        assert stats.packets == 3
        assert stats.bytes == 1500
        assert stats.last_hit_at is not None

    def test_created_at_uses_sim_clock(self):
        from repro.network.fabric import Network
        from repro.network.topology import line
        from repro.sim.engine import Simulator

        sim = Simulator()
        net = Network(sim, line(2, hosts_per_switch=1))
        sw = net.switches["R1"]
        e = entry("1", 1)
        sim.schedule(0.125, sw.table.install, e)
        sim.run()
        assert sw.table.stats_for(e.match).created_at == 0.125


class TestCookieScoping:
    def test_reset_restarts_allocation(self):
        reset_cookie_counter()
        first = entry("1", 1).cookie
        entry("0", 1)  # burn a cookie
        reset_cookie_counter()
        assert entry("1", 1).cookie == first

    def test_two_networks_same_seed_get_identical_cookies(self):
        """Regression for the cross-instance leak: cookie allocation is
        scoped per fabric, so the N-th deployment of a process sees the
        same cookie sequence as the first."""
        from repro.network.fabric import Network
        from repro.network.topology import line
        from repro.sim.engine import Simulator

        def deploy() -> list[int]:
            net = Network(Simulator(), line(2, hosts_per_switch=1))
            sw = net.switches["R1"]
            cookies = []
            for bits in ("1", "01", "001"):
                e = entry(bits, 1)
                sw.table.install(e)
                cookies.append(e.cookie)
            return cookies

        assert deploy() == deploy()
