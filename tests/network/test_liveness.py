"""Link/switch liveness status: gauges, restore semantics, report output.

``Link.fail()``/``restore()`` and ``Switch.fail()``/``restore()`` used to
be silent bit flips; now every transition is visible in the registry (the
failure detector's SLOs and the ``report`` CLI depend on that), restore
resets the transmit-queue horizon, and a crashed switch loses its TCAM.
"""

from repro.core.events import Event
from repro.core.subscription import Filter
from repro.middleware.pleroma import Pleroma
from repro.network.topology import line
from repro.obs.export import render_report


def deploy():
    middleware = Pleroma(line(4), dimensions=2, max_dz_length=10)
    middleware.publisher("h1").advertise(Filter.of())
    middleware.subscriber("h4").subscribe(Filter.of())
    return middleware


class TestLinkStatus:
    def test_fail_and_restore_toggle_admin_status(self):
        middleware = deploy()
        link = middleware.network.link_between("R1", "R2")
        gauges = middleware.obs.registry
        key = f"link.admin_up{{link={link.label}}}"
        assert link.up and link.admin_up
        assert gauges.snapshot()["gauges"][key] == 1.0
        link.fail()
        assert not link.up and not link.admin_up and link.oper_up
        assert gauges.snapshot()["gauges"][key] == 0.0
        link.restore()
        assert link.up and link.admin_up
        assert gauges.snapshot()["gauges"][key] == 1.0

    def test_fail_restore_idempotent_and_counted(self):
        middleware = deploy()
        link = middleware.network.link_between("R1", "R2")
        key = f"link.status_changes{{link={link.label}}}"
        link.fail()
        link.fail()
        link.restore()
        link.restore()
        counters = middleware.obs.registry.snapshot()["counters"]
        assert counters[key] == 2  # one down, one up — no double counting

    def test_oper_status_is_independent_of_admin(self):
        middleware = deploy()
        link = middleware.network.link_between("R1", "R2")
        link.set_oper(False)
        assert not link.up and link.admin_up and not link.oper_up
        key = f"link.oper_up{{link={link.label}}}"
        assert middleware.obs.registry.snapshot()["gauges"][key] == 0.0
        link.set_oper(True)
        assert link.up

    def test_restore_resets_transmit_queues(self):
        """Traffic queued behind the pre-failure busy horizon must not
        delay post-restore traffic: a restored link starts clean."""
        middleware = deploy()
        link = middleware.network.link_between("R1", "R2")
        # drive the busy horizon forward, then fail mid-stream
        middleware.publish("h1", Event.of(attr0=1.0, attr1=1.0))
        middleware.run()
        assert max(link._dir_ab.busy_until, link._dir_ba.busy_until) > 0.0
        link.fail()
        link.restore()
        assert link._dir_ab.busy_until == 0.0
        assert link._dir_ba.busy_until == 0.0

    def test_down_traffic_is_lost_and_counted(self):
        middleware = deploy()
        link = middleware.network.link_between("R2", "R3")
        link.fail()
        middleware.publish("h1", Event.of(attr0=1.0, attr1=1.0))
        middleware.run()
        assert link.packets_lost_down >= 1


class TestSwitchLiveness:
    def test_crash_clears_tcam_and_drops_traffic(self):
        middleware = deploy()
        switch = middleware.network.switches["R2"]
        assert len(switch.table) > 0  # deployment installed flows
        switch.fail()
        assert not switch.up
        assert len(switch.table) == 0  # TCAM is volatile
        middleware.publish("h1", Event.of(attr0=1.0, attr1=1.0))
        middleware.run()
        counters = middleware.obs.registry.snapshot()["counters"]
        key = "switch.packets_dropped{reason=switch-down,switch=R2}"
        assert counters[key] >= 1

    def test_revive_comes_back_cold(self):
        middleware = deploy()
        switch = middleware.network.switches["R2"]
        switch.fail()
        switch.restore()
        assert switch.up
        assert len(switch.table) == 0  # nobody reinstalled flows yet
        gauge = middleware.obs.registry.snapshot()["gauges"]
        assert gauge["switch.up{switch=R2}"] == 1.0


class TestReportShowsDownDevices:
    def test_down_devices_section_lists_failed_elements(self):
        middleware = deploy()
        middleware.network.link_between("R1", "R2").fail()
        middleware.network.link_between("R2", "R3").set_oper(False)
        middleware.network.switches["R4"].fail()
        out = render_report(middleware.obs_snapshot())
        assert "down devices" in out
        assert "R1<->R2" in out and "admin down" in out
        assert "R2<->R3" in out and "oper down" in out
        assert "R4" in out and "down" in out

    def test_healthy_deployment_renders_no_down_section(self):
        middleware = deploy()
        out = render_report(middleware.obs_snapshot())
        assert "down devices" not in out
