"""Multipart statistics messages: wire sizes, channel replies, xid scope."""

import dataclasses

import pytest

from repro.core.addressing import dz_to_address
from repro.core.dz import Dz
from repro.network.control_channel import ControlChannel
from repro.network.fabric import Network
from repro.network.flow import Action, FlowEntry
from repro.network.openflow import (
    FlowStatsReply,
    FlowStatsRequest,
    OpenFlowMessage,
    PortStatsReply,
    PortStatsRequest,
    TableStatsReply,
    TableStatsRequest,
    message_size,
    reset_xid_counter,
)
from repro.network.packet import Packet
from repro.network.topology import line
from repro.sim.engine import Simulator


@pytest.fixture
def rig():
    sim = Simulator()
    net = Network(sim, line(2, hosts_per_switch=1))
    channel = ControlChannel(sim, latency_s=1e-3)
    channel.connect(net.switches["R1"])
    channel.connect(net.switches["R2"])
    return sim, net, channel


def _reply_of(channel, kind):
    return next(r for r in channel.replies if isinstance(r, kind))


def _install_and_blast(sim, net, packets=4, size=500):
    sw = net.switches["R1"]
    e = FlowEntry.for_dz(Dz("1"), {Action(net.port("R1", "R2"))})
    sw.table.install(e)
    for _ in range(packets):
        sw.receive(
            Packet(
                dst_address=dz_to_address(Dz("1")),
                payload=None,
                size_bytes=size,
            ),
            in_port=net.port("R1", "h1"),
        )
    sim.run()
    return e


class TestFlowStats:
    def test_reply_carries_rule_counters(self, rig):
        sim, net, channel = rig
        e = _install_and_blast(sim, net, packets=4, size=500)
        request = FlowStatsRequest()
        channel.send("R1", request)
        sim.run()
        reply = _reply_of(channel, FlowStatsReply)
        assert reply.xid == request.xid
        assert reply.datapath == "R1"
        (stat,) = reply.entries
        assert stat.match == e.match
        assert stat.cookie == e.cookie
        assert stat.packet_count == 4
        assert stat.byte_count == 2000
        assert stat.duration_s >= 0.0

    def test_empty_table_gives_empty_reply(self, rig):
        sim, net, channel = rig
        channel.send("R2", FlowStatsRequest())
        sim.run()
        assert _reply_of(channel, FlowStatsReply).entries == ()

    def test_counters_read_at_application_time(self, rig):
        """The reply snapshots the counters when the request *arrives* at
        the switch — traffic after the snapshot is invisible to it (the
        staleness the telemetry layer quantifies)."""
        sim, net, channel = rig
        e = _install_and_blast(sim, net, packets=2)
        channel.send("R1", FlowStatsRequest())
        sim.run()
        net.switches["R1"].table.record_hit(e, 1, sim.now)  # after snapshot
        reply = _reply_of(channel, FlowStatsReply)
        assert reply.entries[0].packet_count == 2


class TestPortStats:
    def test_tx_rx_and_drop_counters(self, rig):
        sim, net, channel = rig
        _install_and_blast(sim, net, packets=3, size=400)
        channel.send("R1", PortStatsRequest())
        sim.run()
        reply = _reply_of(channel, PortStatsReply)
        by_port = {p.port: p for p in reply.ports}
        trunk = net.port("R1", "R2")
        access = net.port("R1", "h1")
        assert by_port[trunk].tx_packets == 3
        assert by_port[trunk].tx_bytes == 1200
        assert by_port[trunk].tx_dropped == 0
        assert by_port[access].tx_packets == 0
        # ports appear in sorted order
        assert [p.port for p in reply.ports] == sorted(by_port)

    def test_down_link_counts_tx_dropped(self, rig):
        sim, net, channel = rig
        net.link_between("R1", "R2").fail()
        _install_and_blast(sim, net, packets=2)
        channel.send("R1", PortStatsRequest())
        sim.run()
        reply = _reply_of(channel, PortStatsReply)
        trunk = next(p for p in reply.ports if p.port == net.port("R1", "R2"))
        assert trunk.tx_dropped == 2
        assert trunk.tx_packets == 0


class TestTableStats:
    def test_occupancy_and_lookup_counters(self, rig):
        sim, net, channel = rig
        _install_and_blast(sim, net, packets=2)
        sw = net.switches["R1"]
        sw.receive(  # one table miss
            Packet(dst_address=dz_to_address(Dz("01")), payload=None),
            in_port=net.port("R1", "h1"),
        )
        sim.run()
        channel.send("R1", TableStatsRequest())
        sim.run()
        reply = _reply_of(channel, TableStatsReply)
        assert reply.active_count == 1
        assert reply.capacity == sw.table.capacity
        assert reply.lookup_count == 3
        assert reply.matched_count == 2


class TestWireSizes:
    def test_request_sizes_are_multipart_fixed(self):
        for request in (
            FlowStatsRequest(),
            PortStatsRequest(),
            TableStatsRequest(),
        ):
            assert message_size(request) == 16  # header + multipart header

    def test_reply_sizes_scale_with_entries(self, rig):
        sim, net, channel = rig
        _install_and_blast(sim, net)
        for request in (
            FlowStatsRequest(),
            PortStatsRequest(),
            TableStatsRequest(),
        ):
            channel.send("R1", request)
        sim.run()
        flow = _reply_of(channel, FlowStatsReply)
        assert message_size(flow) == 16 + 80 * len(flow.entries)
        port = _reply_of(channel, PortStatsReply)
        assert message_size(port) == 16 + 112 * len(port.ports)
        table = _reply_of(channel, TableStatsReply)
        assert message_size(table) == 16 + 24

    def test_stats_polling_is_byte_accounted(self, rig):
        sim, net, channel = rig
        before = channel.bytes_to_switches()
        request = FlowStatsRequest()
        channel.send("R1", request)
        sim.run()
        assert channel.bytes_to_switches() == before + message_size(request)
        reply = _reply_of(channel, FlowStatsReply)
        assert channel.bytes_to_controller() == message_size(reply)


def _concrete_message_types() -> list[type]:
    found: list[type] = []
    pending = list(OpenFlowMessage.__subclasses__())
    while pending:
        cls = pending.pop()
        pending.extend(cls.__subclasses__())
        found.append(cls)
    return found


class TestSizeRuleCompleteness:
    def test_every_concrete_message_type_has_a_size_rule(self):
        """Satellite: a message type cannot ride the control channel
        without explicit byte accounting.  Walks every subclass of
        ``OpenFlowMessage`` and requires an exact-type entry in
        ``_SIZE_RULES``."""
        from repro.network.openflow import _SIZE_RULES

        types = [
            cls
            for cls in _concrete_message_types()
            # test-local subclasses (e.g. Rogue below) are exempt
            if cls.__module__ == "repro.network.openflow"
        ]
        assert len(types) >= 16  # sanity: the whole catalog was found
        missing = [
            cls.__name__ for cls in types if cls not in _SIZE_RULES
        ]
        assert missing == []

    def test_unknown_message_type_is_rejected(self):
        @dataclasses.dataclass(frozen=True)
        class Rogue(OpenFlowMessage):
            pass

        with pytest.raises(LookupError, match="no wire-size rule"):
            message_size(Rogue())


class TestXidScoping:
    def test_reset_restarts_allocation(self):
        reset_xid_counter()
        first = FlowStatsRequest().xid
        FlowStatsRequest()  # burn one
        reset_xid_counter()
        assert FlowStatsRequest().xid == first

    def test_fabric_construction_resets_xids(self):
        """Regression for the cross-instance leak: building a fresh
        network restarts xid allocation, so back-to-back deployments see
        identical message ids."""

        def deploy() -> list[int]:
            sim = Simulator()
            Network(sim, line(2, hosts_per_switch=1))
            return [FlowStatsRequest().xid for _ in range(3)]

        assert deploy() == deploy()
