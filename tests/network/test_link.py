"""Unit tests for the link model: delay, serialization, queueing."""

import pytest

from repro.exceptions import TopologyError
from repro.network.link import Link
from repro.network.packet import Packet
from repro.sim.engine import Simulator


class _StubNode:
    def __init__(self, name):
        self.name = name
        self.received = []

    def receive(self, packet, in_port):
        self.received.append((packet, in_port))

    def attach_link(self, port, link):
        pass


@pytest.fixture
def rig():
    sim = Simulator()
    a, b = _StubNode("A"), _StubNode("B")
    link = Link(sim, a, 1, b, 2, delay_s=1e-3, bandwidth_bps=8e6)
    return sim, a, b, link


def packet(size=1000):
    return Packet(dst_address=0xFF0E << 112, payload=None, size_bytes=size)


class TestTransmission:
    def test_arrival_time_is_serialization_plus_delay(self, rig):
        sim, a, b, link = rig
        # 1000 B at 8 Mbit/s = 1 ms serialization, + 1 ms propagation
        link.transmit(a, packet(1000))
        sim.run()
        assert sim.now == pytest.approx(2e-3)
        assert len(b.received) == 1

    def test_far_port_number(self, rig):
        sim, a, b, link = rig
        link.transmit(a, packet())
        sim.run()
        assert b.received[0][1] == 2
        link.transmit(b, packet())
        sim.run()
        assert a.received[0][1] == 1

    def test_serialization_queueing_fifo(self, rig):
        """Back-to-back packets in the same direction serialise: second
        arrival is one serialization time after the first."""
        sim, a, b, link = rig
        arrivals = []
        b.receive = lambda pkt, port: arrivals.append(sim.now)
        link.transmit(a, packet(1000))
        link.transmit(a, packet(1000))
        sim.run()
        assert arrivals[0] == pytest.approx(2e-3)
        assert arrivals[1] == pytest.approx(3e-3)

    def test_directions_independent(self, rig):
        sim, a, b, link = rig
        link.transmit(a, packet(1000))
        link.transmit(b, packet(1000))
        sim.run()
        # both arrive at 2 ms: no cross-direction queueing
        assert len(a.received) == 1 and len(b.received) == 1

    def test_hop_counter_incremented(self, rig):
        sim, a, b, link = rig
        p = packet()
        link.transmit(a, p)
        sim.run()
        assert b.received[0][0].hops == 1


class TestAccounting:
    def test_counters(self, rig):
        sim, a, b, link = rig
        link.transmit(a, packet(100))
        link.transmit(b, packet(300))
        sim.run()
        assert link.total_packets == 2
        assert link.total_bytes == 400

    def test_reset_keeps_busy_state(self, rig):
        sim, a, b, link = rig
        link.transmit(a, packet())
        link.reset_counters()
        assert link.total_packets == 0
        sim.run()
        assert len(b.received) == 1  # in-flight packet unaffected

    def test_down_loss_counted_and_in_snapshot(self, rig):
        sim, a, b, link = rig
        link.fail()
        link.transmit(a, packet())
        link.transmit(b, packet())
        sim.run()
        assert link.packets_lost_down == 2
        assert b.received == []
        counters = link.registry.snapshot()["counters"]
        assert counters["link.packets_lost_down{link=A<->B}"] == 2

    def test_restore_stops_loss(self, rig):
        sim, a, b, link = rig
        link.fail()
        link.transmit(a, packet())
        link.restore()
        link.transmit(a, packet())
        sim.run()
        assert link.packets_lost_down == 1
        assert len(b.received) == 1

    def test_reset_clears_down_loss(self, rig):
        sim, a, b, link = rig
        link.fail()
        link.transmit(a, packet())
        link.reset_counters()
        assert link.packets_lost_down == 0


class TestValidation:
    def test_invalid_parameters(self):
        sim = Simulator()
        a, b = _StubNode("A"), _StubNode("B")
        with pytest.raises(TopologyError):
            Link(sim, a, 1, b, 2, delay_s=-1)
        with pytest.raises(TopologyError):
            Link(sim, a, 1, b, 2, bandwidth_bps=0)

    def test_foreign_node_rejected(self, rig):
        sim, a, b, link = rig
        stranger = _StubNode("C")
        with pytest.raises(TopologyError):
            link.transmit(stranger, packet())
        with pytest.raises(TopologyError):
            link.endpoint_for(stranger)
        with pytest.raises(TopologyError):
            link.port_for(stranger)

    def test_endpoint_for(self, rig):
        _, a, b, link = rig
        assert link.endpoint_for(a) == (b, 2)
        assert link.endpoint_for(b) == (a, 1)
        assert link.port_for(a) == 1
