"""Unit tests for flow entries and the TCAM table model."""

import pytest

from repro.core.addressing import dz_to_address, dz_to_prefix
from repro.core.dz import Dz
from repro.exceptions import FlowTableError
from repro.network.flow import Action, FlowEntry, FlowTable


def entry(bits: str, *ports: int, priority: int | None = None) -> FlowEntry:
    return FlowEntry.for_dz(
        Dz(bits), {Action(p) for p in ports}, priority=priority
    )


class TestFlowEntry:
    def test_default_priority_is_dz_length(self):
        assert entry("101", 1).priority == 3
        assert entry("", 1).priority == 0

    def test_dz_round_trip(self):
        assert entry("0110", 1).dz == Dz("0110")

    def test_out_ports(self):
        e = FlowEntry.for_dz(Dz("1"), {Action(2), Action(3, set_dest=5)})
        assert e.out_ports == {2, 3}

    def test_covers_requires_match_and_actions(self):
        # Sec. 3.3.2: fl1 >= fl2 iff dz covers AND ports superset
        coarse = entry("10", 2, 3)
        fine = entry("100", 2)
        assert coarse.covers(fine)
        assert not fine.covers(coarse)

    def test_covers_fails_on_missing_port(self):
        assert not entry("10", 2).covers(entry("100", 2, 3))

    def test_partial_covering(self):
        # coarser match but missing some actions
        assert entry("10", 2).partially_covers(entry("100", 2, 3))
        assert not entry("10", 2, 3).partially_covers(entry("100", 2))
        # disjoint dz: neither covers nor partially covers
        assert not entry("11", 2).partially_covers(entry("100", 2, 3))

    def test_set_dest_distinguishes_actions(self):
        a = FlowEntry.for_dz(Dz("1"), {Action(2, set_dest=10)})
        b = FlowEntry.for_dz(Dz("1"), {Action(2)})
        assert not a.covers(b)
        assert not b.covers(a)

    def test_with_actions_and_priority(self):
        e = entry("1", 2)
        e2 = e.with_actions(frozenset({Action(2), Action(3)})).with_priority(9)
        assert e2.out_ports == {2, 3}
        assert e2.priority == 9
        assert e2.match == e.match

    def test_sorted_actions_is_deterministic(self):
        """The forwarding path must not depend on frozenset iteration
        order (salted per process via ``hash(None)`` on CPython < 3.12):
        replication order at fan-out points is observable in flight
        records and host arrival sequences."""
        e = FlowEntry.for_dz(
            Dz("1"),
            {Action(7), Action(2, set_dest=99), Action(5), Action(2)},
        )
        expected = (
            Action(2), Action(2, set_dest=99), Action(5), Action(7),
        )
        assert e.sorted_actions() == expected
        # cached: repeated calls return the same tuple object
        assert e.sorted_actions() is e.sorted_actions()


class TestFlowTableInstall:
    def test_install_and_get(self):
        table = FlowTable()
        e = entry("101", 2)
        table.install(e)
        assert table.get(e.match) is e
        assert table.get_dz(Dz("101")) is e
        assert len(table) == 1

    def test_install_replaces_same_match(self):
        table = FlowTable()
        table.install(entry("101", 2))
        table.install(entry("101", 2, 3))
        assert len(table) == 1
        assert table.get_dz(Dz("101")).out_ports == {2, 3}

    def test_remove(self):
        table = FlowTable()
        e = entry("101", 2)
        table.install(e)
        removed = table.remove(e.match)
        assert removed is e
        assert len(table) == 0

    def test_remove_missing_raises(self):
        with pytest.raises(FlowTableError):
            FlowTable().remove(dz_to_prefix(Dz("1")))

    def test_capacity_enforced(self):
        table = FlowTable(capacity=2)
        table.install(entry("00", 1))
        table.install(entry("01", 1))
        with pytest.raises(FlowTableError):
            table.install(entry("10", 1))

    def test_replace_does_not_consume_capacity(self):
        table = FlowTable(capacity=1)
        table.install(entry("00", 1))
        table.install(entry("00", 2))  # replacement, not addition
        assert len(table) == 1

    def test_clear(self):
        table = FlowTable()
        table.install(entry("0", 1))
        table.clear()
        assert len(table) == 0


class TestLookup:
    def test_longest_prefix_wins(self):
        """The Fig. 3 R3 example: event dz=1001 matches flows dz=1 and
        dz=100; the longer dz must win via priority."""
        table = FlowTable()
        table.install(entry("1", 2))
        table.install(entry("100", 2, 3))
        hit = table.lookup(dz_to_address(Dz("1001")))
        assert hit.dz == Dz("100")

    def test_priority_overrides_length(self):
        table = FlowTable()
        table.install(entry("1", 2, priority=10))
        table.install(entry("100", 3, priority=0))
        hit = table.lookup(dz_to_address(Dz("1001")))
        assert hit.dz == Dz("1")

    def test_miss_returns_none_and_counts(self):
        table = FlowTable()
        table.install(entry("0", 1))
        assert table.lookup(dz_to_address(Dz("1"))) is None
        assert table.misses == 1
        assert table.lookups == 1

    def test_root_flow_matches_everything_in_range(self):
        table = FlowTable()
        table.install(entry("", 1))
        assert table.lookup(dz_to_address(Dz("10110"))) is not None

    def test_matching_entries_most_specific_first(self):
        table = FlowTable()
        table.install(entry("1", 2))
        table.install(entry("10", 2))
        table.install(entry("101", 2))
        hits = table.matching_entries(dz_to_address(Dz("10110")))
        assert [h.dz for h in hits] == [Dz("101"), Dz("10"), Dz("1")]

    def test_iteration_yields_all(self):
        table = FlowTable()
        for bits in ("0", "10", "110"):
            table.install(entry(bits, 1))
        assert {e.dz for e in table} == {Dz("0"), Dz("10"), Dz("110")}

    def test_lookup_scales_with_distinct_lengths_only(self):
        """Many same-length entries do not slow the dict-backed lookup —
        mirroring the TCAM's occupancy-independent latency (Fig. 7a)."""
        table = FlowTable()
        for value in range(2000):
            table.install(entry(format(value, "011b"), 1))
        address = dz_to_address(Dz("00000000001"))
        assert table.lookup(address).dz == Dz("00000000001")
