"""Unit tests for the switch model beyond the fabric-level tests."""

import pytest

from repro.core.addressing import dz_to_address
from repro.core.dz import Dz
from repro.exceptions import TopologyError
from repro.network.fabric import Network, NetworkParams
from repro.network.flow import Action, FlowEntry
from repro.network.packet import Packet
from repro.network.topology import line, star
from repro.sim.engine import Simulator


@pytest.fixture
def rig():
    sim = Simulator()
    net = Network(sim, line(2, hosts_per_switch=1))
    return sim, net


class TestPorts:
    def test_port_to(self, rig):
        _, net = rig
        r1 = net.switches["R1"]
        assert r1.port_to("R2") == net.port("R1", "R2")
        with pytest.raises(TopologyError):
            r1.port_to("R9")

    def test_double_attach_rejected(self, rig):
        _, net = rig
        r1 = net.switches["R1"]
        link = net.link_between("R1", "R2")
        with pytest.raises(TopologyError):
            r1.attach_link(net.port("R1", "R2"), link)

    def test_send_via_unknown_port(self, rig):
        _, net = rig
        with pytest.raises(TopologyError):
            net.switches["R1"].send_via_port(99, Packet(dst_address=1, payload=None))


class TestForwardingDetails:
    def test_lookup_delay_applied(self):
        sim = Simulator()
        params = NetworkParams(
            switch_lookup_delay_s=1e-3, switch_lookup_jitter_s=0.0,
            link_delay_s=0.0,
        )
        net = Network(sim, line(1, hosts_per_switch=2), params=params)
        h2 = net.hosts["h2"]
        net.switches["R1"].table.install(
            FlowEntry.for_dz(
                Dz("1"), {Action(net.port("R1", "h2"), set_dest=h2.address)}
            )
        )
        net.hosts["h1"].send(Packet(dst_address=dz_to_address(Dz("1")), payload=None))
        sim.run()
        # one lookup delay plus two (zero-latency) link serializations and
        # the host's service time
        assert sim.now >= 1e-3

    def test_action_to_missing_port_counts_drop(self, rig):
        sim, net = rig
        r1 = net.switches["R1"]
        r1.table.install(FlowEntry.for_dz(Dz("1"), {Action(99)}))
        net.hosts["h1"].send(Packet(dst_address=dz_to_address(Dz("1")), payload=None))
        sim.run()
        assert r1.packets_dropped == 1

    def test_statistics_counters(self, rig):
        sim, net = rig
        r1 = net.switches["R1"]
        r1.table.install(
            FlowEntry.for_dz(Dz("1"), {Action(net.port("R1", "R2"))})
        )
        net.hosts["h1"].send(Packet(dst_address=dz_to_address(Dz("1")), payload=None))
        net.hosts["h1"].send(Packet(dst_address=dz_to_address(Dz("0")), payload=None))
        sim.run()
        assert r1.packets_received == 2
        assert r1.packets_forwarded == 1
        assert r1.packets_dropped == 1

    def test_multicast_fanout_counts_each_port(self):
        sim = Simulator()
        net = Network(sim, star(3, hosts_per_leaf=0))
        hub = net.switches["HUB"]
        hub.table.install(
            FlowEntry.for_dz(
                Dz(""),
                {
                    Action(net.port("HUB", "L1")),
                    Action(net.port("HUB", "L2")),
                    Action(net.port("HUB", "L3")),
                },
            )
        )
        hub.receive(
            Packet(dst_address=dz_to_address(Dz("0")), payload=None),
            in_port=net.port("HUB", "L3"),
        )
        sim.run()
        # ingress-port action suppressed: only two copies leave
        assert hub.packets_forwarded == 2

    def test_rewrite_changes_only_the_copy(self, rig):
        """The set-dest action must not mutate the original packet object
        (other tree branches still need the dz address)."""
        sim, net = rig
        h2 = net.hosts["h2"]
        r1, r2 = net.switches["R1"], net.switches["R2"]
        r1.table.install(
            FlowEntry.for_dz(Dz("1"), {Action(net.port("R1", "R2"))})
        )
        r2.table.install(
            FlowEntry.for_dz(
                Dz("1"), {Action(net.port("R2", "h2"), set_dest=h2.address)}
            )
        )
        original = Packet(dst_address=dz_to_address(Dz("1")), payload=None)
        net.hosts["h1"].send(original)
        sim.run()
        assert original.dst_address == dz_to_address(Dz("1"))
        assert h2.packets_arrived == 1
