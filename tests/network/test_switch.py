"""Unit tests for the switch model beyond the fabric-level tests."""

import pytest

from repro.core.addressing import dz_to_address
from repro.core.dz import Dz
from repro.exceptions import TopologyError
from repro.network.fabric import Network, NetworkParams
from repro.network.flow import Action, FlowEntry
from repro.network.link import Link
from repro.network.packet import Packet
from repro.network.switch import Switch
from repro.network.topology import line, star
from repro.sim.engine import Simulator


@pytest.fixture
def rig():
    sim = Simulator()
    net = Network(sim, line(2, hosts_per_switch=1))
    return sim, net


class TestPorts:
    def test_port_to(self, rig):
        _, net = rig
        r1 = net.switches["R1"]
        assert r1.port_to("R2") == net.port("R1", "R2")
        with pytest.raises(TopologyError):
            r1.port_to("R9")

    def test_double_attach_rejected(self, rig):
        _, net = rig
        r1 = net.switches["R1"]
        link = net.link_between("R1", "R2")
        with pytest.raises(TopologyError):
            r1.attach_link(net.port("R1", "R2"), link)

    def test_send_via_unknown_port(self, rig):
        _, net = rig
        with pytest.raises(TopologyError):
            net.switches["R1"].send_via_port(99, Packet(dst_address=1, payload=None))


class TestForwardingDetails:
    def test_lookup_delay_applied(self):
        sim = Simulator()
        params = NetworkParams(
            switch_lookup_delay_s=1e-3, switch_lookup_jitter_s=0.0,
            link_delay_s=0.0,
        )
        net = Network(sim, line(1, hosts_per_switch=2), params=params)
        h2 = net.hosts["h2"]
        net.switches["R1"].table.install(
            FlowEntry.for_dz(
                Dz("1"), {Action(net.port("R1", "h2"), set_dest=h2.address)}
            )
        )
        net.hosts["h1"].send(Packet(dst_address=dz_to_address(Dz("1")), payload=None))
        sim.run()
        # one lookup delay plus two (zero-latency) link serializations and
        # the host's service time
        assert sim.now >= 1e-3

    def test_action_to_missing_port_counts_drop(self, rig):
        sim, net = rig
        r1 = net.switches["R1"]
        r1.table.install(FlowEntry.for_dz(Dz("1"), {Action(99)}))
        net.hosts["h1"].send(Packet(dst_address=dz_to_address(Dz("1")), payload=None))
        sim.run()
        assert r1.packets_dropped == 1

    def test_statistics_counters(self, rig):
        sim, net = rig
        r1 = net.switches["R1"]
        r1.table.install(
            FlowEntry.for_dz(Dz("1"), {Action(net.port("R1", "R2"))})
        )
        net.hosts["h1"].send(Packet(dst_address=dz_to_address(Dz("1")), payload=None))
        net.hosts["h1"].send(Packet(dst_address=dz_to_address(Dz("0")), payload=None))
        sim.run()
        assert r1.packets_received == 2
        assert r1.packets_forwarded == 1
        assert r1.packets_dropped == 1

    def test_multicast_fanout_counts_each_port(self):
        sim = Simulator()
        net = Network(sim, star(3, hosts_per_leaf=0))
        hub = net.switches["HUB"]
        hub.table.install(
            FlowEntry.for_dz(
                Dz(""),
                {
                    Action(net.port("HUB", "L1")),
                    Action(net.port("HUB", "L2")),
                    Action(net.port("HUB", "L3")),
                },
            )
        )
        hub.receive(
            Packet(dst_address=dz_to_address(Dz("0")), payload=None),
            in_port=net.port("HUB", "L3"),
        )
        sim.run()
        # ingress-port action suppressed: only two copies leave
        assert hub.packets_forwarded == 2

    def test_rewrite_changes_only_the_copy(self, rig):
        """The set-dest action must not mutate the original packet object
        (other tree branches still need the dz address)."""
        sim, net = rig
        h2 = net.hosts["h2"]
        r1, r2 = net.switches["R1"], net.switches["R2"]
        r1.table.install(
            FlowEntry.for_dz(Dz("1"), {Action(net.port("R1", "R2"))})
        )
        r2.table.install(
            FlowEntry.for_dz(
                Dz("1"), {Action(net.port("R2", "h2"), set_dest=h2.address)}
            )
        )
        original = Packet(dst_address=dz_to_address(Dz("1")), payload=None)
        net.hosts["h1"].send(original)
        sim.run()
        assert original.dst_address == dz_to_address(Dz("1"))
        assert h2.packets_arrived == 1


class TestDropReasonCounters:
    """Drops are counted per reason (table miss vs. action with no link)."""

    def test_table_miss_counted_separately(self, rig):
        sim, net = rig
        r1 = net.switches["R1"]
        net.hosts["h1"].send(
            Packet(dst_address=dz_to_address(Dz("1")), payload=None)
        )
        sim.run()
        assert r1.packets_dropped_table_miss == 1
        assert r1.packets_dropped_no_link == 0
        assert r1.packets_dropped == 1

    def test_no_link_counted_separately(self, rig):
        sim, net = rig
        r1 = net.switches["R1"]
        r1.table.install(FlowEntry.for_dz(Dz("1"), {Action(99)}))
        net.hosts["h1"].send(
            Packet(dst_address=dz_to_address(Dz("1")), payload=None)
        )
        sim.run()
        assert r1.packets_dropped_no_link == 1
        assert r1.packets_dropped_table_miss == 0
        assert r1.packets_dropped == 1

    def test_reason_labels_in_registry_snapshot(self, rig):
        sim, net = rig
        r1 = net.switches["R1"]
        r1.table.install(FlowEntry.for_dz(Dz("1"), {Action(99)}))
        net.hosts["h1"].send(
            Packet(dst_address=dz_to_address(Dz("1")), payload=None)
        )
        net.hosts["h1"].send(
            Packet(dst_address=dz_to_address(Dz("0")), payload=None)
        )
        sim.run()
        counters = net.registry.snapshot()["counters"]
        assert counters[
            "switch.packets_dropped{reason=no-link,switch=R1}"
        ] == 1
        assert counters[
            "switch.packets_dropped{reason=table-miss,switch=R1}"
        ] == 1

    def test_reset_clears_both_reasons(self, rig):
        sim, net = rig
        r1 = net.switches["R1"]
        r1.table.install(FlowEntry.for_dz(Dz("1"), {Action(99)}))
        net.hosts["h1"].send(
            Packet(dst_address=dz_to_address(Dz("1")), payload=None)
        )
        net.hosts["h1"].send(
            Packet(dst_address=dz_to_address(Dz("0")), payload=None)
        )
        sim.run()
        assert r1.packets_dropped == 2
        r1.reset_counters()
        assert r1.packets_dropped_table_miss == 0
        assert r1.packets_dropped_no_link == 0
        assert r1.packets_dropped == 0


class _Sink:
    """A bare link endpoint that captures delivered packet objects."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.received: list[Packet] = []

    def receive(self, packet: Packet, in_port: int) -> None:
        self.received.append(packet)

    def attach_link(self, port: int, link: Link) -> None:
        pass


class TestFanoutHopForking:
    """The no-copy fast path reuses the incoming packet object for the
    first no-rewrite action; the remaining actions must still get
    *independent* copies, or one branch's hop count would leak into the
    others."""

    def _fanout_rig(self, actions):
        sim = Simulator()
        switch = Switch(sim, "S", lookup_jitter_s=0.0)
        sinks = []
        for port in range(1, len(actions) + 1):
            sink = _Sink(f"sink{port}")
            link = Link(sim, a=switch, a_port=port, b=sink, b_port=1,
                        delay_s=0.0)
            switch.attach_link(port, link)
            sinks.append(sink)
        switch.table.install(FlowEntry.for_dz(Dz(""), set(actions)))
        return sim, switch, sinks

    def test_each_copy_counts_its_own_hops(self):
        sim, switch, sinks = self._fanout_rig(
            [Action(1), Action(2), Action(3)]
        )
        packet = Packet(dst_address=dz_to_address(Dz("0")), payload=None)
        switch.receive(packet, in_port=99)
        sim.run()
        delivered = [s.received[0] for s in sinks]
        assert [p.hops for p in delivered] == [1, 1, 1]
        # three independent objects, one of them the reused original
        assert len({id(p) for p in delivered}) == 3
        assert any(p is packet for p in delivered)

    def test_fork_with_set_dest_branch(self):
        sim, switch, sinks = self._fanout_rig(
            [Action(1), Action(2), Action(3, set_dest=0xDEAD)]
        )
        packet = Packet(dst_address=dz_to_address(Dz("0")), payload=None)
        switch.receive(packet, in_port=99)
        sim.run()
        by_sink = {s.name: s.received[0] for s in sinks}
        assert all(p.hops == 1 for p in by_sink.values())
        assert by_sink["sink3"].dst_address == 0xDEAD
        assert by_sink["sink3"] is not packet
        # the no-rewrite branches keep the multicast address
        assert by_sink["sink1"].dst_address == dz_to_address(Dz("0"))
        assert by_sink["sink2"].dst_address == dz_to_address(Dz("0"))
        # identity (packet_id) survives forking on every branch
        assert {p.packet_id for p in by_sink.values()} == {packet.packet_id}

    def test_further_hops_stay_independent(self):
        """After the fork, transmitting one copy again must not advance the
        hop count of the sibling copies."""
        sim, switch, sinks = self._fanout_rig([Action(1), Action(2)])
        packet = Packet(dst_address=dz_to_address(Dz("0")), payload=None)
        switch.receive(packet, in_port=99)
        sim.run()
        first, second = sinks[0].received[0], sinks[1].received[0]
        # drive one copy over another hop by hand
        far = _Sink("far")
        onward = Link(sim, a=sinks[0], a_port=2, b=far, b_port=1,
                      delay_s=0.0)
        onward.transmit(sinks[0], first)
        sim.run()
        assert first.hops == 2
        assert second.hops == 1
