"""Integration-style tests of the live fabric: switches, links, hosts."""

import pytest

from repro.core.addressing import (
    PUBSUB_CONTROL_ADDRESS,
    dz_to_address,
)
from repro.core.dz import Dz
from repro.exceptions import TopologyError
from repro.network.fabric import Network, NetworkParams
from repro.network.flow import Action, FlowEntry
from repro.network.packet import Packet
from repro.network.topology import line, paper_fat_tree
from repro.sim.engine import Simulator


@pytest.fixture
def small_net():
    sim = Simulator()
    net = Network(sim, line(3, hosts_per_switch=1))
    return sim, net


class TestWiring:
    def test_all_devices_built(self):
        sim = Simulator()
        net = Network(sim, paper_fat_tree())
        assert len(net.switches) == 10
        assert len(net.hosts) == 8
        assert len(net.links) == 10 * 2 - 4 + 8  # 8+8 switch links + 8 host links

    def test_ports_deterministic(self, small_net):
        _, net = small_net
        # R2's sorted neighbors are R1, R3, h2 -> ports 1, 2, 3
        assert net.port("R2", "R1") == 1
        assert net.port("R2", "R3") == 2
        assert net.port("R2", "h2") == 3

    def test_port_unknown_neighbor(self, small_net):
        _, net = small_net
        with pytest.raises(TopologyError):
            net.port("R1", "R99")

    def test_link_between(self, small_net):
        _, net = small_net
        link = net.link_between("R1", "R2")
        assert {link.a.name, link.b.name} == {"R1", "R2"}

    def test_host_addresses_unique(self, small_net):
        _, net = small_net
        addresses = {h.address for h in net.hosts.values()}
        assert len(addresses) == len(net.hosts)

    def test_host_by_address(self, small_net):
        _, net = small_net
        h1 = net.hosts["h1"]
        assert net.host_by_address(h1.address) is h1
        with pytest.raises(TopologyError):
            net.host_by_address(12345)


class TestForwarding:
    def test_event_follows_installed_flows(self, small_net):
        """A packet traverses R1 -> R2 -> R3 -> h3 and is readdressed at the
        terminal switch, as in Fig. 3."""
        sim, net = small_net
        dz = Dz("10")
        address = dz_to_address(dz)
        h3 = net.hosts["h3"]
        net.switches["R1"].table.install(
            FlowEntry.for_dz(dz, {Action(net.port("R1", "R2"))})
        )
        net.switches["R2"].table.install(
            FlowEntry.for_dz(dz, {Action(net.port("R2", "R3"))})
        )
        net.switches["R3"].table.install(
            FlowEntry.for_dz(
                dz, {Action(net.port("R3", "h3"), set_dest=h3.address)}
            )
        )
        delivered = []
        h3.set_delivery_callback(lambda p, pkt, t: delivered.append(pkt))
        from repro.network.packet import EventPayload
        from repro.core.events import Event

        payload = EventPayload(Event.of(x=1), dz, "h1", 0.0)
        net.hosts["h1"].send(Packet(dst_address=address, payload=payload))
        sim.run()
        assert len(delivered) == 1
        assert delivered[0].dst_address == h3.address
        assert delivered[0].hops == 4  # h1-R1, R1-R2, R2-R3, R3-h3

    def test_coarse_flow_matches_fine_event(self, small_net):
        sim, net = small_net
        h2 = net.hosts["h2"]
        net.switches["R1"].table.install(
            FlowEntry.for_dz(Dz("1"), {Action(net.port("R1", "R2"))})
        )
        net.switches["R2"].table.install(
            FlowEntry.for_dz(
                Dz("1"), {Action(net.port("R2", "h2"), set_dest=h2.address)}
            )
        )
        from repro.network.packet import EventPayload
        from repro.core.events import Event

        fine = Dz("10110")
        net.hosts["h1"].send(
            Packet(
                dst_address=dz_to_address(fine),
                payload=EventPayload(Event.of(x=1), fine, "h1", 0.0),
            )
        )
        sim.run()
        assert h2.packets_delivered == 1

    def test_unmatched_packet_dropped(self, small_net):
        sim, net = small_net
        net.hosts["h1"].send(
            Packet(dst_address=dz_to_address(Dz("0")), payload=None)
        )
        sim.run()
        assert net.switches["R1"].packets_dropped == 1
        assert net.switches["R1"].packets_forwarded == 0

    def test_control_packet_diverted(self, small_net):
        sim, net = small_net
        seen = []
        net.switches["R1"].set_control_handler(
            lambda sw, pkt, port: seen.append((sw.name, port))
        )
        net.hosts["h1"].send(
            Packet(dst_address=PUBSUB_CONTROL_ADDRESS, payload="SUB")
        )
        sim.run()
        assert seen == [("R1", net.port("R1", "h1"))]

    def test_multicast_to_two_ports(self):
        sim = Simulator()
        from repro.network.topology import star

        net = Network(sim, star(3, hosts_per_leaf=1))
        hub = net.switches["HUB"]
        dz = Dz("1")
        hub.table.install(
            FlowEntry.for_dz(
                dz,
                {
                    Action(net.port("HUB", "L1")),
                    Action(net.port("HUB", "L2")),
                },
            )
        )
        for leaf in ("L1", "L2"):
            host = net.hosts[f"h{leaf[1]}"]
            net.switches[leaf].table.install(
                FlowEntry.for_dz(
                    dz,
                    {
                        Action(
                            net.port(leaf, f"h{leaf[1]}"),
                            set_dest=host.address,
                        )
                    },
                )
            )
        # the publisher's access switch forwards up to the hub
        net.switches["L3"].table.install(
            FlowEntry.for_dz(dz, {Action(net.port("L3", "HUB"))})
        )
        from repro.network.packet import EventPayload
        from repro.core.events import Event

        net.hosts["h3"].send(
            Packet(
                dst_address=dz_to_address(dz),
                payload=EventPayload(Event.of(x=0), dz, "h3", 0.0),
            )
        )
        sim.run()
        assert net.hosts["h1"].packets_delivered == 1
        assert net.hosts["h2"].packets_delivered == 1

    def test_no_bounce_back_out_ingress(self, small_net):
        """A flow whose action points at the ingress port must not echo the
        packet back where it came from."""
        sim, net = small_net
        r1 = net.switches["R1"]
        r1.table.install(
            FlowEntry.for_dz(Dz("1"), {Action(net.port("R1", "h1"))})
        )
        net.hosts["h1"].send(
            Packet(dst_address=dz_to_address(Dz("1")), payload=None)
        )
        sim.run()
        assert net.hosts["h1"].packets_arrived == 0


class TestHostCapacity:
    def test_overload_drops(self):
        """Arrivals far beyond the processing rate are dropped — the
        Sec. 6.3 host bottleneck."""
        sim = Simulator()
        params = NetworkParams(host_rate_eps=1000, host_queue_capacity=10)
        net = Network(sim, line(1, hosts_per_switch=2), params=params)
        h2 = net.hosts["h2"]
        r1 = net.switches["R1"]
        r1.table.install(
            FlowEntry.for_dz(
                Dz("1"), {Action(net.port("R1", "h2"), set_dest=h2.address)}
            )
        )
        from repro.network.packet import EventPayload
        from repro.core.events import Event

        for i in range(200):
            sim.schedule(
                i * 1e-5,  # 100k events/s into a 1k events/s host
                net.hosts["h1"].send,
                Packet(
                    dst_address=dz_to_address(Dz("1")),
                    payload=EventPayload(Event.of(x=1), Dz("1"), "h1", 0.0),
                ),
            )
        sim.run()
        assert h2.packets_dropped > 0
        assert h2.packets_delivered + h2.packets_dropped == h2.packets_arrived

    def test_below_capacity_no_drops(self):
        sim = Simulator()
        params = NetworkParams(host_rate_eps=100_000)
        net = Network(sim, line(1, hosts_per_switch=2), params=params)
        h2 = net.hosts["h2"]
        net.switches["R1"].table.install(
            FlowEntry.for_dz(
                Dz("1"), {Action(net.port("R1", "h2"), set_dest=h2.address)}
            )
        )
        from repro.network.packet import EventPayload
        from repro.core.events import Event

        for i in range(100):
            sim.schedule(
                i * 1e-3,
                net.hosts["h1"].send,
                Packet(
                    dst_address=dz_to_address(Dz("1")),
                    payload=EventPayload(Event.of(x=1), Dz("1"), "h1", 0.0),
                ),
            )
        sim.run()
        assert h2.packets_dropped == 0
        assert h2.packets_delivered == 100


class TestCounters:
    def test_link_counters(self, small_net):
        sim, net = small_net
        net.switches["R1"].table.install(
            FlowEntry.for_dz(Dz(""), {Action(net.port("R1", "R2"))})
        )
        net.hosts["h1"].send(
            Packet(dst_address=dz_to_address(Dz("0")), payload=None, size_bytes=64)
        )
        sim.run()
        assert net.link_between("h1", "R1").total_packets == 1
        assert net.link_between("R1", "R2").total_bytes == 64
        assert net.total_link_packets() == 2

    def test_reset_counters(self, small_net):
        sim, net = small_net
        net.hosts["h1"].send(
            Packet(dst_address=dz_to_address(Dz("0")), payload=None)
        )
        sim.run()
        net.reset_counters()
        assert net.total_link_packets() == 0
        assert net.switches["R1"].packets_received == 0
