"""Unit tests for OpenFlow messages and the control channel."""

import pytest

from repro.core.addressing import PUBSUB_CONTROL_ADDRESS, dz_to_prefix
from repro.core.dz import Dz
from repro.exceptions import TopologyError
from repro.network.control_channel import ControlChannel
from repro.network.fabric import Network
from repro.network.flow import Action, FlowEntry
from repro.network.openflow import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMessage,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowModCommand,
    PacketOut,
)
from repro.network.packet import Packet
from repro.network.topology import line
from repro.sim.engine import Simulator


@pytest.fixture
def rig():
    sim = Simulator()
    net = Network(sim, line(2, hosts_per_switch=1))
    channel = ControlChannel(sim, latency_s=1e-3)
    channel.connect(net.switches["R1"])
    channel.connect(net.switches["R2"])
    return sim, net, channel


def add_mod(bits="10", port=1):
    return FlowMod(
        command=FlowModCommand.ADD,
        entry=FlowEntry.for_dz(Dz(bits), {Action(port)}),
    )


class TestMessages:
    def test_xids_unique(self):
        assert BarrierRequest().xid != BarrierRequest().xid

    def test_flow_mod_validation(self):
        with pytest.raises(ValueError):
            FlowMod(command=FlowModCommand.ADD)
        with pytest.raises(ValueError):
            FlowMod(command=FlowModCommand.DELETE)
        FlowMod(command=FlowModCommand.DELETE, match=dz_to_prefix(Dz("1")))


class TestChannel:
    def test_flow_mod_applied_after_latency(self, rig):
        sim, net, channel = rig
        channel.send("R1", add_mod())
        assert len(net.switches["R1"].table) == 0  # not yet applied
        sim.run()
        assert net.switches["R1"].table.get_dz(Dz("10")) is not None
        assert sim.now == pytest.approx(1e-3)

    def test_fifo_ordering(self, rig):
        sim, net, channel = rig
        # delete of an entry sent *after* its add must not race ahead
        channel.send("R1", add_mod())
        channel.send(
            "R1",
            FlowMod(
                command=FlowModCommand.DELETE, match=dz_to_prefix(Dz("10"))
            ),
        )
        sim.run()
        assert net.switches["R1"].table.get_dz(Dz("10")) is None
        assert channel.errors == []

    def test_modify(self, rig):
        sim, net, channel = rig
        channel.send("R1", add_mod(port=1))
        channel.send(
            "R1",
            FlowMod(
                command=FlowModCommand.MODIFY,
                entry=FlowEntry.for_dz(Dz("10"), {Action(2)}),
            ),
        )
        sim.run()
        assert net.switches["R1"].table.get_dz(Dz("10")).actions == {Action(2)}

    def test_barrier_reply(self, rig):
        sim, net, channel = rig
        request = BarrierRequest()
        channel.send("R1", request)
        sim.run()
        assert any(
            isinstance(r, BarrierReply) and r.xid == request.xid
            for r in channel.replies
        )

    def test_echo(self, rig):
        sim, net, channel = rig
        channel.send("R2", EchoRequest())
        sim.run()
        assert any(isinstance(r, EchoReply) for r in channel.replies)

    def test_features_reply(self, rig):
        sim, net, channel = rig
        channel.send("R1", FeaturesRequest())
        sim.run()
        reply = next(
            r for r in channel.replies if isinstance(r, FeaturesReply)
        )
        assert reply.datapath == "R1"
        assert len(reply.ports) == 2  # R2 and h1
        assert reply.table_capacity == 180_000

    def test_delete_missing_flow_reports_error(self, rig):
        sim, net, channel = rig
        channel.send(
            "R1",
            FlowMod(
                command=FlowModCommand.DELETE, match=dz_to_prefix(Dz("11"))
            ),
        )
        sim.run()
        assert len(channel.errors) == 1

    def test_packet_out_leaves_via_port(self, rig):
        sim, net, channel = rig
        seen = []
        net.switches["R2"].set_control_handler(
            lambda sw, pkt, port: seen.append((sw.name, port))
        )
        channel.send(
            "R1",
            PacketOut(
                out_port=net.port("R1", "R2"),
                packet=Packet(dst_address=PUBSUB_CONTROL_ADDRESS, payload="x"),
            ),
        )
        sim.run()
        assert seen == [("R2", net.port("R2", "R1"))]

    def test_packet_in_via_channel(self, rig):
        sim, net, channel = rig
        seen = []
        channel.set_handler("R1", seen.append)
        net.hosts["h1"].send(
            Packet(dst_address=PUBSUB_CONTROL_ADDRESS, payload="SUB")
        )
        sim.run()
        assert len(seen) == 1
        assert seen[0].switch == "R1"
        assert seen[0].packet.payload == "SUB"

    def test_unknown_switch_rejected(self, rig):
        _, _, channel = rig
        with pytest.raises(TopologyError):
            channel.send("R9", add_mod())

    def test_double_connect_rejected(self, rig):
        _, net, channel = rig
        with pytest.raises(TopologyError):
            channel.connect(net.switches["R1"])

    def test_message_counters(self, rig):
        sim, net, channel = rig
        channel.send("R1", add_mod())
        channel.send("R1", BarrierRequest())
        sim.run()
        assert channel.messages_to_switches() == 2
        assert channel.messages_to_controller() == 1  # the barrier reply

    def test_controller_bound_fifo_ordering(self, rig):
        """Switch-to-controller traffic is FIFO too (TCP semantics): a
        burst of packet-ins arrives in send order, serialised on the
        connection's arrival horizon, never before the one-way latency."""
        sim, net, channel = rig
        seen = []
        channel.set_handler(
            "R1", lambda msg: seen.append((msg.packet.payload, sim.now))
        )
        for i in range(4):
            net.switches["R1"].receive(
                Packet(dst_address=PUBSUB_CONTROL_ADDRESS, payload=i),
                in_port=net.port("R1", "h1"),
            )
        sim.run()
        payloads = [p for p, _ in seen]
        times = [t for _, t in seen]
        assert payloads == [0, 1, 2, 3]
        assert times == sorted(times)
        assert times[0] >= channel.latency_s

    def test_controller_bound_horizon_prevents_overtaking(self, rig):
        """A message sent later must not arrive earlier even if the channel
        latency drops in between (the per-connection arrival horizon)."""
        sim, net, channel = rig
        seen = []
        channel.set_handler(
            "R1", lambda msg: seen.append((msg.packet.payload, sim.now))
        )
        in_port = net.port("R1", "h1")
        net.switches["R1"].receive(
            Packet(dst_address=PUBSUB_CONTROL_ADDRESS, payload="slow"),
            in_port=in_port,
        )
        channel.latency_s = 1e-6  # faster path opens up mid-stream
        net.switches["R1"].receive(
            Packet(dst_address=PUBSUB_CONTROL_ADDRESS, payload="fast"),
            in_port=in_port,
        )
        sim.run()
        assert [p for p, _ in seen] == ["slow", "fast"]
        # the fast message is clamped to the slow one's arrival
        assert seen[1][1] >= seen[0][1]

    def test_replies_and_packet_ins_share_fifo_horizon(self, rig):
        """Barrier replies and packet-ins ride the same switch-to-controller
        connection, so a reply sent after a packet-in cannot overtake it."""
        sim, net, channel = rig
        order = []
        channel.set_handler("R1", lambda msg: order.append("packet_in"))
        net.switches["R1"].receive(
            Packet(dst_address=PUBSUB_CONTROL_ADDRESS, payload="x"),
            in_port=net.port("R1", "h1"),
        )
        channel.send("R1", BarrierRequest())
        sim.run()
        assert order == ["packet_in"]
        (reply,) = channel.replies
        assert isinstance(reply, BarrierReply)

    def test_byte_accounting(self, rig):
        from repro.network.openflow import message_size

        sim, net, channel = rig
        mod = add_mod()
        barrier = BarrierRequest()
        channel.send("R1", mod)
        channel.send("R1", barrier)
        sim.run()
        expected_out = message_size(mod) + message_size(barrier)
        assert channel.bytes_to_switches() == expected_out
        (reply,) = channel.replies
        assert channel.bytes_to_controller() == message_size(reply)
        per = channel.per_switch_counters()
        assert per["R1"]["to_switch_bytes"] == expected_out
        assert per["R1"]["to_switch_messages"] == 2
        assert per["R2"]["to_switch_bytes"] == 0

    def test_byte_counters_surface_in_registry(self):
        from repro.obs.registry import MetricsRegistry

        sim = Simulator()
        net = Network(sim, line(2, hosts_per_switch=1))
        registry = MetricsRegistry()
        channel = ControlChannel(sim, latency_s=1e-3, registry=registry)
        channel.connect(net.switches["R1"])
        channel.send("R1", add_mod())
        sim.run()
        snap = registry.snapshot()
        assert (
            snap["counters"]["control.messages{direction=to_switch}"] == 1
        )
        assert (
            snap["counters"]["control.bytes{direction=to_switch}"]
            == channel.bytes_to_switches()
        )


class TestControllerWithChannel:
    def test_flows_converge_and_events_flow(self):
        from repro.controller.controller import PleromaController
        from repro.core.events import Event, EventSpace
        from repro.core.spatial_index import SpatialIndexer
        from repro.core.subscription import Advertisement, Subscription
        from repro.network.topology import line as line_topo

        sim = Simulator()
        net = Network(sim, line_topo(3, hosts_per_switch=1))
        channel = ControlChannel(sim, latency_s=1e-3)
        space = EventSpace.paper_schema(1)
        controller = PleromaController(
            net, SpatialIndexer(space, max_dz_length=8), control_channel=channel
        )
        controller.advertise("h1", Advertisement.of(attr0=(0, 1023)))
        controller.subscribe("h3", Subscription.of(attr0=(512, 767)))
        # physical tables are still empty: mods are in flight
        assert all(len(s.table) == 0 for s in net.switches.values())
        sim.run()
        # ... and converge to the shadow after the channel latency
        for name, switch in net.switches.items():
            shadow = controller._applier.table(name)
            assert {e.match for e in switch.table} == {
                e.match for e in shadow
            }
        # end-to-end delivery works once converged
        delivered = []
        net.hosts["h3"].set_delivery_callback(
            lambda payload, pkt, now: delivered.append(payload.event)
        )
        indexer = controller.indexer
        from repro.core.addressing import dz_to_address
        from repro.network.packet import EventPayload

        event = Event.of(attr0=600)
        dz = indexer.event_to_dz(event)
        net.hosts["h1"].send(
            Packet(
                dst_address=dz_to_address(dz),
                payload=EventPayload(event, dz, "h1", sim.now),
            )
        )
        sim.run()
        assert len(delivered) == 1

    def test_client_requests_arrive_via_packet_in(self):
        from repro.controller.controller import PleromaController
        from repro.controller.requests import SubscribeRequest
        from repro.core.events import EventSpace
        from repro.core.spatial_index import SpatialIndexer
        from repro.core.subscription import Subscription
        from repro.network.topology import line as line_topo

        sim = Simulator()
        net = Network(sim, line_topo(2, hosts_per_switch=1))
        channel = ControlChannel(sim, latency_s=1e-3)
        controller = PleromaController(
            net,
            SpatialIndexer(EventSpace.paper_schema(1), max_dz_length=8),
            control_channel=channel,
        )
        net.hosts["h1"].send(
            Packet(
                dst_address=PUBSUB_CONTROL_ADDRESS,
                payload=SubscribeRequest("h1", Subscription.of(attr0=(0, 10))),
            )
        )
        sim.run()
        assert len(controller.subscriptions) == 1

    def test_unsubscribe_converges(self):
        from repro.controller.controller import PleromaController
        from repro.core.events import EventSpace
        from repro.core.spatial_index import SpatialIndexer
        from repro.core.subscription import Advertisement, Subscription
        from repro.network.topology import line as line_topo

        sim = Simulator()
        net = Network(sim, line_topo(3, hosts_per_switch=1))
        channel = ControlChannel(sim, latency_s=1e-3)
        controller = PleromaController(
            net,
            SpatialIndexer(EventSpace.paper_schema(1), max_dz_length=8),
            control_channel=channel,
        )
        controller.advertise("h1", Advertisement.of(attr0=(0, 1023)))
        state = controller.subscribe("h3", Subscription.of(attr0=(0, 511)))
        sim.run()
        controller.unsubscribe(state.sub_id)
        sim.run()
        assert all(len(s.table) == 0 for s in net.switches.values())
        assert channel.errors == []
