"""Unit tests for packets and event datagram sizing."""

from repro.core.dz import Dz
from repro.network.packet import Packet, event_packet_size


class TestEventPacketSize:
    def test_within_paper_bound(self):
        """Sec. 6.2: 'The size of each packet is up to 64 bytes depending
        upon the length of dz.'"""
        for length in (0, 1, 8, 16, 64, 112):
            assert event_packet_size(Dz("0" * length)) <= 64

    def test_grows_with_dz_length(self):
        assert event_packet_size(Dz("0" * 32)) > event_packet_size(Dz("0"))

    def test_rounding_to_bytes(self):
        assert event_packet_size(Dz("0")) == event_packet_size(Dz("0" * 8))
        assert event_packet_size(Dz("0" * 9)) == event_packet_size(Dz("0")) + 1


class TestPacket:
    def test_ids_unique(self):
        assert Packet(dst_address=1, payload=None).packet_id != Packet(
            dst_address=1, payload=None
        ).packet_id

    def test_with_destination_preserves_identity(self):
        original = Packet(dst_address=1, payload="x", size_bytes=10)
        original.hops = 3
        copy = original.with_destination(2)
        assert copy.dst_address == 2
        assert copy.packet_id == original.packet_id
        assert copy.payload == "x"
        assert copy.size_bytes == 10
        assert copy.hops == 3
        assert original.dst_address == 1  # original untouched
