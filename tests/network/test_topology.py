"""Unit tests for topology descriptions, builders and partitioning."""

import networkx as nx
import pytest

from repro.exceptions import TopologyError
from repro.network.topology import (
    Topology,
    line,
    mininet_fat_tree,
    paper_fat_tree,
    partition_switches,
    ring,
    star,
)


class TestConstruction:
    def test_add_and_query(self):
        topo = Topology()
        topo.add_switch("R1")
        topo.add_host("h1", "R1")
        assert topo.is_switch("R1")
        assert topo.is_host("h1")
        assert topo.access_switch("h1") == "R1"
        assert topo.hosts_of("R1") == ["h1"]

    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_switch("R1")
        with pytest.raises(TopologyError):
            topo.add_switch("R1")

    def test_host_needs_switch(self):
        topo = Topology()
        topo.add_switch("R1")
        topo.add_host("h1", "R1")
        with pytest.raises(TopologyError):
            topo.add_host("h2", "h1")

    def test_host_single_attachment(self):
        topo = Topology()
        topo.add_switch("R1")
        topo.add_switch("R2")
        topo.add_link("R1", "R2")
        topo.add_host("h1", "R1")
        with pytest.raises(TopologyError):
            topo.add_link("h1", "R2")

    def test_duplicate_link_rejected(self):
        topo = Topology()
        topo.add_switch("R1")
        topo.add_switch("R2")
        topo.add_link("R1", "R2")
        with pytest.raises(TopologyError):
            topo.add_link("R2", "R1")

    def test_link_between(self):
        topo = line(2, hosts_per_switch=0)
        spec = topo.link_between("R1", "R2")
        assert {spec.a, spec.b} == {"R1", "R2"}
        with pytest.raises(TopologyError):
            topo.link_between("R1", "R9")


class TestPaths:
    def test_shortest_path(self):
        topo = line(4, hosts_per_switch=1)
        path = topo.shortest_path("h1", "h4")
        assert path[0] == "h1" and path[-1] == "h4"
        assert path[1:-1] == ["R1", "R2", "R3", "R4"]

    def test_no_path(self):
        topo = Topology()
        topo.add_switch("R1")
        topo.add_switch("R2")
        with pytest.raises(TopologyError):
            topo.shortest_path("R1", "R2")

    def test_shortest_path_tree_parents(self):
        topo = line(4, hosts_per_switch=0)
        parents = topo.shortest_path_tree("R1")
        assert parents == {"R2": "R1", "R3": "R2", "R4": "R3"}

    def test_shortest_path_tree_respects_subset(self):
        topo = ring(6, hosts_per_switch=0)
        # restrict to an arc: the tree cannot shortcut around the ring
        parents = topo.shortest_path_tree("R1", switches=["R1", "R2", "R3"])
        assert parents == {"R2": "R1", "R3": "R2"}

    def test_diameter_path_on_line(self):
        topo = line(5, hosts_per_switch=1)
        ends = set(topo.diameter_path())
        assert ends == {"h1", "h5"}


class TestBuilders:
    def test_paper_fat_tree_shape(self):
        topo = paper_fat_tree()
        assert len(topo.switches()) == 10
        assert len(topo.hosts()) == 8
        # every edge switch has two hosts; cores have none
        assert len(topo.hosts_of("R7")) == 2
        assert topo.hosts_of("R1") == []
        assert nx.is_connected(topo.graph)

    def test_paper_fat_tree_is_multipath(self):
        topo = paper_fat_tree()
        sg = topo.switch_graph()
        sg.remove_node("R1")  # losing one core must not partition the fabric
        assert nx.is_connected(sg)

    def test_mininet_fat_tree_has_20_switches(self):
        topo = mininet_fat_tree()
        assert len(topo.switches()) == 20
        assert nx.is_connected(topo.graph)

    def test_ring_shape(self):
        topo = ring(20)
        assert len(topo.switches()) == 20
        assert len(topo.hosts()) == 20
        sg = topo.switch_graph()
        assert all(d == 2 for _, d in sg.degree())

    def test_ring_minimum_size(self):
        with pytest.raises(TopologyError):
            ring(2)

    def test_star(self):
        topo = star(4)
        assert len(topo.switches()) == 5
        assert topo.switch_graph().degree("HUB") == 4


class TestPartitioning:
    @pytest.mark.parametrize("count", [1, 2, 3, 5, 10])
    def test_ring_partitions(self, count):
        topo = ring(20)
        parts = partition_switches(topo, count)
        assert len(parts) == count
        all_switches = set().union(*parts)
        assert all_switches == set(topo.switches())
        # pairwise disjoint
        assert sum(len(p) for p in parts) == len(all_switches)
        # each connected
        sg = topo.switch_graph()
        for part in parts:
            assert nx.is_connected(sg.subgraph(part))

    def test_fat_tree_partitions_connected(self):
        topo = mininet_fat_tree()
        for count in (2, 4, 6):
            parts = partition_switches(topo, count)
            sg = topo.switch_graph()
            for part in parts:
                assert nx.is_connected(sg.subgraph(part))

    def test_partition_bounds(self):
        topo = ring(5, hosts_per_switch=0)
        with pytest.raises(TopologyError):
            partition_switches(topo, 0)
        with pytest.raises(TopologyError):
            partition_switches(topo, 6)

    def test_single_partition_is_everything(self):
        topo = paper_fat_tree()
        parts = partition_switches(topo, 1)
        assert parts == [set(topo.switches())]
