"""Unit tests for link-utilization sampling."""

import pytest

from repro.core.addressing import dz_to_address
from repro.core.dz import Dz
from repro.exceptions import TopologyError
from repro.network.fabric import Network, NetworkParams
from repro.network.flow import Action, FlowEntry
from repro.network.packet import Packet
from repro.network.stats import LinkUtilizationSampler
from repro.network.topology import line
from repro.sim.engine import Simulator


@pytest.fixture
def rig():
    sim = Simulator()
    net = Network(
        sim,
        line(3, hosts_per_switch=1),
        params=NetworkParams(bandwidth_bps=8e6),  # 1 MB/s
    )
    net.switches["R1"].table.install(
        FlowEntry.for_dz(Dz("1"), {Action(net.port("R1", "R2"))})
    )
    net.switches["R2"].table.install(
        FlowEntry.for_dz(
            Dz("1"),
            {Action(net.port("R2", "h2"), set_dest=net.hosts["h2"].address)},
        )
    )
    return sim, net


def blast(sim, net, packets: int, size: int = 1000, interval: float = 1e-3):
    for i in range(packets):
        sim.schedule(
            i * interval,
            net.hosts["h1"].send,
            Packet(
                dst_address=dz_to_address(Dz("1")),
                payload=None,
                size_bytes=size,
            ),
        )
    sim.run()


class TestSampling:
    def test_only_switch_links_tracked(self, rig):
        _, net = rig
        sampler = LinkUtilizationSampler(net)
        samples = sampler.sample()
        assert all(
            all(name in net.switches for name in key) for key in samples
        )
        assert len(samples) == 2  # R1-R2 and R2-R3

    def test_utilization_measured(self, rig):
        sim, net = rig
        sampler = LinkUtilizationSampler(net)
        # 100 packets x 1000 B over 0.1 s on an 8 Mbit/s link = 100% load
        blast(sim, net, 100, size=1000, interval=1e-3)
        sampler.sample()
        hot = sampler.latest("R1", "R2")
        assert hot.utilization == pytest.approx(1.0, rel=0.15)
        idle = sampler.latest("R2", "R3")
        assert idle.utilization == 0.0

    def test_windows_are_deltas(self, rig):
        sim, net = rig
        sampler = LinkUtilizationSampler(net)
        blast(sim, net, 50)
        sampler.sample()
        # quiet window: utilization drops to zero
        sim.run(until=sim.now + 1.0)
        sampler.sample()
        assert sampler.latest("R1", "R2").utilization == 0.0

    def test_hottest(self, rig):
        sim, net = rig
        sampler = LinkUtilizationSampler(net)
        blast(sim, net, 30)
        sampler.sample()
        key, sample = sampler.hottest()
        assert key == frozenset(("R1", "R2"))
        assert sample.utilization > 0

    def test_hottest_requires_samples(self, rig):
        _, net = rig
        with pytest.raises(TopologyError):
            LinkUtilizationSampler(net).hottest()

    def test_unknown_link(self, rig):
        _, net = rig
        sampler = LinkUtilizationSampler(net)
        with pytest.raises(TopologyError):
            sampler.latest("R1", "R9")
        with pytest.raises(TopologyError):
            sampler.history("R1", "R9")

    def test_history_bounded(self, rig):
        sim, net = rig
        sampler = LinkUtilizationSampler(net)
        for _ in range(300):
            sampler.sample()
        assert len(sampler.history("R1", "R2")) == 256
