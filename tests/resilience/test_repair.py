"""Repair planning and orchestration: rebuilds, degraded mode, resume."""

from repro.analysis.verify import verify_controller
from repro.core.events import Event
from repro.core.subscription import Filter
from repro.middleware.pleroma import Pleroma
from repro.network.topology import line, paper_fat_tree
from repro.resilience.repair import RepairPlanner


def deploy(topology, publisher="h1", subscribers=()):
    middleware = Pleroma(topology, dimensions=2, max_dz_length=10)
    middleware.publisher(publisher).advertise(Filter.of())
    clients = {}
    for host in subscribers:
        client = middleware.subscriber(host)
        client.subscribe(Filter.of())
        clients[host] = client
    return middleware, clients


class TestPlanner:
    def test_healthy_deployment_plans_nothing(self):
        middleware, _ = deploy(paper_fat_tree(), subscribers=["h8"])
        plan = RepairPlanner(middleware.controllers[0]).plan({}, {})
        assert plan.is_noop
        assert not plan.degraded
        assert len(plan.components) == 1

    def test_survivable_cut_rebuilds_without_suspending(self):
        """Cutting a redundant fat-tree edge keeps the graph connected:
        affected trees are rebuilt, nobody is suspended."""
        middleware, _ = deploy(paper_fat_tree(), subscribers=["h8"])
        controller = middleware.controllers[0]
        affected = [t.tree_id for t in controller.trees if t.uses_edge("R1", "R5")]
        controller.topology.remove_link("R1", "R5")
        plan = RepairPlanner(controller).plan({}, {})
        assert not plan.degraded
        assert plan.suspend_subs == [] and plan.suspend_advs == []
        assert sorted(r.tree_id for r in plan.tree_repairs) == sorted(affected)
        for repair in plan.tree_repairs:
            assert ("R1", "R5") not in {
                tuple(sorted((c, p))) for c, p in repair.parents.items()
            }

    def test_bridge_cut_goes_degraded_and_suspends(self):
        """Cutting the line's middle edge splits {R1,R2} / {R3,R4}: the
        primary keeps serving, detached clients are suspended."""
        middleware, _ = deploy(line(4), subscribers=["h2", "h3", "h4"])
        controller = middleware.controllers[0]
        sub_by_switch = {
            s.endpoint.switch: sub_id
            for sub_id, s in controller.subscriptions.items()
        }
        controller.topology.remove_link("R2", "R3")
        plan = RepairPlanner(controller).plan({}, {})
        assert plan.degraded
        assert plan.primary == {"R1", "R2"}  # tie broken by smallest name
        assert plan.components == [["R1", "R2"], ["R3", "R4"]]
        assert sorted(plan.suspend_subs) == sorted(
            [sub_by_switch["R3"], sub_by_switch["R4"]]
        )
        assert plan.suspend_advs == []  # publisher h1 sits in the primary

    def test_detached_publisher_is_suspended_and_tree_retires(self):
        """When the publisher's side is the minority component, the
        advertisement itself is suspended (no repair for its tree)."""
        middleware, _ = deploy(
            line(4), publisher="h4", subscribers=["h1", "h2"]
        )
        controller = middleware.controllers[0]
        controller.topology.remove_link("R2", "R3")
        plan = RepairPlanner(controller).plan({}, {})
        assert plan.degraded
        assert plan.primary == {"R1", "R2"}
        assert len(plan.suspend_advs) == 1
        assert plan.tree_repairs == []  # the only tree loses its publisher


class TestOrchestratedRepair:
    def test_survivable_cut_recovers_delivery_and_stays_verified(self):
        middleware, clients = deploy(paper_fat_tree(), subscribers=["h8"])
        detector, orchestrator = middleware.enable_resilience()
        middleware.sim.schedule_at(
            0.01, middleware.network.link_between("R1", "R5").fail
        )
        middleware.run(until=0.03)
        detector.stop()
        middleware.publish("h1", Event.of(attr0=1.0, attr1=1.0))
        middleware.run()
        assert len(clients["h8"].matched) == 1
        assert all(r.verifier_ok for r in orchestrator.records)
        report = verify_controller(middleware.controllers[0])
        assert report.ok and not report.violations

    def test_degraded_repair_keeps_primary_service_verified(self):
        middleware, clients = deploy(line(4), subscribers=["h2", "h4"])
        detector, orchestrator = middleware.enable_resilience()
        middleware.sim.schedule_at(
            0.01, middleware.network.link_between("R2", "R3").fail
        )
        middleware.run(until=0.03)
        detector.stop()
        middleware.publish("h1", Event.of(attr0=1.0, attr1=1.0))
        middleware.run()
        # the primary-side subscriber still receives; the detached one is
        # suspended — and the verifier is clean despite the partition
        assert len(clients["h2"].matched) == 1
        assert len(clients["h4"].matched) == 0
        (record,) = [r for r in orchestrator.records if r.trigger_kind == "port-down"]
        assert record.degraded and record.suspended == 1
        assert record.verifier_ok
        assert orchestrator.suspended_clients == 1

    def test_heal_resumes_suspended_clients_verbatim(self):
        middleware, clients = deploy(line(4), subscribers=["h2", "h4"])
        detector, orchestrator = middleware.enable_resilience()
        controller = middleware.controllers[0]
        sub_ids_before = sorted(controller.subscriptions)
        link = middleware.network.link_between("R2", "R3")
        middleware.sim.schedule_at(0.01, link.fail)
        middleware.sim.schedule_at(0.03, link.restore)
        middleware.run(until=0.05)
        detector.stop()
        middleware.publish("h1", Event.of(attr0=1.0, attr1=1.0))
        middleware.run()
        # same ids are back — resume replays the remembered dz sets
        assert sorted(controller.subscriptions) == sub_ids_before
        assert orchestrator.suspended_clients == 0
        assert len(clients["h4"].matched) == 1
        up_records = [r for r in orchestrator.records if r.trigger_kind == "port-up"]
        assert up_records and up_records[-1].resumed == 1
        assert verify_controller(controller).ok

    def test_repair_latency_is_modeled_not_wall_clock(self):
        """Records must be deterministic: latency is flow-mods times the
        configured flow-mod round trip, never measured compute time."""
        middleware, _ = deploy(paper_fat_tree(), subscribers=["h8"])
        detector, orchestrator = middleware.enable_resilience()
        middleware.sim.schedule_at(
            0.01, middleware.network.link_between("R1", "R5").fail
        )
        middleware.run(until=0.03)
        detector.stop()
        controller = middleware.controllers[0]
        for record in orchestrator.records:
            assert record.repair_latency_s == (
                record.flow_mods * controller.flow_mod_latency_s
            )

    def test_switch_crash_and_revival_end_clean(self):
        """A crashed switch loses its TCAM; after revival and repair the
        controller's view and the hardware agree again (verifier-proven)."""
        middleware, clients = deploy(paper_fat_tree(), subscribers=["h8"])
        detector, orchestrator = middleware.enable_resilience()

        def crash(name):
            middleware.network.switches[name].fail()
            for key, link in middleware.network.links.items():
                if name in key:
                    link.set_oper(False)

        def revive(name):
            middleware.network.switches[name].restore()
            for key, link in middleware.network.links.items():
                if name in key:
                    link.set_oper(True)

        middleware.sim.schedule_at(0.01, crash, "R5")
        middleware.sim.schedule_at(0.04, revive, "R5")
        middleware.run(until=0.07)
        detector.stop()
        middleware.publish("h1", Event.of(attr0=1.0, attr1=1.0))
        middleware.run()
        assert len(clients["h8"].matched) == 1
        assert verify_controller(middleware.controllers[0]).ok
        assert orchestrator.down_edges() == []
