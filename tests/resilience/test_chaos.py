"""Chaos schedules and the end-to-end runner + SLO report."""

import json

import pytest

from repro.core.events import Event
from repro.core.subscription import Filter
from repro.exceptions import TopologyError
from repro.middleware.pleroma import Pleroma
from repro.network.topology import Topology, paper_fat_tree, ring
from repro.resilience.chaos import (
    CHAOS_KINDS,
    ChaosRunner,
    ChaosSchedule,
)
from repro.resilience.slo import build_slo_report


class TestScheduleGeneration:
    def test_one_episode_per_kind_in_order(self):
        schedule = ChaosSchedule.generate(paper_fat_tree(), seed=0)
        assert [a.kind for a in schedule.actions] == list(CHAOS_KINDS)
        ats = [a.at for a in schedule.actions]
        assert ats == sorted(ats)
        assert all(a.heal_at > a.at for a in schedule.actions)
        assert schedule.horizon > max(a.heal_at for a in schedule.actions)

    def test_same_seed_same_schedule(self):
        one = ChaosSchedule.generate(paper_fat_tree(), seed=7)
        two = ChaosSchedule.generate(paper_fat_tree(), seed=7)
        assert one.to_dict() == two.to_dict()
        other = ChaosSchedule.generate(paper_fat_tree(), seed=8)
        assert one.to_dict() != other.to_dict()

    def test_crash_prefers_hostless_switches(self):
        for seed in range(6):
            schedule = ChaosSchedule.generate(paper_fat_tree(), seed=seed)
            (crash,) = [a for a in schedule.actions if a.kind == "switch-crash"]
            # the paper fat-tree's hosts all hang off edge switches R7..R10
            assert crash.switch in {"R1", "R2", "R3", "R4", "R5", "R6"}
            assert crash.edges  # every switch link of the victim is listed

    def test_needs_switch_links(self):
        topo = Topology(name="single")
        topo.add_switch("S1")
        topo.add_host("h1", "S1")
        with pytest.raises(TopologyError):
            ChaosSchedule.generate(topo)

    def test_rejects_unknown_kind(self):
        with pytest.raises(TopologyError):
            ChaosSchedule.generate(paper_fat_tree(), kinds=("meteor",))


def run_chaos(topology, seed):
    middleware = Pleroma(topology, dimensions=2, max_dz_length=10)
    middleware.enable_flight_recorder(seed=seed)
    detector, orchestrator = middleware.enable_resilience(seed=seed)
    schedule = ChaosSchedule.generate(middleware.topology, seed=seed)
    hosts = sorted(middleware.topology.hosts())
    middleware.publisher(hosts[0]).advertise(Filter.of())
    for host in hosts[1:]:
        middleware.subscriber(host).subscribe(Filter.of())
    interval = detector.period_s / 2.0
    count = max(1, int(schedule.horizon / interval) - 2)
    middleware.publish_stream(
        hosts[0],
        (Event.of(attr0=1.0, attr1=1.0) for _ in range(count)),
        rate_eps=1.0 / interval,
        start_at=0.0,
    )
    ChaosRunner(middleware, schedule, detector, orchestrator).run()
    return build_slo_report(
        middleware, schedule, detector, orchestrator, middleware.flight_report()
    )


class TestRunner:
    def test_full_schedule_ends_clean_on_fat_tree(self):
        slo = run_chaos(paper_fat_tree(), seed=1)
        assert slo["final"]["verifier_ok"]
        assert slo["final"]["violations"] == 0
        assert slo["final"]["clients_suspended"] == 0
        assert slo["final"]["edges_believed_down"] == []
        for episode in slo["episodes"]:
            assert episode["detection"]["latency_s"] is not None
            assert episode["detection"]["latency_s"] > 0.0
            assert episode["repair"]["verifier_ok"]

    def test_detection_latency_within_probe_budget(self):
        slo = run_chaos(paper_fat_tree(), seed=2)
        period = slo["detector"]["probe_period_s"]
        threshold = slo["detector"]["miss_threshold"]
        for episode in slo["episodes"]:
            assert episode["detection"]["latency_s"] <= (threshold + 2) * period

    def test_ring_schedule_ends_clean(self):
        slo = run_chaos(ring(6), seed=0)
        assert slo["final"]["verifier_ok"]
        assert slo["final"]["clients_suspended"] == 0

    def test_every_episode_converges_clean(self):
        """The LAST repair pass of every episode must verify clean.  A
        compound failure (switch crash, partition) is detected one link
        verdict at a time, so a pass *between* verdicts may honestly leave
        a blackhole toward the still-believed-alive dead element — that is
        detection physics, surfaced as ``transient_dirty_passes`` — but
        once detection converges, repair must too."""
        for topology, seed in ((ring(6), 2), (paper_fat_tree(), 1)):
            slo = run_chaos(topology, seed=seed)
            for episode in slo["episodes"]:
                repair = episode["repair"]
                assert repair["verifier_ok"], episode["action"]["kind"]
                assert repair["violations"] == 0
                assert (
                    repair["transient_dirty_passes"] <= repair["passes"]
                )

    def test_slo_report_is_deterministic_and_json_stable(self):
        one = json.dumps(run_chaos(paper_fat_tree(), seed=5), sort_keys=True)
        two = json.dumps(run_chaos(paper_fat_tree(), seed=5), sort_keys=True)
        assert one == two
