"""The failure detector: probes, miss accounting, verdicts, determinism."""

import pytest

from repro.exceptions import TopologyError
from repro.middleware.pleroma import Pleroma
from repro.network.topology import line, paper_fat_tree
from repro.resilience.detector import FailureDetector


def deploy(topology=None):
    middleware = Pleroma(
        topology if topology is not None else line(4),
        dimensions=2,
        max_dz_length=10,
    )
    return middleware


class TestConstruction:
    def test_monitors_every_switch_link_sorted(self):
        middleware = deploy(paper_fat_tree())
        detector = FailureDetector(middleware.network, obs=middleware.obs)
        assert detector.monitored == sorted(detector.monitored)
        assert len(detector.monitored) == 16  # fat-tree switch links only
        assert all(
            middleware.topology.is_switch(a)
            and middleware.topology.is_switch(b)
            for a, b in detector.monitored
        )

    def test_rejects_bad_parameters(self):
        middleware = deploy()
        with pytest.raises(TopologyError):
            FailureDetector(middleware.network, period_s=0.0)
        with pytest.raises(TopologyError):
            FailureDetector(middleware.network, miss_threshold=0)


class TestDetection:
    def test_link_cut_is_detected_without_oracle(self):
        """The detector learns of the failure only from missing echoes —
        detection latency is bounded by the probe schedule, not zero."""
        middleware = deploy()
        detector = FailureDetector(middleware.network, obs=middleware.obs)
        detector.start()
        cut_at = 0.01
        middleware.sim.schedule_at(
            cut_at, middleware.network.link_between("R2", "R3").fail
        )
        middleware.run(until=0.03)
        detector.stop()
        downs = [e for e in detector.events if e.kind == "port-down"]
        assert [e.subject for e in downs] == [("R2", "R3")]
        latency = downs[0].time - cut_at
        assert latency > 0.0
        # worst case: the failure lands right after a probe, then
        # threshold misses must accumulate (plus one period of phase)
        assert latency <= (detector.miss_threshold + 2) * detector.period_s
        assert downs[0].misses >= detector.miss_threshold
        assert detector.down_edges() == [("R2", "R3")]
        assert not detector.link_view_up("R2", "R3")

    def test_restore_is_detected_as_port_up(self):
        middleware = deploy()
        detector = FailureDetector(middleware.network, obs=middleware.obs)
        detector.start()
        link = middleware.network.link_between("R2", "R3")
        middleware.sim.schedule_at(0.01, link.fail)
        middleware.sim.schedule_at(0.03, link.restore)
        middleware.run(until=0.05)
        detector.stop()
        kinds = [e.kind for e in detector.events]
        assert kinds == ["port-down", "port-up"]
        up = detector.events[-1]
        assert 0.03 <= up.time <= 0.03 + 2 * detector.period_s
        assert detector.down_edges() == []

    def test_switch_death_inferred_from_its_links(self):
        """No switch probe exists: a switch is down when every monitored
        link touching it is down."""
        middleware = deploy(paper_fat_tree())
        detector = FailureDetector(middleware.network, obs=middleware.obs)
        detector.start()

        def crash(name):
            middleware.network.switches[name].fail()
            for key, link in middleware.network.links.items():
                if name in key:
                    link.set_oper(False)

        middleware.sim.schedule_at(0.01, crash, "R3")
        middleware.run(until=0.04)
        detector.stop()
        assert detector.down_switches() == ["R3"]
        assert any(
            e.kind == "switch-down" and e.subject == ("R3",)
            for e in detector.events
        )

    def test_flap_shorter_than_miss_budget_is_absorbed(self):
        """A single lost probe (down < one period) never trips the
        three-miss threshold — the detector does not flap."""
        middleware = deploy()
        detector = FailureDetector(middleware.network, obs=middleware.obs)
        detector.start()
        link = middleware.network.link_between("R2", "R3")
        middleware.sim.schedule_at(0.0101, link.fail)
        middleware.sim.schedule_at(0.0115, link.restore)  # < one period
        middleware.run(until=0.04)
        detector.stop()
        assert detector.events == []


class TestLifecycleAndDeterminism:
    def test_stop_cancels_probes_so_sim_drains(self):
        middleware = deploy()
        detector = FailureDetector(middleware.network, obs=middleware.obs)
        detector.start()
        middleware.run(until=0.01)
        detector.stop()
        middleware.run()  # must terminate: no self-rescheduling probes left
        assert not detector.running

    def test_same_seed_same_events(self):
        def run(seed):
            middleware = deploy(paper_fat_tree())
            detector = FailureDetector(
                middleware.network, obs=middleware.obs, seed=seed
            )
            detector.start()
            middleware.sim.schedule_at(
                0.01, middleware.network.link_between("R1", "R5").fail
            )
            middleware.run(until=0.04)
            detector.stop()
            return [(e.kind, e.subject, e.time, e.misses) for e in detector.events]

        assert run(3) == run(3)
        # a different seed shifts the probe phases, so detection times move
        assert [t for _, _, t, _ in run(3)] != [t for _, _, t, _ in run(4)]
