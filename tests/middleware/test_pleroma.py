"""Integration tests for the Pleroma facade and clients."""

import pytest

from repro.core.events import Event
from repro.core.subscription import Advertisement, Filter, Subscription
from repro.exceptions import ControllerError
from repro.middleware.pleroma import Pleroma
from repro.network.topology import line, paper_fat_tree, ring

FULL = (0, 1023)
MID = (512, 767)
LOW = (0, 255)


@pytest.fixture
def middleware():
    return Pleroma(line(4), dimensions=1, max_dz_length=10)


class TestClients:
    def test_publish_subscribe_round_trip(self, middleware):
        publisher = middleware.publisher("h1")
        events = []
        subscriber = middleware.subscriber(
            "h4", callback=lambda e, t: events.append(e)
        )
        publisher.advertise(Filter.of(attr0=FULL))
        subscriber.subscribe(Filter.of(attr0=MID))
        publisher.publish(Event.of(attr0=600))
        middleware.run()
        assert len(events) == 1
        assert subscriber.matched == events
        assert publisher.published == 1

    def test_publish_requires_advertisement(self, middleware):
        publisher = middleware.publisher("h1")
        with pytest.raises(ControllerError):
            publisher.publish(Event.of(attr0=600))

    def test_publish_outside_advertisement_rejected(self, middleware):
        publisher = middleware.publisher("h1")
        publisher.advertise(Filter.of(attr0=LOW))
        with pytest.raises(ControllerError):
            publisher.publish(Event.of(attr0=600))

    def test_unsubscribe_stops_delivery(self, middleware):
        publisher = middleware.publisher("h1")
        subscriber = middleware.subscriber("h4")
        publisher.advertise(Filter.of(attr0=FULL))
        sub_id = subscriber.subscribe(Filter.of(attr0=MID))
        subscriber.unsubscribe(sub_id)
        publisher.publish(Event.of(attr0=600))
        middleware.run()
        assert subscriber.received == []

    def test_unadvertise(self, middleware):
        publisher = middleware.publisher("h1")
        subscriber = middleware.subscriber("h4")
        adv_id = publisher.advertise(Filter.of(attr0=FULL))
        subscriber.subscribe(Filter.of(attr0=MID))
        publisher.unadvertise(adv_id)
        assert middleware.total_flows_installed() == 0

    def test_unknown_handles_rejected(self, middleware):
        publisher = middleware.publisher("h1")
        subscriber = middleware.subscriber("h4")
        with pytest.raises(ControllerError):
            publisher.unadvertise(12345)
        with pytest.raises(ControllerError):
            subscriber.unsubscribe(12345)

    def test_one_subscriber_client_per_host(self, middleware):
        middleware.subscriber("h4")
        with pytest.raises(ControllerError):
            middleware.subscriber("h4")

    def test_unknown_host(self, middleware):
        with pytest.raises(ControllerError):
            middleware.publisher("h99")

    def test_accepts_subscription_and_advertisement_objects(self, middleware):
        publisher = middleware.publisher("h1")
        subscriber = middleware.subscriber("h4")
        publisher.advertise(Advertisement.of(attr0=FULL))
        subscriber.subscribe(Subscription.of(attr0=MID))
        publisher.publish(Event.of(attr0=600))
        middleware.run()
        assert len(subscriber.matched) == 1


class TestMetrics:
    def test_delay_and_counts(self, middleware):
        publisher = middleware.publisher("h1")
        middleware.subscriber("h4")
        publisher.advertise(Filter.of(attr0=FULL))
        middleware.subscribe("h4", Subscription.of(attr0=FULL))
        for value in (10, 600, 900):
            publisher.publish(Event.of(attr0=value))
        middleware.run()
        assert middleware.metrics.published == 3
        assert middleware.metrics.delivered == 3
        assert middleware.metrics.mean_delay() > 0
        assert middleware.metrics.false_positive_rate() == 0.0

    def test_false_positives_counted_with_short_dz(self):
        """With 1-bit dz, a subscription to {0..255} is indexed as the whole
        lower half {0..511}: events in 256..511 are false positives."""
        middleware = Pleroma(line(4), dimensions=1, max_dz_length=1)
        publisher = middleware.publisher("h1")
        middleware.subscriber("h4")
        publisher.advertise(Filter.of(attr0=FULL))
        middleware.subscribe("h4", Subscription.of(attr0=LOW))
        publisher.publish(Event.of(attr0=100))  # wanted
        publisher.publish(Event.of(attr0=400))  # false positive
        middleware.run()
        assert middleware.metrics.delivered == 2
        assert middleware.metrics.false_positive_rate() == 50.0

    def test_rates(self, middleware):
        publisher = middleware.publisher("h1")
        middleware.subscriber("h4")
        publisher.advertise(Filter.of(attr0=FULL))
        middleware.subscribe("h4", Subscription.of(attr0=FULL))
        for i in range(10):
            middleware.sim.schedule(
                i * 0.001, publisher.publish, Event.of(attr0=600)
            )
        middleware.run()
        assert middleware.metrics.sent_rate_eps() == pytest.approx(
            10 / 0.009, rel=0.01
        )
        assert middleware.metrics.received_rate_eps() > 0


class TestMultiPartitionFacade:
    def test_partitions_with_federation(self):
        middleware = Pleroma(ring(6), dimensions=1, partitions=3)
        assert middleware.federation is not None
        publisher = middleware.publisher("h1")
        subscriber = middleware.subscriber("h4")
        publisher.advertise(Filter.of(attr0=FULL))
        middleware.run()
        subscriber.subscribe(Filter.of(attr0=MID))
        middleware.run()
        publisher.publish(Event.of(attr0=600))
        middleware.run()
        assert len(subscriber.matched) == 1
        middleware.check_invariants()

    def test_dimension_selection_requires_single_partition(self):
        middleware = Pleroma(ring(6), dimensions=2, partitions=2)
        with pytest.raises(ControllerError):
            middleware.enable_dimension_selection()


class TestDimensionSelection:
    def test_reselection_reduces_false_positives(self):
        """The Fig. 7(e) effect in miniature: with a tight dz budget over
        many dimensions, filtering is coarse; selecting the informative
        dimension makes it sharp again."""
        from repro.workloads.scenarios import zipfian_type

        wl = zipfian_type(1, seed=31)

        def build():
            m = Pleroma(
                line(4), space=wl.space, max_dz_length=7
            )
            pub = m.publisher("h1")
            m.subscriber("h4")
            pub.advertise(Filter.of())
            m.subscribe("h4", wl.subscription(wl.hotspots[2]))
            return m, pub

        events = wl.events(300)

        # without dimension selection
        base, base_pub = build()
        for event in events:
            base_pub.publish(event)
        base.run()
        fpr_before = base.metrics.false_positive_rate()

        # with dimension selection (k=2 informative dimensions)
        tuned, tuned_pub = build()
        tuned.enable_dimension_selection(window_size=300)
        for event in events:
            tuned_pub.publish(event)
        tuned.run()
        tuned.metrics.reset()
        tuned.reselect_dimensions(k=2)
        for event in events:
            tuned_pub.publish(event)
        tuned.run()
        fpr_after = tuned.metrics.false_positive_rate()
        assert fpr_after <= fpr_before

    def test_reselect_requires_enable(self):
        middleware = Pleroma(line(4), dimensions=2)
        with pytest.raises(ControllerError):
            middleware.reselect_dimensions()

    def test_events_still_delivered_after_reindex(self):
        middleware = Pleroma(line(4), dimensions=3, max_dz_length=9)
        publisher = middleware.publisher("h1")
        subscriber = middleware.subscriber("h4")
        publisher.advertise(Filter.of())
        middleware.subscribe(
            "h4", Subscription.of(attr0=(0, 255), attr1=(0, 255))
        )
        middleware.enable_dimension_selection(window_size=50)
        for i in range(50):
            publisher.publish(
                Event.of(attr0=(i * 37) % 1024, attr1=100.0, attr2=1.0)
            )
        middleware.run()
        middleware.reselect_dimensions(k=1)
        middleware.metrics.reset()
        publisher.publish(Event.of(attr0=100, attr1=100, attr2=1))
        middleware.run()
        assert len(subscriber.matched) >= 1


class TestFlightRecorder:
    def test_enable_record_and_report(self):
        middleware = Pleroma(line(4), dimensions=1, max_dz_length=10)
        recorder = middleware.enable_flight_recorder()
        publisher = middleware.publisher("h1")
        delivered = []
        middleware.subscriber(
            "h4", callback=lambda e, t: delivered.append(e)
        ).subscribe(Filter.of(attr0=FULL))
        publisher.advertise(Filter.of(attr0=FULL))
        publisher.publish(Event.of(attr0=600))
        middleware.run()
        assert len(delivered) == 1
        assert len(recorder) > 0
        report = middleware.flight_report()
        data_deliveries = [
            d for d in report.deliveries if d.host == "h4"
        ]
        assert len(data_deliveries) == 1
        assert data_deliveries[0].complete

    def test_snapshot_contains_flight_section(self):
        middleware = Pleroma(line(4), dimensions=1, max_dz_length=10)
        middleware.enable_flight_recorder()
        publisher = middleware.publisher("h1")
        middleware.subscriber("h4").subscribe(Filter.of(attr0=FULL))
        publisher.advertise(Filter.of(attr0=FULL))
        publisher.publish(Event.of(attr0=600))
        middleware.run()
        snapshot = middleware.obs_snapshot()
        assert snapshot["flight"]["deliveries"] >= 1
        assert "flight.deliveries" in snapshot["metrics"]["gauges"]

    def test_disabled_by_default_and_detachable(self):
        middleware = Pleroma(line(4), dimensions=1, max_dz_length=10)
        assert "flight" not in middleware.obs_snapshot()
        recorder = middleware.enable_flight_recorder()
        middleware.disable_flight_recorder()
        publisher = middleware.publisher("h1")
        publisher.advertise(Filter.of(attr0=FULL))
        publisher.publish(Event.of(attr0=600))
        middleware.run()
        assert len(recorder) == 0
        with pytest.raises(ValueError):
            middleware.flight_report()
