"""Tests for periodic (simulated-time) dimension re-selection."""

import pytest

from repro.core.events import Event
from repro.core.subscription import Filter
from repro.exceptions import ControllerError
from repro.middleware.pleroma import Pleroma
from repro.network.topology import line


def build():
    middleware = Pleroma(line(3), dimensions=3, max_dz_length=9)
    publisher = middleware.publisher("h1")
    publisher.advertise(Filter.of())
    middleware.subscriber("h3")
    middleware.subscribe("h3", __import__("repro").Subscription.of(attr0=(0, 255)))
    middleware.enable_dimension_selection(window_size=100)
    return middleware, publisher


class TestScheduling:
    def test_requires_enable(self):
        middleware = Pleroma(line(3), dimensions=2)
        with pytest.raises(ControllerError):
            middleware.schedule_dimension_selection(1.0)

    def test_invalid_period(self):
        middleware, _ = build()
        with pytest.raises(ControllerError):
            middleware.schedule_dimension_selection(0.0)

    def test_rounds_fire_on_period(self):
        middleware, publisher = build()
        import random

        rng = random.Random(5)
        for i in range(60):
            middleware.sim.schedule(
                i * 0.01,
                publisher.publish,
                Event.of(
                    attr0=rng.uniform(0, 1023), attr1=1.0, attr2=2.0
                ),
            )
        middleware.schedule_dimension_selection(0.25, k=1)
        middleware.run(until=1.0)
        monitor = middleware.monitor
        assert monitor is not None
        assert monitor.rounds >= 3
        assert middleware.indexer.space.dimensions == 1

    def test_empty_window_rounds_skipped(self):
        middleware, _ = build()
        middleware.schedule_dimension_selection(0.1)
        middleware.run(until=0.5)
        assert middleware.monitor.rounds == 0

    def test_cancel_stops_recurrence(self):
        middleware, publisher = build()
        publisher.publish(Event.of(attr0=1.0, attr1=1.0, attr2=1.0))
        handle = middleware.schedule_dimension_selection(0.1, k=2)
        middleware.run(until=0.15)
        rounds_before = middleware.monitor.rounds
        handle.cancel()
        middleware.run(until=2.0)
        assert middleware.monitor.rounds == rounds_before

    def test_delivery_continues_across_rounds(self):
        middleware, publisher = build()
        subscriber = middleware._subscribers["h3"]
        import random

        rng = random.Random(11)
        for i in range(100):
            middleware.sim.schedule(
                i * 0.01,
                publisher.publish,
                Event.of(
                    attr0=rng.uniform(0, 255), attr1=5.0, attr2=5.0
                ),
            )
        middleware.schedule_dimension_selection(0.3, k=1)
        middleware.run()
        # every event matched the subscription; all must arrive despite
        # the re-indexing happening mid-stream
        assert len(subscriber.matched) == 100
