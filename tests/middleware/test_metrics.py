"""Unit tests for the metrics collector."""

import pytest

from repro.core.events import Event
from repro.middleware.metrics import (
    DeliveryRecord,
    MetricsCollector,
    summarize,
)


def record(host="h1", publish=0.0, deliver=0.001, matched=True):
    return DeliveryRecord(
        host=host,
        event=Event.of(x=1),
        publish_time=publish,
        deliver_time=deliver,
        matched=matched,
    )


class TestRecording:
    def test_publish_window(self):
        collector = MetricsCollector()
        collector.on_publish(1.0)
        collector.on_publish(3.0)
        assert collector.published == 2
        assert collector.first_publish_time == 1.0
        assert collector.last_publish_time == 3.0

    def test_delivery_record_delay(self):
        assert record(publish=1.0, deliver=1.25).delay == pytest.approx(0.25)

    def test_reset(self):
        collector = MetricsCollector()
        collector.on_publish(1.0)
        collector.on_delivery(record())
        collector.reset()
        assert collector.published == 0
        assert collector.delivered == 0
        assert collector.first_publish_time is None


class TestDerivedMetrics:
    def test_mean_and_max_delay(self):
        collector = MetricsCollector()
        collector.on_delivery(record(deliver=0.002))
        collector.on_delivery(record(deliver=0.004))
        assert collector.mean_delay() == pytest.approx(0.003)
        assert collector.max_delay() == pytest.approx(0.004)

    def test_delay_requires_records(self):
        with pytest.raises(ValueError):
            MetricsCollector().mean_delay()
        with pytest.raises(ValueError):
            MetricsCollector().max_delay()

    def test_false_positive_rate(self):
        collector = MetricsCollector()
        collector.on_delivery(record(matched=True))
        collector.on_delivery(record(matched=False))
        collector.on_delivery(record(matched=False))
        assert collector.false_positive_rate() == pytest.approx(200 / 3)

    def test_fpr_empty_is_zero(self):
        assert MetricsCollector().false_positive_rate() == 0.0

    def test_deliveries_per_host(self):
        collector = MetricsCollector()
        collector.on_delivery(record(host="a"))
        collector.on_delivery(record(host="a"))
        collector.on_delivery(record(host="b"))
        assert collector.deliveries_per_host() == {"a": 2, "b": 1}

    def test_rates(self):
        collector = MetricsCollector()
        collector.on_publish(0.0)
        collector.on_publish(1.0)
        collector.on_delivery(record())
        collector.on_delivery(record())
        collector.on_delivery(record())
        assert collector.sent_rate_eps() == pytest.approx(2.0)
        assert collector.received_rate_eps() == pytest.approx(3.0)

    def test_rates_need_window(self):
        collector = MetricsCollector()
        collector.on_publish(5.0)  # single instant: no window
        with pytest.raises(ValueError):
            collector.sent_rate_eps()


class TestSummarize:
    def test_summary(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0
        assert stats["count"] == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
