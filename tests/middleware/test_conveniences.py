"""Tests for publish_stream and request-log summarisation."""

import pytest

from repro.controller.controller import summarize_requests
from repro.core.events import Event
from repro.core.subscription import Advertisement, Subscription
from repro.exceptions import ControllerError
from repro.middleware.pleroma import Pleroma
from repro.network.topology import line


@pytest.fixture
def middleware():
    m = Pleroma(line(3), dimensions=1, max_dz_length=10)
    m.advertise("h1", Advertisement.of(attr0=(0, 1023)))
    m.subscribe("h3", Subscription.of(attr0=(0, 1023)))
    return m


class TestPublishStream:
    def test_constant_rate(self, middleware):
        events = [Event.of(event_id=i, attr0=100) for i in range(10)]
        count = middleware.publish_stream("h1", events, rate_eps=1000.0)
        assert count == 10
        middleware.run()
        assert middleware.metrics.published == 10
        assert middleware.metrics.sent_rate_eps() == pytest.approx(
            10 / 0.009, rel=0.01
        )

    def test_start_at(self, middleware):
        middleware.publish_stream(
            "h1", [Event.of(attr0=1)], rate_eps=100.0, start_at=0.5
        )
        middleware.run()
        assert middleware.metrics.first_publish_time == pytest.approx(0.5)

    def test_invalid_rate(self, middleware):
        with pytest.raises(ControllerError):
            middleware.publish_stream("h1", [], rate_eps=0.0)

    def test_generator_input(self, middleware):
        count = middleware.publish_stream(
            "h1",
            (Event.of(attr0=v) for v in (1, 2, 3)),
            rate_eps=100.0,
        )
        assert count == 3


class TestSummarizeRequests:
    def test_summary_fields(self, middleware):
        log = middleware.controllers[0].request_log
        summary = summarize_requests(log)
        assert summary["count"] == 2  # one advertise + one subscribe
        assert summary["mean_delay_s"] > 0
        assert summary["max_delay_s"] >= summary["mean_delay_s"]
        assert summary["total_flow_mods"] > 0
        assert summary["requests_per_second"] > 0

    def test_kind_filter(self, middleware):
        log = middleware.controllers[0].request_log
        assert summarize_requests(log, kind="subscribe")["count"] == 1
        assert summarize_requests(log, kind="advertise")["count"] == 1

    def test_empty_rejected(self, middleware):
        with pytest.raises(ControllerError):
            summarize_requests([])
        with pytest.raises(ControllerError):
            summarize_requests(
                middleware.controllers[0].request_log, kind="reroute"
            )
