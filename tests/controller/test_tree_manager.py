"""Unit tests for tree creation, lookup and merging."""

import pytest

from repro.controller.state import Endpoint
from repro.controller.tree_manager import TreeManager
from repro.core.dz import Dz
from repro.core.dzset import DzSet
from repro.exceptions import ControllerError
from repro.network.topology import line, paper_fat_tree, ring


@pytest.fixture
def manager():
    return TreeManager(paper_fat_tree(), merge_threshold=4)


class TestCreation:
    def test_create_tree_spans_partition(self, manager):
        tree = manager.create_tree("R7", DzSet.of("0"))
        assert tree.switches == set(paper_fat_tree().switches())
        assert tree.root == "R7"
        assert manager.trees_created == 1

    def test_create_requires_partition_root(self, manager):
        with pytest.raises(ControllerError):
            manager.create_tree("R99", DzSet.of("0"))

    def test_create_rejects_empty_dz(self, manager):
        with pytest.raises(ControllerError):
            manager.create_tree("R7", DzSet(frozenset()))

    def test_disjointness_enforced(self, manager):
        manager.create_tree("R7", DzSet.of("0"))
        with pytest.raises(ControllerError):
            manager.create_tree("R8", DzSet.of("00"))

    def test_partition_restricted_tree(self):
        topo = ring(6, hosts_per_switch=0)
        manager = TreeManager(topo, partition={"R1", "R2", "R3"})
        tree = manager.create_tree("R1", DzSet.of("1"))
        assert tree.switches == {"R1", "R2", "R3"}

    def test_invalid_partition(self):
        with pytest.raises(ControllerError):
            TreeManager(line(2), partition={"R1", "bogus"})

    def test_invalid_threshold(self):
        with pytest.raises(ControllerError):
            TreeManager(line(2), merge_threshold=0)


class TestLookup:
    def test_overlapping(self, manager):
        t0 = manager.create_tree("R7", DzSet.of("0"))
        t1 = manager.create_tree("R8", DzSet.of("10"))
        assert manager.overlapping(Dz("00")) == [t0]
        assert manager.overlapping(Dz("1")) == [t1]
        assert manager.overlapping(Dz("11")) == []

    def test_overlapping_set(self, manager):
        t0 = manager.create_tree("R7", DzSet.of("0"))
        manager.create_tree("R8", DzSet.of("11"))
        hits = manager.overlapping_set(DzSet.of("01", "10"))
        assert hits == [t0]

    def test_total_coverage(self, manager):
        manager.create_tree("R7", DzSet.of("00"))
        manager.create_tree("R8", DzSet.of("01"))
        assert manager.total_coverage() == DzSet.of("0")

    def test_get_unknown(self, manager):
        with pytest.raises(ControllerError):
            manager.get(999)

    def test_retire(self, manager):
        tree = manager.create_tree("R7", DzSet.of("0"))
        manager.retire_tree(tree.tree_id)
        assert len(manager) == 0
        # region is free again
        manager.create_tree("R8", DzSet.of("00"))


class TestMerging:
    def test_paper_merge_example(self, manager):
        """Sec. 3.2: DZ {0000, 0010} and {0001, 0011} merge into {00}."""
        t1 = manager.create_tree("R7", DzSet.of("0000", "0010"))
        t2 = manager.create_tree("R8", DzSet.of("0001", "0011"))
        merged = manager.merge(t1, t2)
        assert merged.dz_set == DzSet.of("00")
        assert manager.trees_merged == 1
        manager.check_invariants()

    def test_coarsening_blocked_by_third_tree_falls_back_to_union(
        self, manager
    ):
        t1 = manager.create_tree("R7", DzSet.of("0000"))
        t2 = manager.create_tree("R8", DzSet.of("0011"))
        manager.create_tree("R9", DzSet.of("0010"))  # blocks coarse '00'
        merged = manager.merge(t1, t2)
        assert merged.dz_set == DzSet.of("0000", "0011")
        manager.check_invariants()

    def test_merge_keeps_members(self, manager):
        t1 = manager.create_tree("R7", DzSet.of("00"))
        t2 = manager.create_tree("R8", DzSet.of("01"))
        ep = Endpoint("h1", "R7", 1, address=1)
        t1.join_publisher(5, ep, DzSet.of("00"))
        t2.join_subscriber(6, ep, DzSet.of("01"))
        merged = manager.merge(t1, t2)
        assert 5 in merged.publishers
        assert 6 in merged.subscribers

    def test_merge_root_prefers_more_publishers(self, manager):
        t1 = manager.create_tree("R7", DzSet.of("00"))
        t2 = manager.create_tree("R8", DzSet.of("01"))
        ep = Endpoint("h3", "R8", 1, address=3)
        t2.join_publisher(5, ep, DzSet.of("01"))
        merged = manager.merge(t1, t2)
        assert merged.root == "R8"

    def test_merges_needed_threshold(self):
        manager = TreeManager(paper_fat_tree(), merge_threshold=2)
        manager.create_tree("R7", DzSet.of("00"))
        manager.create_tree("R8", DzSet.of("01"))
        assert not manager.merges_needed()
        manager.create_tree("R9", DzSet.of("10"))
        assert manager.merges_needed()

    def test_pick_merge_pair_prefers_long_common_prefix(self, manager):
        manager.create_tree("R7", DzSet.of("0000"))
        manager.create_tree("R8", DzSet.of("0001"))
        manager.create_tree("R9", DzSet.of("1"))
        a, b = manager.pick_merge_pair()
        assert {str(next(iter(a.dz_set)))[:3], str(next(iter(b.dz_set)))[:3]} == {
            "000"
        }

    def test_merge_dead_tree_rejected(self, manager):
        t1 = manager.create_tree("R7", DzSet.of("00"))
        t2 = manager.create_tree("R8", DzSet.of("01"))
        manager.retire_tree(t1.tree_id)
        with pytest.raises(ControllerError):
            manager.merge(t1, t2)

    def test_pick_merge_needs_two(self, manager):
        manager.create_tree("R7", DzSet.of("0"))
        with pytest.raises(ControllerError):
            manager.pick_merge_pair()
