"""Unit tests for spanning trees and tree routing."""

import pytest

from repro.controller.state import Endpoint
from repro.controller.tree import SpanningTree
from repro.core.dzset import DzSet
from repro.exceptions import ControllerError


def make_tree(**kwargs):
    """A small tree:        R1 (root)
                           /  \\
                          R2   R3
                          |
                          R4
    """
    defaults = dict(
        root="R1",
        parents={"R2": "R1", "R3": "R1", "R4": "R2"},
        dz_set=DzSet.of("1"),
    )
    defaults.update(kwargs)
    return SpanningTree(**defaults)


class TestValidation:
    def test_valid_tree(self):
        tree = make_tree()
        assert tree.switches == {"R1", "R2", "R3", "R4"}

    def test_disconnected_rejected(self):
        with pytest.raises(ControllerError):
            make_tree(parents={"R2": "R9"})

    def test_cycle_rejected(self):
        with pytest.raises(ControllerError):
            make_tree(parents={"R2": "R3", "R3": "R2"})


class TestPaths:
    def test_path_to_root(self):
        assert make_tree().path_to_root("R4") == ["R4", "R2", "R1"]
        assert make_tree().path_to_root("R1") == ["R1"]

    def test_path_to_root_unknown(self):
        with pytest.raises(ControllerError):
            make_tree().path_to_root("R9")

    def test_path_between_through_lca(self):
        assert make_tree().path_between("R4", "R3") == ["R4", "R2", "R1", "R3"]

    def test_path_between_ancestor(self):
        assert make_tree().path_between("R4", "R1") == ["R4", "R2", "R1"]
        assert make_tree().path_between("R1", "R4") == ["R1", "R2", "R4"]

    def test_path_between_same(self):
        assert make_tree().path_between("R2", "R2") == ["R2"]

    def test_path_between_siblings_below_root(self):
        tree = SpanningTree(
            root="R1",
            parents={"R2": "R1", "R3": "R2", "R4": "R2"},
            dz_set=DzSet.of("0"),
        )
        assert tree.path_between("R3", "R4") == ["R3", "R2", "R4"]


class TestMembership:
    def test_join_publisher_widens(self):
        tree = make_tree()
        ep = Endpoint("h1", "R1", 1, address=1)
        tree.join_publisher(7, ep, DzSet.of("10"))
        tree.join_publisher(7, ep, DzSet.of("11"))
        assert tree.publishers[7].overlap == DzSet.of("1")

    def test_join_subscriber_and_leave(self):
        tree = make_tree()
        ep = Endpoint("h2", "R2", 1, address=2)
        tree.join_subscriber(9, ep, DzSet.of("1"))
        assert 9 in tree.subscribers
        tree.leave_subscriber(9)
        assert 9 not in tree.subscribers

    def test_leave_missing_is_noop(self):
        make_tree().leave_publisher(123)

    def test_member_narrow(self):
        tree = make_tree()
        ep = Endpoint("h1", "R1", 1, address=1)
        tree.join_publisher(7, ep, DzSet.of("1"))
        tree.publishers[7].narrow(DzSet.of("11"))
        assert tree.publishers[7].overlap == DzSet.of("10")
