"""Unit tests for the table appliers (direct vs shadow-over-channel)."""

import pytest

from repro.controller.applier import ChannelApplier, DirectApplier
from repro.core.addressing import dz_to_prefix
from repro.core.dz import Dz
from repro.network.control_channel import ControlChannel
from repro.network.fabric import Network
from repro.network.flow import Action, FlowEntry
from repro.network.topology import line
from repro.sim.engine import Simulator


@pytest.fixture
def rig():
    sim = Simulator()
    net = Network(sim, line(2, hosts_per_switch=0))
    return sim, net


def entry(bits="10", port=1):
    return FlowEntry.for_dz(Dz(bits), {Action(port)})


class TestDirectApplier:
    def test_writes_physical_table_immediately(self, rig):
        _, net = rig
        applier = DirectApplier(net)
        applier.install("R1", entry())
        assert net.switches["R1"].table.get_dz(Dz("10")) is not None
        applier.remove("R1", dz_to_prefix(Dz("10")))
        assert len(net.switches["R1"].table) == 0

    def test_table_is_the_physical_one(self, rig):
        _, net = rig
        applier = DirectApplier(net)
        assert applier.table("R1") is net.switches["R1"].table


class TestChannelApplier:
    def test_shadow_updates_now_physical_later(self, rig):
        sim, net = rig
        channel = ControlChannel(sim, latency_s=1e-3)
        channel.connect(net.switches["R1"])
        applier = ChannelApplier(net, channel)
        applier.install("R1", entry())
        # shadow view is immediate
        assert applier.table("R1").get_dz(Dz("10")) is not None
        # physical table lags by the channel latency
        assert len(net.switches["R1"].table) == 0
        sim.run()
        assert net.switches["R1"].table.get_dz(Dz("10")) is not None

    def test_removal_mirrors(self, rig):
        sim, net = rig
        channel = ControlChannel(sim, latency_s=1e-3)
        channel.connect(net.switches["R1"])
        applier = ChannelApplier(net, channel)
        applier.install("R1", entry())
        applier.remove("R1", dz_to_prefix(Dz("10")))
        sim.run()
        assert len(net.switches["R1"].table) == 0
        assert channel.errors == []

    def test_replacement_sends_modify(self, rig):
        sim, net = rig
        channel = ControlChannel(sim, latency_s=1e-3)
        channel.connect(net.switches["R1"])
        applier = ChannelApplier(net, channel)
        applier.install("R1", entry(port=1))
        applier.install("R1", entry(port=2))
        sim.run()
        assert net.switches["R1"].table.get_dz(Dz("10")).actions == {
            Action(2)
        }
        assert channel.errors == []

    def test_shadow_capacity_matches_physical(self, rig):
        _, net = rig
        channel = ControlChannel(Simulator(), latency_s=1e-3)
        applier = ChannelApplier(net, channel)
        assert (
            applier.table("R1").capacity
            == net.switches["R1"].table.capacity
        )

    def test_in_place_mutation_of_shadow_mirrors(self, rig):
        """The incremental installer mutates the shadow directly; every
        mutation must still reach the physical table."""
        sim, net = rig
        channel = ControlChannel(sim, latency_s=1e-3)
        channel.connect(net.switches["R1"])
        applier = ChannelApplier(net, channel)
        from repro.controller.flow_installer import flow_addition

        flow_addition(applier.table("R1"), Dz("100"), {Action(2)})
        flow_addition(applier.table("R1"), Dz("10"), {Action(3)})
        sim.run()
        physical = net.switches["R1"].table
        shadow = applier.table("R1")
        assert {e.match: e.actions for e in physical} == {
            e.match: e.actions for e in shadow
        }
