"""Unit tests for the dz-trie contribution store."""

from repro.controller.dztrie import DzTrie
from repro.core.dz import ROOT, Dz
from repro.network.flow import Action


class TestRefCounting:
    def test_add_first_holder_changes(self):
        trie = DzTrie()
        assert trie.add(Dz("10"), Action(2)) is True
        assert trie.add(Dz("10"), Action(2)) is False
        assert len(trie) == 1

    def test_remove_last_holder_changes(self):
        trie = DzTrie()
        trie.add(Dz("10"), Action(2))
        trie.add(Dz("10"), Action(2))
        assert trie.remove(Dz("10"), Action(2)) is False
        assert trie.remove(Dz("10"), Action(2)) is True
        assert len(trie) == 0

    def test_remove_missing_is_noop(self):
        assert DzTrie().remove(Dz("10"), Action(2)) is False

    def test_actions_at(self):
        trie = DzTrie()
        trie.add(Dz("10"), Action(2))
        trie.add(Dz("10"), Action(3))
        assert trie.actions_at(Dz("10")) == {Action(2), Action(3)}
        assert trie.actions_at(Dz("11")) == frozenset()


class TestQueries:
    def test_cumulative_walks_ancestors(self):
        trie = DzTrie()
        trie.add(ROOT, Action(1))
        trie.add(Dz("1"), Action(2))
        trie.add(Dz("10"), Action(3))
        trie.add(Dz("11"), Action(4))  # sibling: not on the path
        assert trie.cumulative(Dz("10")) == {Action(1), Action(2), Action(3)}
        assert trie.cumulative(Dz("100")) == {Action(1), Action(2), Action(3)}
        assert trie.cumulative(ROOT) == {Action(1)}

    def test_desired_entry_redundant(self):
        trie = DzTrie()
        trie.add(Dz("1"), Action(2))
        trie.add(Dz("10"), Action(2))  # implied by the coarser contribution
        assert trie.desired_entry(Dz("1")) == {Action(2)}
        assert trie.desired_entry(Dz("10")) is None

    def test_desired_entry_accumulates(self):
        trie = DzTrie()
        trie.add(Dz("1"), Action(2))
        trie.add(Dz("10"), Action(3))
        assert trie.desired_entry(Dz("10")) == {Action(2), Action(3)}

    def test_desired_entry_absent(self):
        trie = DzTrie()
        trie.add(Dz("1"), Action(2))
        assert trie.desired_entry(Dz("0")) is None
        assert trie.desired_entry(Dz("11")) is None  # no contribution there

    def test_desired_entry_at_root(self):
        trie = DzTrie()
        trie.add(ROOT, Action(1))
        assert trie.desired_entry(ROOT) == {Action(1)}

    def test_descendants(self):
        trie = DzTrie()
        trie.add(Dz("1"), Action(1))
        trie.add(Dz("10"), Action(2))
        trie.add(Dz("101"), Action(3))
        trie.add(Dz("0"), Action(4))
        assert set(trie.descendants(Dz("1"))) == {Dz("10"), Dz("101")}
        assert set(trie.descendants(ROOT)) == {
            Dz("1"),
            Dz("10"),
            Dz("101"),
            Dz("0"),
        }
        assert set(trie.descendants(Dz("101"))) == set()

    def test_descendants_skip_empty_nodes(self):
        trie = DzTrie()
        trie.add(Dz("101"), Action(1))
        trie.remove(Dz("101"), Action(1))
        trie.add(Dz("1011"), Action(2))
        assert set(trie.descendants(Dz("1"))) == {Dz("1011")}

    def test_contributions_round_trip(self):
        trie = DzTrie()
        trie.add(Dz("0"), Action(1))
        trie.add(Dz("11"), Action(2))
        trie.add(Dz("11"), Action(3))
        assert trie.contributions() == {
            Dz("0"): frozenset({Action(1)}),
            Dz("11"): frozenset({Action(2), Action(3)}),
        }


class TestEdgeCases:
    def test_descendants_of_dz_with_no_subtree(self):
        trie = DzTrie()
        trie.add(Dz("10"), Action(2))
        assert list(trie.descendants(Dz("10"))) == []   # leaf: empty subtree
        assert list(trie.descendants(Dz("01"))) == []   # absent node entirely

    def test_descendants_skips_empty_interior_nodes(self):
        trie = DzTrie()
        trie.add(Dz("1011"), Action(2))  # '10' and '101' exist but are empty
        assert list(trie.descendants(Dz("1"))) == [Dz("1011")]
        assert list(trie.descendants(Dz("1011"))) == []

    def test_double_remove_does_not_underflow(self):
        trie = DzTrie()
        trie.add(Dz("10"), Action(2))
        assert trie.remove(Dz("10"), Action(2)) is True
        # a second remove of the same holder must be a no-op, not -1
        assert trie.remove(Dz("10"), Action(2)) is False
        assert len(trie) == 0
        # one fresh holder must make the pair visible again immediately
        assert trie.add(Dz("10"), Action(2)) is True
        assert trie.actions_at(Dz("10")) == {Action(2)}
        assert len(trie) == 1

    def test_last_holder_leaving_clears_desired_entry(self):
        trie = DzTrie()
        trie.add(Dz("10"), Action(2))  # two paths hold the same pair
        trie.add(Dz("10"), Action(2))
        trie.remove(Dz("10"), Action(2))
        assert trie.desired_entry(Dz("10")) == {Action(2)}  # one holder left
        trie.remove(Dz("10"), Action(2))
        assert trie.desired_entry(Dz("10")) is None  # last holder gone


class TestUnsubscribeDowngrade:
    """Sec. 3.3.3: removing a subscriber downgrades shared flows to the
    remaining subscribers' actions and deletes them only when the last
    holder leaves."""

    def test_downgrade_then_delete(self):
        from repro.core.subscription import Advertisement, Subscription
        from repro.network.topology import line
        from tests.helpers import make_system

        system = make_system(line(4))
        controller = system.controller
        controller.advertise("h1", Advertisement.of(attr0=(0, 1023)))
        near = controller.subscribe("h3", Subscription.of(attr0=(512, 767)))
        far = controller.subscribe("h4", Subscription.of(attr0=(512, 767)))
        # R3 serves both: terminal delivery to h3 plus transit towards R4
        [entry] = controller.installed_table("R3").entries()
        assert len(entry.actions) == 2
        terminal = {a for a in entry.actions if a.set_dest is not None}
        assert len(terminal) == 1

        controller.unsubscribe(far.sub_id)
        # downgraded, not deleted: only h3's terminal action remains
        [entry] = controller.installed_table("R3").entries()
        assert entry.actions == frozenset(terminal)
        assert controller.installed_table("R4").entries() == []

        controller.unsubscribe(near.sub_id)
        # last holder left: the flow disappears everywhere
        for switch in sorted(controller.partition):
            assert controller.installed_table(switch).entries() == []
