"""Unit tests for the dz-trie contribution store."""

from repro.controller.dztrie import DzTrie
from repro.core.dz import ROOT, Dz
from repro.network.flow import Action


class TestRefCounting:
    def test_add_first_holder_changes(self):
        trie = DzTrie()
        assert trie.add(Dz("10"), Action(2)) is True
        assert trie.add(Dz("10"), Action(2)) is False
        assert len(trie) == 1

    def test_remove_last_holder_changes(self):
        trie = DzTrie()
        trie.add(Dz("10"), Action(2))
        trie.add(Dz("10"), Action(2))
        assert trie.remove(Dz("10"), Action(2)) is False
        assert trie.remove(Dz("10"), Action(2)) is True
        assert len(trie) == 0

    def test_remove_missing_is_noop(self):
        assert DzTrie().remove(Dz("10"), Action(2)) is False

    def test_actions_at(self):
        trie = DzTrie()
        trie.add(Dz("10"), Action(2))
        trie.add(Dz("10"), Action(3))
        assert trie.actions_at(Dz("10")) == {Action(2), Action(3)}
        assert trie.actions_at(Dz("11")) == frozenset()


class TestQueries:
    def test_cumulative_walks_ancestors(self):
        trie = DzTrie()
        trie.add(ROOT, Action(1))
        trie.add(Dz("1"), Action(2))
        trie.add(Dz("10"), Action(3))
        trie.add(Dz("11"), Action(4))  # sibling: not on the path
        assert trie.cumulative(Dz("10")) == {Action(1), Action(2), Action(3)}
        assert trie.cumulative(Dz("100")) == {Action(1), Action(2), Action(3)}
        assert trie.cumulative(ROOT) == {Action(1)}

    def test_desired_entry_redundant(self):
        trie = DzTrie()
        trie.add(Dz("1"), Action(2))
        trie.add(Dz("10"), Action(2))  # implied by the coarser contribution
        assert trie.desired_entry(Dz("1")) == {Action(2)}
        assert trie.desired_entry(Dz("10")) is None

    def test_desired_entry_accumulates(self):
        trie = DzTrie()
        trie.add(Dz("1"), Action(2))
        trie.add(Dz("10"), Action(3))
        assert trie.desired_entry(Dz("10")) == {Action(2), Action(3)}

    def test_desired_entry_absent(self):
        trie = DzTrie()
        trie.add(Dz("1"), Action(2))
        assert trie.desired_entry(Dz("0")) is None
        assert trie.desired_entry(Dz("11")) is None  # no contribution there

    def test_desired_entry_at_root(self):
        trie = DzTrie()
        trie.add(ROOT, Action(1))
        assert trie.desired_entry(ROOT) == {Action(1)}

    def test_descendants(self):
        trie = DzTrie()
        trie.add(Dz("1"), Action(1))
        trie.add(Dz("10"), Action(2))
        trie.add(Dz("101"), Action(3))
        trie.add(Dz("0"), Action(4))
        assert set(trie.descendants(Dz("1"))) == {Dz("10"), Dz("101")}
        assert set(trie.descendants(ROOT)) == {
            Dz("1"),
            Dz("10"),
            Dz("101"),
            Dz("0"),
        }
        assert set(trie.descendants(Dz("101"))) == set()

    def test_descendants_skip_empty_nodes(self):
        trie = DzTrie()
        trie.add(Dz("101"), Action(1))
        trie.remove(Dz("101"), Action(1))
        trie.add(Dz("1011"), Action(2))
        assert set(trie.descendants(Dz("1"))) == {Dz("1011")}

    def test_contributions_round_trip(self):
        trie = DzTrie()
        trie.add(Dz("0"), Action(1))
        trie.add(Dz("11"), Action(2))
        trie.add(Dz("11"), Action(3))
        assert trie.contributions() == {
            Dz("0"): frozenset({Action(1)}),
            Dz("11"): frozenset({Action(2), Action(3)}),
        }
