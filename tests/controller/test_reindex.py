"""Direct tests for controller re-indexing (the Sec. 5 deployment step)."""

import pytest

from repro.core.events import Event, EventSpace
from repro.core.spatial_index import SpatialIndexer
from repro.core.subscription import Advertisement, Subscription
from repro.network.topology import line
from tests.helpers import make_system


class TestReindex:
    def _deployed_system(self):
        system = make_system(line(4), dimensions=2, max_dz_length=12)
        system.controller.advertise("h1", Advertisement.of())
        system.controller.subscribe(
            "h4", Subscription.of(attr0=(0, 255), attr1=(0, 255))
        )
        return system

    def test_reindex_replaces_all_flows(self):
        system = self._deployed_system()
        controller = system.controller
        coarse = SpatialIndexer(controller.indexer.space, max_dz_length=4)
        controller.reindex(coarse)
        assert controller.indexer is coarse
        for switch in system.net.switches.values():
            for entry in switch.table:
                assert len(entry.dz) <= 4
        controller.check_invariants()

    def test_identities_preserved(self):
        system = self._deployed_system()
        controller = system.controller
        adv_ids = set(controller.advertisements)
        sub_ids = set(controller.subscriptions)
        controller.reindex(
            SpatialIndexer(controller.indexer.space, max_dz_length=6)
        )
        assert set(controller.advertisements) == adv_ids
        assert set(controller.subscriptions) == sub_ids

    def test_delivery_after_reindex(self):
        system = self._deployed_system()
        controller = system.controller
        controller.reindex(
            SpatialIndexer(controller.indexer.space, max_dz_length=4)
        )
        # publish with the *new* indexing, as notified publishers would
        system.indexer = controller.indexer
        system.publish("h1", Event.of(attr0=100, attr1=100))
        system.run()
        assert len(system.delivered_events("h4")) == 1

    def test_listeners_notified(self):
        system = self._deployed_system()
        controller = system.controller
        seen = []
        controller.reindex_listeners.append(seen.append)
        new_indexer = SpatialIndexer(
            controller.indexer.space, max_dz_length=6
        )
        controller.reindex(new_indexer)
        assert seen == [new_indexer]

    def test_reindex_onto_restricted_space(self):
        system = self._deployed_system()
        controller = system.controller
        reduced = EventSpace.paper_schema(2).restrict(["attr0"])
        controller.reindex(SpatialIndexer(reduced, max_dz_length=8))
        system.indexer = controller.indexer
        system.publish("h1", Event.of(attr0=100, attr1=999))
        system.run()
        # attr1 is no longer filtered in-network: the event arrives even
        # though attr1=999 misses the subscription's attr1 range — it is a
        # false positive the host-side filter removes
        assert len(system.delivered_events("h4")) == 1

    def test_reindex_with_virtual_endpoints_replays_verbatim(self):
        """Federated (virtual) requests carry DZ sets without filters and
        must survive re-indexing unchanged."""
        from repro.core.dzset import DzSet

        system = self._deployed_system()
        controller = system.controller
        controller.register_virtual_endpoint("vh:R4:9", "R4", 9)
        state = controller.subscribe(
            "vh:R4:9", dz_set=DzSet.of("01"), _notify=False
        )
        controller.reindex(
            SpatialIndexer(controller.indexer.space, max_dz_length=6)
        )
        replayed = controller.subscriptions[state.sub_id]
        assert replayed.dz_set == DzSet.of("01")
        assert replayed.endpoint.is_virtual
