"""Unit tests for the declarative flow reconciler."""

from repro.controller.reconciler import (
    apply_diff,
    desired_flows,
    diff_table,
)
from repro.core.dz import Dz
from repro.network.flow import Action, FlowEntry, FlowTable


class TestDesiredFlows:
    def test_single_contribution(self):
        desired = desired_flows({Dz("10"): frozenset({Action(2)})})
        assert desired == {Dz("10"): frozenset({Action(2)})}

    def test_redundant_fine_contribution_dropped(self):
        """A finer dz whose actions are implied by a coarser one — the
        reconciler's version of Algorithm 1 cases 2/3."""
        desired = desired_flows(
            {
                Dz("10"): frozenset({Action(2), Action(3)}),
                Dz("100"): frozenset({Action(2)}),
            }
        )
        assert set(desired) == {Dz("10")}

    def test_fine_flow_accumulates_coarser_actions(self):
        """The Fig. 4 R5 situation: contribution (100 -> port 2) plus a new
        coarser contribution (10 -> port 3).  The fine flow must carry both
        ports because TCAM executes only the best match (case 5)."""
        desired = desired_flows(
            {
                Dz("100"): frozenset({Action(2)}),
                Dz("10"): frozenset({Action(3)}),
            }
        )
        assert desired[Dz("100")] == {Action(2), Action(3)}
        assert desired[Dz("10")] == {Action(3)}

    def test_disjoint_contributions_independent(self):
        desired = desired_flows(
            {
                Dz("00"): frozenset({Action(1)}),
                Dz("11"): frozenset({Action(2)}),
            }
        )
        assert desired[Dz("00")] == {Action(1)}
        assert desired[Dz("11")] == {Action(2)}

    def test_chain_of_three(self):
        desired = desired_flows(
            {
                Dz("1"): frozenset({Action(1)}),
                Dz("10"): frozenset({Action(2)}),
                Dz("101"): frozenset({Action(3)}),
            }
        )
        assert desired[Dz("1")] == {Action(1)}
        assert desired[Dz("10")] == {Action(1), Action(2)}
        assert desired[Dz("101")] == {Action(1), Action(2), Action(3)}

    def test_empty(self):
        assert desired_flows({}) == {}

    def test_same_action_fine_and_coarse(self):
        # fine contribution adds nothing beyond the coarse one -> dropped
        desired = desired_flows(
            {
                Dz("1"): frozenset({Action(2)}),
                Dz("11"): frozenset({Action(2)}),
            }
        )
        assert set(desired) == {Dz("1")}


class TestDiffAndApply:
    def test_add_from_empty(self):
        table = FlowTable()
        diff = diff_table(table, {Dz("10"): frozenset({Action(2)})})
        assert len(diff.additions) == 1
        assert diff.total_mods == 1
        apply_diff(table, diff)
        assert table.get_dz(Dz("10")).actions == {Action(2)}

    def test_noop_when_converged(self):
        table = FlowTable()
        desired = {Dz("10"): frozenset({Action(2)})}
        apply_diff(table, diff_table(table, desired))
        diff = diff_table(table, desired)
        assert diff.is_empty

    def test_modification(self):
        table = FlowTable()
        table.install(FlowEntry.for_dz(Dz("10"), {Action(2)}))
        diff = diff_table(table, {Dz("10"): frozenset({Action(2), Action(3)})})
        assert len(diff.modifications) == 1
        assert not diff.additions and not diff.deletions
        apply_diff(table, diff)
        assert table.get_dz(Dz("10")).actions == {Action(2), Action(3)}

    def test_deletion(self):
        table = FlowTable()
        table.install(FlowEntry.for_dz(Dz("10"), {Action(2)}))
        diff = diff_table(table, {})
        assert len(diff.deletions) == 1
        apply_diff(table, diff)
        assert len(table) == 0

    def test_downgrade_is_one_add_one_delete(self):
        """Sec. 3.3.3: downgrading a flow from dz=10 back to dz=100."""
        table = FlowTable()
        table.install(FlowEntry.for_dz(Dz("10"), {Action(2)}))
        diff = diff_table(table, {Dz("100"): frozenset({Action(2)})})
        assert len(diff.additions) == 1
        assert len(diff.deletions) == 1
        apply_diff(table, diff)
        assert table.get_dz(Dz("100")) is not None
        assert table.get_dz(Dz("10")) is None

    def test_priority_repaired(self):
        table = FlowTable()
        table.install(FlowEntry.for_dz(Dz("10"), {Action(2)}, priority=99))
        diff = diff_table(table, {Dz("10"): frozenset({Action(2)})})
        assert len(diff.modifications) == 1
        apply_diff(table, diff)
        assert table.get_dz(Dz("10")).priority == 2
