"""Unit tests for pluggable tree-construction strategies."""

import pytest

from repro.controller.tree import SpanningTree
from repro.controller.tree_builders import (
    builder_by_name,
    minimum_spanning_tree,
    random_spanning_tree,
    shortest_path_tree,
)
from repro.core.dzset import DzSet
from repro.exceptions import ControllerError
from repro.network.topology import paper_fat_tree, ring

ALL_BUILDERS = [shortest_path_tree, minimum_spanning_tree, random_spanning_tree]


@pytest.fixture
def topo():
    return paper_fat_tree()


class TestAllBuilders:
    @pytest.mark.parametrize("builder", ALL_BUILDERS)
    def test_produces_valid_spanning_tree(self, topo, builder):
        parents = builder(topo, topo.switches(), "R7")
        # SpanningTree validates connectivity and acyclicity
        tree = SpanningTree(root="R7", parents=parents, dz_set=DzSet.of("0"))
        assert tree.switches == set(topo.switches())

    @pytest.mark.parametrize("builder", ALL_BUILDERS)
    def test_deterministic(self, topo, builder):
        assert builder(topo, topo.switches(), "R7") == builder(
            topo, topo.switches(), "R7"
        )

    @pytest.mark.parametrize("builder", ALL_BUILDERS)
    def test_respects_partition(self, builder):
        topo = ring(6, hosts_per_switch=0)
        partition = ["R1", "R2", "R3"]
        parents = builder(topo, partition, "R2")
        assert set(parents) | {"R2"} == set(partition)

    @pytest.mark.parametrize("builder", ALL_BUILDERS)
    def test_unknown_root(self, topo, builder):
        with pytest.raises(Exception):
            builder(topo, topo.switches(), "R99")


class TestStrategyDifferences:
    def test_spt_minimises_depth(self, topo):
        """SPT root paths never exceed graph distance; MST ones may."""
        import networkx as nx

        sg = topo.switch_graph()
        dist = nx.single_source_shortest_path_length(sg, "R7")
        spt = SpanningTree(
            root="R7",
            parents=shortest_path_tree(topo, topo.switches(), "R7"),
            dz_set=DzSet.of("0"),
        )
        for node in topo.switches():
            assert len(spt.path_to_root(node)) - 1 == dist[node]

    def test_mst_shared_across_roots(self, topo):
        """The MST builder reuses one physical tree for every root."""
        edges_a = {
            frozenset((c, p))
            for c, p in minimum_spanning_tree(
                topo, topo.switches(), "R7"
            ).items()
        }
        edges_b = {
            frozenset((c, p))
            for c, p in minimum_spanning_tree(
                topo, topo.switches(), "R10"
            ).items()
        }
        assert edges_a == edges_b

    def test_random_differs_across_roots(self, topo):
        edges_a = {
            frozenset((c, p))
            for c, p in random_spanning_tree(
                topo, topo.switches(), "R7"
            ).items()
        }
        edges_b = {
            frozenset((c, p))
            for c, p in random_spanning_tree(
                topo, topo.switches(), "R10"
            ).items()
        }
        assert edges_a != edges_b


class TestLookupAndIntegration:
    def test_builder_by_name(self):
        assert builder_by_name("spt") is shortest_path_tree
        assert builder_by_name("mst") is minimum_spanning_tree
        assert builder_by_name("random") is random_spanning_tree
        with pytest.raises(ControllerError):
            builder_by_name("steiner")

    @pytest.mark.parametrize("name", ["spt", "mst", "random"])
    def test_controller_delivers_with_any_builder(self, name):
        from repro.core.events import Event
        from repro.core.subscription import Advertisement, Subscription
        from tests.helpers import make_system
        from repro.network.topology import paper_fat_tree as pft

        system = make_system(pft(), tree_builder=name)
        system.controller.advertise("h1", Advertisement.of(attr0=(0, 1023)))
        system.controller.subscribe("h8", Subscription.of(attr0=(0, 511)))
        system.publish("h1", Event.of(attr0=100))
        system.run()
        assert len(system.delivered_events("h8")) == 1
