"""Tests for link/switch failure handling and tree repair."""

import pytest

from repro.core.events import Event
from repro.core.subscription import Advertisement, Subscription
from repro.exceptions import ControllerError
from repro.middleware.pleroma import Pleroma
from repro.network.topology import line, paper_fat_tree, ring

FULL = (0, 1023)
MID = (512, 767)


def fat_tree_middleware():
    middleware = Pleroma(paper_fat_tree(), dimensions=1, max_dz_length=10)
    publisher = middleware.publisher("h1")
    publisher.advertise(Advertisement.of(attr0=FULL).filter)
    subscriber = middleware.subscriber("h8")
    subscriber.subscribe(Subscription.of(attr0=FULL).filter)
    return middleware, publisher, subscriber


class TestLinkLevel:
    def test_down_link_loses_packets(self):
        middleware, publisher, subscriber = fat_tree_middleware()
        # find a link on the installed path and kill it at the data plane
        # only (no repair): traffic must black-hole
        tree = next(iter(middleware.controllers[0].trees))
        child, parent = next(iter(tree.parents.items()))
        link = middleware.network.link_between(child, parent)
        link.fail()
        publisher.publish(Event.of(attr0=600))
        middleware.run()
        # the packet either black-holed on the dead link or was simply
        # routed around it (if that edge wasn't on h1->h8's path)
        assert link.packets_lost_down >= 0

    def test_restore(self):
        middleware, _, _ = fat_tree_middleware()
        link = middleware.network.link_between("R1", "R3")
        link.fail()
        link.restore()
        assert link.up


class TestLinkFailureRepair:
    def test_delivery_survives_any_single_core_link_failure(self):
        """The fat tree is 2-connected at the core: after any single
        switch-switch link dies and the controller repairs, delivery must
        resume."""
        probe_edges = [("R1", "R3"), ("R3", "R7"), ("R2", "R5"), ("R6", "R10")]
        for a, b in probe_edges:
            middleware, publisher, subscriber = fat_tree_middleware()
            middleware.fail_link(a, b)
            publisher.publish(Event.of(attr0=600))
            middleware.run()
            assert len(subscriber.matched) == 1, f"lost after {a}-{b} died"
            middleware.check_invariants()

    def test_unaffected_trees_untouched(self):
        middleware, publisher, subscriber = fat_tree_middleware()
        controller = middleware.controllers[0]
        tree = next(iter(controller.trees))
        # pick an edge the tree does NOT use
        unused = None
        for spec in list(middleware.topology.links()):
            if not (
                middleware.topology.is_switch(spec.a)
                and middleware.topology.is_switch(spec.b)
            ):
                continue
            if not tree.uses_edge(spec.a, spec.b):
                unused = (spec.a, spec.b)
                break
        assert unused is not None
        mods_before = controller.total_flow_mods
        middleware.fail_link(*unused)
        assert controller.total_flow_mods == mods_before  # nothing touched

    def test_disconnecting_failure_raises(self):
        middleware = Pleroma(line(3), dimensions=1)
        middleware.advertise("h1", Advertisement.of(attr0=FULL))
        with pytest.raises(ControllerError):
            middleware.fail_link("R1", "R2")  # a line has no alternative

    def test_ring_reroutes_the_long_way(self):
        middleware = Pleroma(ring(6), dimensions=1, max_dz_length=8)
        publisher = middleware.publisher("h1")
        publisher.advertise(Advertisement.of(attr0=FULL).filter)
        subscriber = middleware.subscriber("h2")
        subscriber.subscribe(Subscription.of(attr0=FULL).filter)
        middleware.fail_link("R1", "R2")
        publisher.publish(Event.of(attr0=100))
        middleware.run()
        assert len(subscriber.matched) == 1
        # the event went the long way round: at least 5 inter-switch hops
        record = middleware.metrics.records[0]
        assert record.delay > 0

    def test_border_and_host_links_rejected(self):
        middleware = Pleroma(ring(6), dimensions=1, partitions=2)
        with pytest.raises(ControllerError):
            middleware.fail_link("h1", "R1")
        # find a border edge: endpoints in different partitions
        c1, c2 = middleware.controllers
        border = None
        for spec in middleware.topology.links():
            if (
                middleware.topology.is_switch(spec.a)
                and middleware.topology.is_switch(spec.b)
                and (spec.a in c1.partition) != (spec.b in c1.partition)
            ):
                border = (spec.a, spec.b)
                break
        assert border is not None
        with pytest.raises(ControllerError):
            middleware.fail_link(*border)

    def test_foreign_link_rejected_by_controller(self):
        middleware, _, _ = fat_tree_middleware()
        with pytest.raises(ControllerError):
            middleware.controllers[0].handle_link_failure("R1", "R99")


class TestSwitchFailureRepair:
    def test_core_switch_failure_survivable(self):
        middleware, publisher, subscriber = fat_tree_middleware()
        middleware.fail_switch("R1")  # one of two cores
        publisher.publish(Event.of(attr0=600))
        middleware.run()
        assert len(subscriber.matched) == 1
        middleware.check_invariants()

    def test_clients_on_dead_switch_withdrawn(self):
        middleware, publisher, subscriber = fat_tree_middleware()
        controller = middleware.controllers[0]
        # subscribe another host on R9, then kill R9
        extra = middleware.subscriber("h5")
        extra.subscribe(Subscription.of(attr0=FULL).filter)
        doomed_switch = middleware.topology.access_switch("h5")
        count_before = len(controller.subscriptions)
        middleware.fail_switch(doomed_switch)
        assert len(controller.subscriptions) == count_before - 1
        # survivors still get events
        publisher.publish(Event.of(attr0=600))
        middleware.run()
        assert len(subscriber.matched) == 1
        assert extra.matched == []

    def test_publisher_switch_failure_rehomes_tree(self):
        """If the tree's root switch dies with the publisher, the tree is
        re-rooted and surviving publishers keep working."""
        middleware = Pleroma(paper_fat_tree(), dimensions=1, max_dz_length=10)
        p1 = middleware.publisher("h1")
        p1.advertise(Advertisement.of(attr0=FULL).filter)
        p2 = middleware.publisher("h3")
        p2.advertise(Advertisement.of(attr0=FULL).filter)
        subscriber = middleware.subscriber("h8")
        subscriber.subscribe(Subscription.of(attr0=FULL).filter)
        root_switch = middleware.topology.access_switch("h1")
        middleware.fail_switch(root_switch)
        middleware.controllers[0].check_invariants()
        p2.publish(Event.of(attr0=600))
        middleware.run()
        assert len(subscriber.matched) == 1

    def test_unknown_switch_rejected(self):
        middleware, _, _ = fat_tree_middleware()
        with pytest.raises(ControllerError):
            middleware.fail_switch("R99")
        with pytest.raises(ControllerError):
            middleware.controllers[0].handle_switch_failure("R99")

    def test_failure_stats_recorded(self):
        middleware, _, _ = fat_tree_middleware()
        controller = middleware.controllers[0]
        middleware.fail_link("R1", "R3")
        kinds = [s.kind for s in controller.request_log]
        assert "link_failure" in kinds
