"""The reroute primitive's typed outcome (and its bool-compat shim).

``reroute_tree_around_edge`` historically returned a bare bool; callers
like the overload manager branch on truthiness.  It now returns a
:class:`RerouteOutcome` that says *why* nothing happened, while staying
truthy exactly when a reroute was deployed.
"""

from repro.controller.controller import RerouteOutcome
from repro.core.subscription import Advertisement, Filter
from repro.middleware.pleroma import Pleroma
from repro.network.topology import line, paper_fat_tree

FULL = (0, 1023)


class TestOutcomeValues:
    def test_rerouted_on_redundant_edge(self):
        middleware = Pleroma(paper_fat_tree(), dimensions=1)
        controller = middleware.controllers[0]
        middleware.advertise("h1", Advertisement(filter=Filter.of(attr0=FULL)))
        tree = next(iter(controller.trees))
        child, parent = next(iter(tree.parents.items()))
        outcome = controller.reroute_tree_around_edge(
            tree.tree_id, child, parent
        )
        assert outcome is RerouteOutcome.REROUTED
        assert not tree.uses_edge(child, parent)

    def test_tree_not_on_edge(self):
        middleware = Pleroma(paper_fat_tree(), dimensions=1)
        controller = middleware.controllers[0]
        middleware.advertise("h1", Advertisement(filter=Filter.of(attr0=FULL)))
        tree = next(iter(controller.trees))
        unused = next(
            (spec.a, spec.b)
            for spec in middleware.topology.links()
            if middleware.topology.is_switch(spec.a)
            and middleware.topology.is_switch(spec.b)
            and not tree.uses_edge(spec.a, spec.b)
        )
        outcome = controller.reroute_tree_around_edge(tree.tree_id, *unused)
        assert outcome is RerouteOutcome.TREE_NOT_ON_EDGE

    def test_edge_is_bridge(self):
        middleware = Pleroma(line(3), dimensions=1)
        controller = middleware.controllers[0]
        middleware.advertise("h1", Advertisement(filter=Filter.of(attr0=FULL)))
        tree = next(iter(controller.trees))
        outcome = controller.reroute_tree_around_edge(tree.tree_id, "R1", "R2")
        assert outcome is RerouteOutcome.EDGE_IS_BRIDGE
        assert tree.uses_edge("R1", "R2")  # untouched


class TestBoolCompatibility:
    def test_only_rerouted_is_truthy(self):
        assert bool(RerouteOutcome.REROUTED)
        assert not bool(RerouteOutcome.TREE_NOT_ON_EDGE)
        assert not bool(RerouteOutcome.EDGE_IS_BRIDGE)
