"""Integration tests for the PLEROMA controller (Algorithm 1 end to end)."""

import pytest

from repro.controller.requests import (
    AdvertiseRequest,
    SubscribeRequest,
    UnsubscribeRequest,
)
from repro.core.addressing import PUBSUB_CONTROL_ADDRESS
from repro.core.dz import Dz
from repro.core.dzset import DzSet
from repro.core.events import Event
from repro.core.subscription import Advertisement, Subscription
from repro.exceptions import ControllerError
from repro.network.packet import Packet
from repro.network.topology import line, paper_fat_tree
from tests.helpers import make_system

# With a 1-dimensional paper schema over [0, 1024), value v maps to the
# half-space '0' if v < 512 and '1' otherwise; quarter-spaces '00', '01',
# '10', '11' cut at 256/512/768, etc.
LOW = (0, 255)       # dz 00
MID = (512, 767)     # dz 10
FULL = (0, 1023)     # whole space


class TestAdvertise:
    def test_creates_tree_rooted_at_access_switch(self):
        system = make_system(line(4))
        state = system.controller.advertise("h1", Advertisement.of(attr0=MID))
        assert len(system.controller.trees) == 1
        tree = next(iter(system.controller.trees))
        assert tree.root == "R1"
        assert tree.dz_set == DzSet.of("10")
        assert state.adv_id in tree.publishers

    def test_covered_advertisement_joins_existing_tree(self):
        """Alg. 1 action (1): adv DZ {11} joins a tree with DZ {1}."""
        system = make_system(line(4))
        system.controller.advertise("h1", Advertisement.of(attr0=(512, 1023)))
        system.controller.advertise("h2", Advertisement.of(attr0=(768, 1023)))
        assert len(system.controller.trees) == 1
        tree = next(iter(system.controller.trees))
        assert len(tree.publishers) == 2

    def test_covering_advertisement_joins_and_creates(self):
        """Alg. 1 action (2): adv DZ {0} over tree {00} joins it and spawns
        a new tree for the uncovered {01}."""
        system = make_system(line(4))
        system.controller.advertise("h1", Advertisement.of(attr0=LOW))
        system.controller.advertise("h2", Advertisement.of(attr0=(0, 511)))
        trees = sorted(
            system.controller.trees, key=lambda t: str(t.dz_set)
        )
        assert len(trees) == 2
        dz_sets = {str(t.dz_set) for t in trees}
        assert dz_sets == {"{00}", "{01}"}
        system.controller.check_invariants()

    def test_disjoint_advertisement_creates_tree(self):
        """Alg. 1 action (3)."""
        system = make_system(line(4))
        system.controller.advertise("h1", Advertisement.of(attr0=LOW))
        system.controller.advertise("h2", Advertisement.of(attr0=MID))
        assert len(system.controller.trees) == 2
        system.controller.check_invariants()

    def test_duplicate_advertisement_rejected(self):
        system = make_system(line(4))
        adv = Advertisement.of(attr0=LOW)
        system.controller.advertise("h1", adv)
        with pytest.raises(ControllerError):
            system.controller.advertise("h1", adv)

    def test_unknown_host_rejected(self):
        system = make_system(line(4))
        with pytest.raises(ControllerError):
            system.controller.advertise("h99", Advertisement.of(attr0=LOW))


class TestEndToEndDelivery:
    def test_event_reaches_matching_subscriber(self):
        system = make_system(line(4))
        system.controller.advertise("h1", Advertisement.of(attr0=FULL))
        system.controller.subscribe("h4", Subscription.of(attr0=MID))
        system.publish("h1", Event.of(attr0=600))
        system.run()
        assert len(system.delivered_events("h4")) == 1
        assert system.delivered_events("h4")[0].value("attr0") == 600

    def test_non_matching_event_not_delivered(self):
        system = make_system(line(4))
        system.controller.advertise("h1", Advertisement.of(attr0=FULL))
        system.controller.subscribe("h4", Subscription.of(attr0=MID))
        system.publish("h1", Event.of(attr0=100))  # dz 00..., not in {10}
        system.run()
        assert system.delivered_events("h4") == []

    def test_publisher_does_not_receive_own_event(self):
        system = make_system(line(4))
        system.controller.advertise("h1", Advertisement.of(attr0=FULL))
        system.controller.subscribe("h1", Subscription.of(attr0=FULL))
        system.controller.subscribe("h2", Subscription.of(attr0=FULL))
        system.publish("h1", Event.of(attr0=600))
        system.run()
        assert len(system.delivered_events("h2")) == 1
        assert system.delivered_events("h1") == []

    def test_multiple_subscribers_shared_path(self):
        system = make_system(line(4))
        system.controller.advertise("h1", Advertisement.of(attr0=FULL))
        system.controller.subscribe("h3", Subscription.of(attr0=MID))
        system.controller.subscribe("h4", Subscription.of(attr0=MID))
        system.publish("h1", Event.of(attr0=700))
        system.run()
        assert len(system.delivered_events("h3")) == 1
        assert len(system.delivered_events("h4")) == 1
        # bandwidth efficiency: the shared R1->R2 segment carried it once
        assert system.net.link_between("R1", "R2").total_packets == 1

    def test_event_fans_out_on_fat_tree(self):
        system = make_system(paper_fat_tree())
        system.controller.advertise("h1", Advertisement.of(attr0=FULL))
        for host in ("h3", "h5", "h8"):
            system.controller.subscribe(host, Subscription.of(attr0=FULL))
        system.publish("h1", Event.of(attr0=5))
        system.run()
        for host in ("h3", "h5", "h8"):
            assert len(system.delivered_events(host)) == 1

    def test_two_publishers_one_subscriber(self):
        system = make_system(line(3))
        system.controller.advertise("h1", Advertisement.of(attr0=FULL))
        system.controller.advertise("h3", Advertisement.of(attr0=FULL))
        system.controller.subscribe("h2", Subscription.of(attr0=FULL))
        system.publish("h1", Event.of(attr0=10))
        system.publish("h3", Event.of(attr0=900))
        system.run()
        assert len(system.delivered_events("h2")) == 2


class TestPendingSubscriptions:
    def test_subscription_without_tree_is_stored(self):
        system = make_system(line(4))
        system.controller.subscribe("h4", Subscription.of(attr0=MID))
        assert len(system.controller.trees) == 0
        assert len(system.controller.subscriptions) == 1
        assert system.controller.total_flow_mods == 0

    def test_stored_subscription_activated_by_advertisement(self):
        """Alg. 1 lines 9/15: stored subscriptions are re-checked when a
        tree is created."""
        system = make_system(line(4))
        system.controller.subscribe("h4", Subscription.of(attr0=MID))
        system.controller.advertise("h1", Advertisement.of(attr0=FULL))
        system.publish("h1", Event.of(attr0=600))
        system.run()
        assert len(system.delivered_events("h4")) == 1


class TestFig4Scenario:
    """The paper's flow-maintenance walk-through on a line topology.

    h1 (publisher, adv {1}) - R1 - R2 - R3 - h3 and h4 beyond:
    s2 = h4 with DZ {100}; s3 = h3 with DZ {10}.
    """

    def _setup(self):
        system = make_system(line(4), max_dz_length=6)
        system.controller.advertise("h1", Advertisement.of(attr0=(512, 1023)))
        system.controller.subscribe(
            "h4", Subscription.of(attr0=(512, 639))
        )  # dz 100
        return system

    def test_initial_flows_use_fine_dz(self):
        system = self._setup()
        for switch in ("R1", "R2", "R3"):
            table = system.net.switches[switch].table
            assert table.get_dz(Dz("100")) is not None

    def test_new_coarser_subscription_upgrades_flows(self):
        system = self._setup()
        system.controller.subscribe(
            "h3", Subscription.of(attr0=(512, 767))
        )  # dz 10
        # R1, R2: only the coarser flow remains (case 3 replacement)
        for switch in ("R1", "R2"):
            table = system.net.switches[switch].table
            assert table.get_dz(Dz("10")) is not None
            assert table.get_dz(Dz("100")) is None
        # R3 keeps both: fine flow 100 forwards on to R4 *and* delivers to
        # h3; coarse flow 10 only delivers to h3 (case 5)
        table = system.net.switches["R3"].table
        fine, coarse = table.get_dz(Dz("100")), table.get_dz(Dz("10"))
        assert fine is not None and coarse is not None
        assert coarse.actions < fine.actions
        assert fine.priority > coarse.priority

    def test_events_delivered_correctly_after_upgrade(self):
        system = self._setup()
        system.controller.subscribe("h3", Subscription.of(attr0=(512, 767)))
        system.publish("h1", Event.of(attr0=600))  # dz 100...: both match
        system.publish("h1", Event.of(attr0=700))  # dz 101...: only s3
        system.run()
        assert len(system.delivered_events("h3")) == 2
        assert len(system.delivered_events("h4")) == 1

    def test_unsubscription_downgrades_flows(self):
        """Sec. 3.3.3: when s3 leaves, flows downgrade from 10 back to 100
        and the delivery leg disappears."""
        system = self._setup()
        sub = system.controller.subscribe(
            "h3", Subscription.of(attr0=(512, 767))
        )
        system.controller.unsubscribe(sub.sub_id)
        for switch in ("R1", "R2", "R3"):
            table = system.net.switches[switch].table
            assert table.get_dz(Dz("100")) is not None
            assert table.get_dz(Dz("10")) is None
        # and s2 still receives its events
        system.publish("h1", Event.of(attr0=600))
        system.run()
        assert len(system.delivered_events("h4")) == 1
        assert system.delivered_events("h3") == []


class TestUnadvertise:
    def test_unadvertise_cleans_everything(self):
        system = make_system(line(4))
        state = system.controller.advertise("h1", Advertisement.of(attr0=FULL))
        system.controller.subscribe("h4", Subscription.of(attr0=FULL))
        system.controller.unadvertise(state.adv_id)
        assert len(system.controller.trees) == 0
        for switch in system.net.switches.values():
            assert len(switch.table) == 0
        # events are now dropped at the access switch
        system.publish("h1", Event.of(attr0=600))
        system.run()
        assert system.delivered_events("h4") == []

    def test_tree_survives_if_other_publisher_remains(self):
        system = make_system(line(4))
        a1 = system.controller.advertise("h1", Advertisement.of(attr0=MID))
        system.controller.advertise("h2", Advertisement.of(attr0=MID))
        system.controller.unadvertise(a1.adv_id)
        assert len(system.controller.trees) == 1

    def test_unknown_ids_rejected(self):
        system = make_system(line(4))
        with pytest.raises(ControllerError):
            system.controller.unsubscribe(424242)
        with pytest.raises(ControllerError):
            system.controller.unadvertise(424242)


class TestControlChannel:
    def test_requests_via_pubsub_address(self):
        """Hosts reach the controller by addressing IP_pub/sub; switches
        divert those packets to the control plane (Sec. 2)."""
        system = make_system(line(4))
        h1, h4 = system.net.hosts["h1"], system.net.hosts["h4"]
        h1.send(
            Packet(
                dst_address=PUBSUB_CONTROL_ADDRESS,
                payload=AdvertiseRequest("h1", Advertisement.of(attr0=FULL)),
            )
        )
        h4.send(
            Packet(
                dst_address=PUBSUB_CONTROL_ADDRESS,
                payload=SubscribeRequest("h4", Subscription.of(attr0=MID)),
            )
        )
        system.run()
        assert len(system.controller.advertisements) == 1
        assert len(system.controller.subscriptions) == 1
        system.publish("h1", Event.of(attr0=600))
        system.run()
        assert len(system.delivered_events("h4")) == 1

    def test_unsubscribe_via_packet(self):
        system = make_system(line(4))
        system.controller.advertise("h1", Advertisement.of(attr0=FULL))
        sub = Subscription.of(attr0=MID)
        system.controller.subscribe("h4", sub)
        system.net.hosts["h4"].send(
            Packet(
                dst_address=PUBSUB_CONTROL_ADDRESS,
                payload=UnsubscribeRequest("h4", sub.sub_id),
            )
        )
        system.run()
        assert system.controller.subscriptions == {}


class TestStatsAndModes:
    def test_request_log_records_costs(self):
        system = make_system(line(4))
        system.controller.advertise("h1", Advertisement.of(attr0=FULL))
        system.controller.subscribe("h4", Subscription.of(attr0=MID))
        assert system.controller.requests_processed == 2
        sub_stats = system.controller.request_log[-1]
        assert sub_stats.kind == "subscribe"
        assert sub_stats.flow_mods > 0
        assert sub_stats.reconfiguration_delay_s > 0
        adv_stats = system.controller.request_log[0]
        assert adv_stats.trees_created == 1

    def test_incremental_mode_delivers_identically(self):
        results = {}
        for mode in ("reconcile", "incremental"):
            system = make_system(line(4), install_mode=mode)
            system.controller.advertise(
                "h1", Advertisement.of(attr0=FULL)
            )
            system.controller.subscribe("h4", Subscription.of(attr0=MID))
            system.controller.subscribe("h3", Subscription.of(attr0=LOW))
            for value in (5, 300, 600, 1000):
                system.publish("h1", Event.of(attr0=value))
            system.run()
            results[mode] = {
                host: len(system.delivered_events(host))
                for host in ("h2", "h3", "h4")
            }
        assert results["reconcile"] == results["incremental"]

    def test_invalid_mode_rejected(self):
        with pytest.raises(ControllerError):
            make_system(line(4), install_mode="bogus")


class TestTreeMerging:
    def test_merge_triggered_above_threshold(self):
        system = make_system(line(4), merge_threshold=2)
        # three disjoint advertisements from different hosts
        system.controller.advertise("h1", Advertisement.of(attr0=(0, 255)))
        system.controller.advertise("h2", Advertisement.of(attr0=(256, 511)))
        system.controller.advertise("h3", Advertisement.of(attr0=(512, 767)))
        assert len(system.controller.trees) <= 2
        system.controller.check_invariants()

    def test_delivery_still_works_after_merge(self):
        system = make_system(line(4), merge_threshold=2)
        system.controller.subscribe("h4", Subscription.of(attr0=(0, 1023)))
        system.controller.advertise("h1", Advertisement.of(attr0=(0, 255)))
        system.controller.advertise("h2", Advertisement.of(attr0=(256, 511)))
        system.controller.advertise("h3", Advertisement.of(attr0=(512, 767)))
        system.publish("h1", Event.of(attr0=100))
        system.publish("h2", Event.of(attr0=300))
        system.publish("h3", Event.of(attr0=600))
        system.run()
        assert len(system.delivered_events("h4")) == 3
