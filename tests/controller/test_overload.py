"""Tests for overload detection and tree rerouting."""

import pytest

from repro.controller.overload import OverloadManager
from repro.core.events import Event
from repro.core.subscription import Advertisement, Subscription
from repro.exceptions import ControllerError
from repro.middleware.pleroma import Pleroma
from repro.network.fabric import NetworkParams
from repro.network.stats import LinkUtilizationSampler
from repro.network.topology import paper_fat_tree

FULL = (0, 1023)


def build(bandwidth=8e6):
    middleware = Pleroma(
        paper_fat_tree(),
        dimensions=1,
        max_dz_length=10,
        params=NetworkParams(bandwidth_bps=bandwidth),
    )
    publisher = middleware.publisher("h1")
    publisher.advertise(Advertisement.of(attr0=FULL).filter)
    subscriber = middleware.subscriber("h8")
    subscriber.subscribe(Subscription.of(attr0=FULL).filter)
    sampler = LinkUtilizationSampler(middleware.network)
    manager = OverloadManager(
        controller=middleware.controllers[0],
        sampler=sampler,
        threshold=0.5,
    )
    return middleware, publisher, subscriber, manager


def drive(middleware, publisher, events=200, interval=1e-3):
    for i in range(events):
        middleware.sim.schedule(
            i * interval, publisher.publish, Event.of(attr0=600)
        )
    middleware.run()


class TestDetection:
    def test_no_event_below_threshold(self):
        middleware, publisher, _, manager = build(bandwidth=1e9)
        drive(middleware, publisher, events=50)
        assert manager.check() is None
        assert manager.log == []

    def test_hot_link_detected_and_rerouted(self):
        middleware, publisher, subscriber, manager = build(bandwidth=4e5)
        tree = next(iter(middleware.controllers[0].trees))
        edges_before = {
            frozenset((c, p)) for c, p in tree.parents.items()
        }
        drive(middleware, publisher, events=200)
        event = manager.check()
        assert event is not None
        assert event.utilization >= 0.5
        assert event.rerouted
        edges_after = {frozenset((c, p)) for c, p in tree.parents.items()}
        assert frozenset(event.edge) in edges_before
        assert frozenset(event.edge) not in edges_after

    def test_delivery_correct_after_reroute(self):
        middleware, publisher, subscriber, manager = build(bandwidth=4e5)
        drive(middleware, publisher, events=100)
        before = len(subscriber.matched)
        event = manager.check()
        assert event is not None and event.rerouted
        drive(middleware, publisher, events=50)
        assert len(subscriber.matched) == before + 50
        middleware.check_invariants()

    def test_traffic_actually_moves_off_the_edge(self):
        middleware, publisher, _, manager = build(bandwidth=4e5)
        drive(middleware, publisher, events=150)
        event = manager.check()
        assert event is not None and event.rerouted
        a, b = event.edge
        link = middleware.network.link_between(a, b)
        packets_before = link.total_packets
        drive(middleware, publisher, events=100)
        assert link.total_packets == packets_before

    def test_invalid_threshold(self):
        middleware, _, _, _ = build()
        with pytest.raises(ControllerError):
            OverloadManager(
                controller=middleware.controllers[0],
                sampler=LinkUtilizationSampler(middleware.network),
                threshold=0.0,
            )


class TestReroutePrimitive:
    def test_reroute_noop_when_edge_unused(self):
        middleware, _, _, _ = build()
        controller = middleware.controllers[0]
        tree = next(iter(controller.trees))
        unused = None
        for spec in middleware.topology.links():
            if (
                middleware.topology.is_switch(spec.a)
                and middleware.topology.is_switch(spec.b)
                and not tree.uses_edge(spec.a, spec.b)
            ):
                unused = (spec.a, spec.b)
                break
        assert unused is not None
        assert not controller.reroute_tree_around_edge(
            tree.tree_id, *unused
        )

    def test_reroute_fails_on_bridge(self):
        """On a line topology every edge is a bridge: no reroute exists."""
        from repro.network.topology import line

        middleware = Pleroma(line(3), dimensions=1)
        controller = middleware.controllers[0]
        middleware.advertise("h1", Advertisement.of(attr0=FULL))
        tree = next(iter(controller.trees))
        assert not controller.reroute_tree_around_edge(
            tree.tree_id, "R1", "R2"
        )
        # tree unchanged and still functional
        assert tree.uses_edge("R1", "R2")

    def test_reroute_stats_recorded(self):
        middleware, publisher, _, manager = build(bandwidth=4e5)
        drive(middleware, publisher, events=150)
        event = manager.check()
        assert event is not None
        kinds = [s.kind for s in middleware.controllers[0].request_log]
        assert "reroute" in kinds
