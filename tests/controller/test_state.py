"""Unit tests for endpoints and the flow-contribution ledger."""

import pytest

from repro.controller.state import Endpoint, FlowLedger, PathKey
from repro.core.dz import Dz
from repro.exceptions import ControllerError
from repro.network.flow import Action


def key(tree=1, adv=1, sub=1, bits="10") -> PathKey:
    return PathKey(tree_id=tree, adv_id=adv, sub_id=sub, dz=Dz(bits))


class TestEndpoint:
    def test_real_endpoint(self):
        ep = Endpoint("h1", "R1", 3, address=42)
        assert not ep.is_virtual
        assert ep.terminal_action() == Action(3, set_dest=42)

    def test_virtual_endpoint(self):
        ep = Endpoint("ext:N2", "R5", 2)
        assert ep.is_virtual
        # no rewrite: the packet keeps its dz multicast address across the
        # border so the next partition can match it
        assert ep.terminal_action() == Action(2, set_dest=None)


class TestLedger:
    def test_add_and_aggregate(self):
        ledger = FlowLedger()
        ledger.add("R1", Dz("10"), Action(2), key(sub=1))
        ledger.add("R1", Dz("10"), Action(3), key(sub=2))
        ledger.add("R1", Dz("1"), Action(2), key(sub=3))
        contribs = ledger.contributions("R1")
        assert contribs[Dz("10")] == {Action(2), Action(3)}
        assert contribs[Dz("1")] == {Action(2)}

    def test_add_reports_new_pairs(self):
        ledger = FlowLedger()
        assert ledger.add("R1", Dz("10"), Action(2), key(sub=1)) is True
        # second holder of the same pair: no table change needed
        assert ledger.add("R1", Dz("10"), Action(2), key(sub=2)) is False

    def test_remove_key_returns_changed_dz(self):
        ledger = FlowLedger()
        ledger.add("R1", Dz("10"), Action(2), key(sub=1))
        ledger.add("R2", Dz("10"), Action(1), key(sub=1))
        changed = ledger.remove_key(key(sub=1))
        assert changed == {"R1": {Dz("10")}, "R2": {Dz("10")}}
        assert ledger.contributions("R1") == {}

    def test_shared_contribution_survives_one_removal(self):
        """Two subscribers needing the same (dz, action): removing one must
        not delete the contribution — this is the reachability bookkeeping
        behind the paper's 'delete or downgrade' rule."""
        ledger = FlowLedger()
        ledger.add("R1", Dz("10"), Action(2), key(sub=1))
        ledger.add("R1", Dz("10"), Action(2), key(sub=2))
        changed = ledger.remove_key(key(sub=1))
        assert changed == {}  # the pair is still held by sub=2
        assert ledger.contributions("R1")[Dz("10")] == {Action(2)}

    def test_remove_keys_where_sub(self):
        ledger = FlowLedger()
        ledger.add("R1", Dz("10"), Action(2), key(sub=1, bits="10"))
        ledger.add("R2", Dz("11"), Action(2), key(sub=1, bits="11"))
        ledger.add("R1", Dz("0"), Action(2), key(sub=2, bits="0"))
        affected = ledger.remove_keys_where(sub_id=1)
        assert set(affected) == {"R1", "R2"}
        assert len(ledger) == 1

    def test_remove_keys_where_tree(self):
        ledger = FlowLedger()
        ledger.add("R1", Dz("10"), Action(2), key(tree=1))
        ledger.add("R1", Dz("11"), Action(2), key(tree=2, bits="11"))
        ledger.remove_keys_where(tree_id=1)
        assert ledger.keys_for(tree_id=1) == []
        assert len(ledger.keys_for(tree_id=2)) == 1

    def test_remove_everything_guard(self):
        with pytest.raises(ControllerError):
            FlowLedger().remove_keys_where()

    def test_has_path_and_idempotence(self):
        ledger = FlowLedger()
        assert not ledger.has_path(key())
        ledger.add("R1", Dz("10"), Action(2), key())
        assert ledger.has_path(key())

    def test_remove_missing_key_is_noop(self):
        assert FlowLedger().remove_key(key()) == {}

    def test_switches(self):
        ledger = FlowLedger()
        ledger.add("R1", Dz("1"), Action(2), key())
        assert set(ledger.switches()) == {"R1"}
