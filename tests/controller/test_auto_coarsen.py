"""Tests for the TCAM occupancy guard with auto-coarsening (requirement 3)."""

import pytest

from repro.core.events import Event
from repro.core.subscription import Advertisement, Subscription
from repro.exceptions import ControllerError
from repro.middleware.pleroma import Pleroma
from repro.network.fabric import NetworkParams
from repro.network.topology import line
from repro.workloads.scenarios import paper_zipfian


def build(capacity=80, auto=True, threshold=0.6, subs=30, dims=2):
    workload = paper_zipfian(dimensions=dims, seed=111)
    middleware = Pleroma(
        line(4),
        space=workload.space,
        max_dz_length=16,
        max_cells=16,
        params=NetworkParams(switch_table_capacity=capacity),
        auto_coarsen=auto,
        occupancy_threshold=threshold,
    )
    hosts = middleware.topology.hosts()
    middleware.advertise(hosts[0], workload.advertisement_covering_all())
    for i, sub in enumerate(workload.subscriptions(subs)):
        middleware.subscribe(hosts[1 + i % 3], sub)
    return middleware, workload


class TestGuard:
    def test_coarsen_triggered_when_tables_fill(self):
        middleware, _ = build()
        controller = middleware.controllers[0]
        assert controller.coarsen_events, "guard never fired"
        for old, new in controller.coarsen_events:
            assert new < old
        assert (
            controller.indexer.max_dz_length
            == controller.coarsen_events[-1][1]
        )

    def test_occupancy_brought_below_capacity(self):
        middleware, _ = build()
        for switch in middleware.network.switches.values():
            assert len(switch.table) < switch.table.capacity

    def test_facade_indexer_follows(self):
        middleware, _ = build()
        assert (
            middleware.indexer.max_dz_length
            == middleware.controllers[0].indexer.max_dz_length
        )

    def test_no_coarsen_when_disabled(self):
        middleware, _ = build(auto=False)
        assert middleware.controllers[0].coarsen_events == []

    def test_no_coarsen_with_headroom(self):
        middleware, _ = build(capacity=100_000)
        assert middleware.controllers[0].coarsen_events == []

    def test_delivery_still_correct_after_coarsening(self):
        """Coarsening trades false positives, never false negatives."""
        middleware, workload = build()
        assert middleware.controllers[0].coarsen_events
        hosts = middleware.topology.hosts()
        controller = middleware.controllers[0]
        # pick any installed subscription and publish a matching event
        state = next(iter(controller.subscriptions.values()))
        sub = state.subscription
        pred = sub.filter.predicates["attr0"]
        event_values = {}
        for name, p in sub.filter.predicates.items():
            event_values[name] = (p.low + p.high) / 2.0
        client_host = state.endpoint.name
        client = middleware.subscriber(client_host)
        client._subscriptions[state.sub_id] = sub
        middleware.publish(hosts[0], Event.of(**event_values))
        middleware.run()
        assert len(client.matched) == 1

    def test_respects_min_dz_length(self):
        middleware, workload = build(capacity=60, threshold=0.5, subs=60)
        controller = middleware.controllers[0]
        assert controller.indexer.max_dz_length >= controller.min_dz_length

    def test_invalid_parameters(self):
        from repro.controller.controller import PleromaController
        from repro.core.spatial_index import SpatialIndexer
        from repro.core.events import EventSpace
        from repro.network.fabric import Network
        from repro.sim.engine import Simulator

        net = Network(Simulator(), line(2))
        indexer = SpatialIndexer(EventSpace.paper_schema(1))
        with pytest.raises(ControllerError):
            PleromaController(net, indexer, occupancy_threshold=0.0)
        with pytest.raises(ControllerError):
            PleromaController(net, indexer, min_dz_length=0)
