"""Unit tests for the literal incremental flowAddition (Alg. 1 cases 1-5)."""

from repro.controller.flow_installer import flow_addition
from repro.core.addressing import dz_to_address
from repro.core.dz import Dz
from repro.network.flow import Action, FlowEntry, FlowTable


class TestCases:
    def test_case1_empty_table(self):
        table = FlowTable()
        mods = flow_addition(table, Dz("10"), {Action(2)})
        assert mods == 1
        assert table.get_dz(Dz("10")).actions == {Action(2)}

    def test_case2_covered_no_action(self):
        """Fig. 4 R1: flow 1 -> {2} already covers new flow 10 -> {2}."""
        table = FlowTable()
        flow_addition(table, Dz("1"), {Action(2)})
        mods = flow_addition(table, Dz("10"), {Action(2)})
        assert mods == 0
        assert len(table) == 1

    def test_case3_existing_replaced(self):
        """Fig. 4 R3/R4: new flow 10 -> {2} replaces existing 100 -> {2}."""
        table = FlowTable()
        flow_addition(table, Dz("100"), {Action(2)})
        flow_addition(table, Dz("10"), {Action(2)})
        assert table.get_dz(Dz("100")) is None
        assert table.get_dz(Dz("10")).actions == {Action(2)}

    def test_case4_absorbs_coarser_ports(self):
        """A new finer flow must include the out ports of a partially
        covering coarser flow, at higher priority."""
        table = FlowTable()
        flow_addition(table, Dz("1"), {Action(2)})
        flow_addition(table, Dz("10"), {Action(3)})
        fine = table.get_dz(Dz("10"))
        assert fine.actions == {Action(2), Action(3)}
        assert fine.priority > table.get_dz(Dz("1")).priority

    def test_case5_existing_finer_updated(self):
        """Fig. 4 R5: existing flow 100 -> {2} absorbs port 3 of the new
        coarser flow 10 -> {3} and outranks it."""
        table = FlowTable()
        flow_addition(table, Dz("100"), {Action(2)})
        flow_addition(table, Dz("10"), {Action(3)})
        fine = table.get_dz(Dz("100"))
        coarse = table.get_dz(Dz("10"))
        assert fine.actions == {Action(2), Action(3)}
        assert coarse.actions == {Action(3)}
        assert fine.priority > coarse.priority

    def test_same_match_merges_actions(self):
        table = FlowTable()
        flow_addition(table, Dz("10"), {Action(2)})
        flow_addition(table, Dz("10"), {Action(3)})
        assert table.get_dz(Dz("10")).actions == {Action(2), Action(3)}
        assert len(table) == 1


class TestForwardingSemantics:
    def _actions_for(self, table: FlowTable, bits: str):
        entry = table.lookup(dz_to_address(Dz(bits)))
        return entry.actions if entry else frozenset()

    def test_fig3_priority_order(self):
        """Fig. 3 R3: events matching 100 go to both ports, events matching
        1 but not 100 go to one port."""
        table = FlowTable()
        flow_addition(table, Dz("1"), {Action(2)})
        flow_addition(table, Dz("100"), {Action(2), Action(3)})
        assert self._actions_for(table, "1001") == {Action(2), Action(3)}
        assert self._actions_for(table, "11") == {Action(2)}

    def test_terminal_rewrite_actions_are_distinct(self):
        table = FlowTable()
        flow_addition(table, Dz("10"), {Action(2, set_dest=7)})
        flow_addition(table, Dz("10"), {Action(2, set_dest=8)})
        assert self._actions_for(table, "10") == {
            Action(2, set_dest=7),
            Action(2, set_dest=8),
        }

    def test_becomes_redundant_after_absorption_removed(self):
        """Refinement over the literal listing: after case 4 enlarges the
        new flow, finer flows that it now fully covers are deleted."""
        table = FlowTable()
        flow_addition(table, Dz("1"), {Action(2)})
        flow_addition(table, Dz("100"), {Action(3)})  # carries {2,3}
        flow_addition(table, Dz("10"), {Action(3)})  # merges to {2,3}
        # 100's cumulative {2,3} equals 10's -> redundant
        assert table.get_dz(Dz("100")) is None
        assert self._actions_for(table, "100") == {Action(2), Action(3)}

    def test_case2_records_nothing_but_behaviour_preserved(self):
        table = FlowTable()
        flow_addition(table, Dz(""), {Action(1)})
        flow_addition(table, Dz("10110"), {Action(1)})
        assert self._actions_for(table, "10110") == {Action(1)}
        assert len(table) == 1
