"""Integration tests for multi-partition interoperability (Sec. 4)."""

import pytest

from repro.core.events import Event
from repro.core.subscription import Advertisement, Subscription
from repro.exceptions import FederationError
from repro.interop.federation import Federation
from repro.network.topology import line, ring
from tests.helpers import make_federated_system

FULL = (0, 1023)
MID = (512, 767)    # dz 10
LOW = (0, 255)      # dz 00
LOWER = (0, 127)    # dz 000


class TestConstruction:
    def test_partitions_must_cover_switches(self):
        system = make_federated_system(line(4), 2)
        # stealing a controller and re-federating with only one must fail
        c1 = system.controllers["c1"]
        with pytest.raises(FederationError):
            Federation(system.net, [c1])

    def test_duplicate_names_rejected(self):
        system = make_federated_system(line(4), 2)
        c1 = system.controllers["c1"]
        with pytest.raises(FederationError):
            Federation(system.net, [c1, c1])

    def test_controller_for_host(self):
        system = make_federated_system(line(4), 2)
        owner = system.federation.controller_for_host("h1")
        assert "R1" in owner.partition

    def test_borders_registered_as_virtual_endpoints(self):
        system = make_federated_system(line(4), 2)
        for name, controller in system.controllers.items():
            for border in system.federation.borders_of(name):
                ep = controller.endpoint_for_host(f"vh:{border.key}")
                assert ep.is_virtual


class TestCrossPartitionDelivery:
    def test_two_partitions(self):
        """Publisher in partition 1, subscriber in partition 2."""
        system = make_federated_system(line(4), 2)
        system.federation.advertise("h1", Advertisement.of(attr0=FULL))
        system.run()  # propagate the external advertisement
        system.federation.subscribe("h4", Subscription.of(attr0=MID))
        system.run()  # reverse-path subscription
        system.publish("h1", Event.of(attr0=600))
        system.run()
        assert len(system.delivered_events("h4")) == 1

    def test_three_partitions_fig5(self):
        """The Fig. 5 scenario: p1 in N1, s1 in N3 — the subscription is
        forwarded hop by hop along the advertisement's reverse path."""
        system = make_federated_system(line(6), 3)
        system.federation.advertise("h1", Advertisement.of(attr0=(0, 511)))
        system.run()
        system.federation.subscribe("h6", Subscription.of(attr0=LOW))
        system.run()
        system.publish("h1", Event.of(attr0=100))
        system.publish("h1", Event.of(attr0=400))  # outside {00}
        system.run()
        events = system.delivered_events("h6")
        assert [e.value("attr0") for e in events] == [100]

    def test_subscriber_before_advertisement(self):
        """A stored subscription must be served once the remote
        advertisement arrives."""
        system = make_federated_system(line(4), 2)
        system.federation.subscribe("h4", Subscription.of(attr0=MID))
        system.run()
        system.federation.advertise("h1", Advertisement.of(attr0=FULL))
        system.run()
        system.publish("h1", Event.of(attr0=600))
        system.run()
        assert len(system.delivered_events("h4")) == 1

    def test_local_delivery_unaffected(self):
        system = make_federated_system(line(4), 2)
        system.federation.advertise("h1", Advertisement.of(attr0=FULL))
        system.run()
        system.federation.subscribe("h2", Subscription.of(attr0=MID))
        system.run()
        system.publish("h1", Event.of(attr0=600))
        system.run()
        assert len(system.delivered_events("h2")) == 1

    def test_both_directions(self):
        system = make_federated_system(line(4), 2)
        system.federation.advertise("h1", Advertisement.of(attr0=LOW))
        system.federation.advertise("h4", Advertisement.of(attr0=MID))
        system.run()
        system.federation.subscribe("h1", Subscription.of(attr0=MID))
        system.federation.subscribe("h4", Subscription.of(attr0=LOW))
        system.run()
        system.publish("h1", Event.of(attr0=100))
        system.publish("h4", Event.of(attr0=600))
        system.run()
        assert len(system.delivered_events("h1")) == 1
        assert len(system.delivered_events("h4")) == 1

    def test_ring_no_duplicate_delivery(self):
        """On a cyclic partition graph an event must still arrive exactly
        once (request-id deduplication prevents looping paths)."""
        system = make_federated_system(ring(6), 3)
        system.federation.advertise("h1", Advertisement.of(attr0=FULL))
        system.run()
        system.federation.subscribe("h4", Subscription.of(attr0=FULL))
        system.run()
        system.publish("h1", Event.of(attr0=600))
        system.run()
        assert len(system.delivered_events("h4")) == 1


class TestCoveringBasedForwarding:
    def test_covered_subscription_not_forwarded(self):
        """Fig. 5: s2 = {000} arriving after s1 = {00} is not forwarded
        upstream because it is covered."""
        system = make_federated_system(line(6), 3)
        system.federation.advertise("h1", Advertisement.of(attr0=(0, 511)))
        system.run()
        system.federation.subscribe("h6", Subscription.of(attr0=LOW))
        system.run()
        c3 = system.federation.controller_for_host("h6")
        sent_before = system.federation.stats.messages_sent[c3.name]
        system.federation.subscribe("h6", Subscription.of(attr0=LOWER))
        system.run()
        sent_after = system.federation.stats.messages_sent[c3.name]
        assert sent_after == sent_before  # covered: nothing forwarded

    def test_covered_subscriber_still_receives_events(self):
        system = make_federated_system(line(6), 3)
        system.federation.advertise("h1", Advertisement.of(attr0=(0, 511)))
        system.run()
        system.federation.subscribe("h6", Subscription.of(attr0=LOW))
        system.federation.subscribe("h5", Subscription.of(attr0=LOWER))
        system.run()
        system.publish("h1", Event.of(attr0=50))
        system.run()
        assert len(system.delivered_events("h6")) == 1
        assert len(system.delivered_events("h5")) == 1

    def test_covered_advertisement_not_forwarded(self):
        system = make_federated_system(line(4), 2)
        system.federation.advertise("h1", Advertisement.of(attr0=(0, 511)))
        system.run()
        c1 = system.federation.controller_for_host("h1")
        sent_before = system.federation.stats.messages_sent[c1.name]
        system.federation.advertise("h2", Advertisement.of(attr0=LOW))
        system.run()
        assert (
            system.federation.stats.messages_sent[c1.name] == sent_before
        )

    def test_covering_disabled_forwards_everything(self):
        system = make_federated_system(
            line(6), 3, covering_enabled=False
        )
        system.federation.advertise("h1", Advertisement.of(attr0=(0, 511)))
        system.run()
        system.federation.subscribe("h6", Subscription.of(attr0=LOW))
        system.run()
        c3 = system.federation.controller_for_host("h6")
        sent_before = system.federation.stats.messages_sent[c3.name]
        system.federation.subscribe("h6", Subscription.of(attr0=LOWER))
        system.run()
        assert system.federation.stats.messages_sent[c3.name] > sent_before


class TestStats:
    def test_internal_vs_external_counting(self):
        system = make_federated_system(line(4), 2)
        system.federation.advertise("h1", Advertisement.of(attr0=FULL))
        system.run()
        stats = system.federation.stats
        c1 = system.federation.controller_for_host("h1").name
        c2 = system.federation.controller_for_host("h4").name
        assert stats.internal_requests[c1] == 1
        assert stats.external_requests[c2] == 1
        assert stats.messages_sent[c1] == 1

    def test_average_overhead(self):
        system = make_federated_system(line(4), 2)
        system.federation.advertise("h1", Advertisement.of(attr0=FULL))
        system.run()
        avg = system.federation.stats.average_overhead(
            system.controllers.keys()
        )
        assert avg == 1.0  # 2 requests over 2 controllers

    def test_total_control_traffic(self):
        system = make_federated_system(line(4), 2)
        system.federation.advertise("h1", Advertisement.of(attr0=FULL))
        system.run()
        assert system.federation.stats.total_control_traffic() == 2


class TestCoveringRelaxation:
    """Withdrawing a request must re-announce the requests it had covered —
    otherwise remote partitions silently lose events."""

    def test_readvertisement_after_unadvertise(self):
        system = make_federated_system(line(4), 2)
        a1 = system.federation.advertise("h1", Advertisement.of(attr0=(0, 511)))
        system.run()
        system.federation.unadvertise("h1", a1.adv_id)
        system.run()
        system.federation.advertise("h1", Advertisement.of(attr0=LOW))
        system.run()
        system.federation.subscribe("h4", Subscription.of(attr0=LOW))
        system.run()
        system.publish("h1", Event.of(attr0=100))
        system.run()
        assert len(system.delivered_events("h4")) == 1

    def test_covered_subscription_reannounced_when_cover_leaves(self):
        system = make_federated_system(line(4), 2)
        system.federation.advertise("h1", Advertisement.of(attr0=FULL))
        system.run()
        big = system.federation.subscribe("h4", Subscription.of(attr0=(0, 511)))
        system.run()
        system.federation.subscribe("h3", Subscription.of(attr0=LOW))
        system.run()
        system.federation.unsubscribe("h4", big.sub_id)
        system.run()
        system.publish("h1", Event.of(attr0=100))
        system.run()
        assert len(system.delivered_events("h3")) == 1
        assert system.delivered_events("h4") == []

    def test_covered_advertisement_reannounced_when_cover_leaves(self):
        system = make_federated_system(line(4), 2)
        a_big = system.federation.advertise(
            "h1", Advertisement.of(attr0=(0, 511))
        )
        system.run()
        system.federation.advertise("h2", Advertisement.of(attr0=LOW))
        system.run()  # covered: not forwarded to partition 2
        system.federation.unadvertise("h1", a_big.adv_id)
        system.run()  # h2's advertisement must now be announced
        system.federation.subscribe("h4", Subscription.of(attr0=LOW))
        system.run()
        system.publish("h2", Event.of(attr0=50))
        system.run()
        assert len(system.delivered_events("h4")) == 1

    def test_relaxation_on_transit_partition(self):
        """Three partitions: the middle one must also re-announce."""
        system = make_federated_system(line(6), 3)
        a_big = system.federation.advertise(
            "h1", Advertisement.of(attr0=(0, 511))
        )
        system.run()
        system.federation.advertise("h2", Advertisement.of(attr0=LOWER))
        system.run()
        system.federation.unadvertise("h1", a_big.adv_id)
        system.run()
        system.federation.subscribe("h6", Subscription.of(attr0=LOWER))
        system.run()
        system.publish("h2", Event.of(attr0=50))
        system.run()
        assert len(system.delivered_events("h6")) == 1


class TestCrossPartitionUnsubscribe:
    def test_unsubscribe_removes_remote_paths(self):
        system = make_federated_system(line(4), 2)
        system.federation.advertise("h1", Advertisement.of(attr0=FULL))
        system.run()
        sub = system.federation.subscribe("h4", Subscription.of(attr0=MID))
        system.run()
        system.federation.unsubscribe("h4", sub.sub_id)
        system.run()
        system.publish("h1", Event.of(attr0=600))
        system.run()
        assert system.delivered_events("h4") == []
        # remote controller dropped its virtual subscription
        c1 = system.federation.controller_for_host("h1")
        assert all(
            not s.endpoint.is_virtual for s in c1.subscriptions.values()
        )

    def test_unadvertise_removes_remote_trees(self):
        system = make_federated_system(line(4), 2)
        adv = system.federation.advertise("h1", Advertisement.of(attr0=FULL))
        system.run()
        c2 = system.federation.controller_for_host("h4")
        assert len(c2.trees) == 1
        system.federation.unadvertise("h1", adv.adv_id)
        system.run()
        assert len(c2.trees) == 0

    def test_invariants_hold_after_churn(self):
        system = make_federated_system(ring(6), 3)
        adv = system.federation.advertise("h1", Advertisement.of(attr0=FULL))
        system.run()
        subs = [
            system.federation.subscribe(h, Subscription.of(attr0=MID))
            for h in ("h2", "h4", "h6")
        ]
        system.run()
        system.federation.unsubscribe("h4", subs[1].sub_id)
        system.run()
        system.federation.check_invariants()
        system.publish("h1", Event.of(attr0=600))
        system.run()
        assert len(system.delivered_events("h2")) == 1
        assert len(system.delivered_events("h6")) == 1
        assert system.delivered_events("h4") == []
