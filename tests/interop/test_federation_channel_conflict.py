"""Federation and the OpenFlow channel cannot share switch handlers."""

import pytest

from repro.controller.controller import PleromaController
from repro.core.events import EventSpace
from repro.core.spatial_index import SpatialIndexer
from repro.exceptions import FederationError
from repro.interop.federation import Federation
from repro.network.control_channel import ControlChannel
from repro.network.fabric import Network
from repro.network.topology import partition_switches, ring
from repro.sim.engine import Simulator


def test_channel_controller_rejected_by_federation():
    sim = Simulator()
    topo = ring(6)
    net = Network(sim, topo)
    indexer = SpatialIndexer(EventSpace.paper_schema(1))
    chunks = partition_switches(topo, 2)
    with_channel = PleromaController(
        net,
        indexer,
        partition=chunks[0],
        name="c1",
        control_channel=ControlChannel(sim),
    )
    plain = PleromaController(net, indexer, partition=chunks[1], name="c2")
    with pytest.raises(FederationError):
        Federation(net, [with_channel, plain])
