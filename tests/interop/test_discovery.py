"""Unit tests for LLDP border discovery."""

import pytest

from repro.exceptions import FederationError
from repro.interop.discovery import BorderPort, discover_borders
from repro.network.fabric import Network
from repro.network.topology import line, ring
from repro.sim.engine import Simulator


def build(topology):
    return Network(Simulator(), topology)


class TestDiscovery:
    def test_line_split_in_two(self):
        topo = line(4, hosts_per_switch=0)
        net = build(topo)
        owner = {"R1": "c1", "R2": "c1", "R3": "c2", "R4": "c2"}
        borders = discover_borders(net, owner)
        assert borders["c1"] == [BorderPort("R2", net.port("R2", "R3"))]
        assert borders["c2"] == [BorderPort("R3", net.port("R3", "R2"))]

    def test_interior_partition_has_two_borders(self):
        topo = line(6, hosts_per_switch=0)
        net = build(topo)
        owner = {f"R{i}": "c1" for i in (1, 2)}
        owner |= {f"R{i}": "c2" for i in (3, 4)}
        owner |= {f"R{i}": "c3" for i in (5, 6)}
        borders = discover_borders(net, owner)
        assert len(borders["c1"]) == 1
        assert len(borders["c2"]) == 2
        assert len(borders["c3"]) == 1

    def test_ring_partitions_have_two_borders_each(self):
        topo = ring(6, hosts_per_switch=0)
        net = build(topo)
        owner = {}
        for i in range(1, 7):
            owner[f"R{i}"] = f"c{(i - 1) // 2 + 1}"
        borders = discover_borders(net, owner)
        for name in ("c1", "c2", "c3"):
            assert len(borders[name]) == 2

    def test_single_partition_no_borders(self):
        topo = line(3, hosts_per_switch=0)
        net = build(topo)
        borders = discover_borders(net, {f"R{i}": "c1" for i in (1, 2, 3)})
        assert borders["c1"] == []

    def test_host_links_ignored(self):
        topo = line(2, hosts_per_switch=2)
        net = build(topo)
        borders = discover_borders(net, {"R1": "c1", "R2": "c2"})
        assert all(
            not bp.switch.startswith("h")
            for bps in borders.values()
            for bp in bps
        )

    def test_unowned_switch_rejected(self):
        topo = line(2, hosts_per_switch=0)
        net = build(topo)
        with pytest.raises(FederationError):
            discover_borders(net, {"R1": "c1"})
