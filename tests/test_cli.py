"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestInfo:
    def test_default_topology(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "paper-fat-tree" in out
        assert "switches:      10" in out
        assert "hosts:         8" in out

    def test_ring(self, capsys):
        assert main(["info", "--topology", "ring"]) == 0
        out = capsys.readouterr().out
        assert "switches:      20" in out


class TestDemo:
    def test_demo_runs_and_reports(self, capsys):
        assert main(["demo", "--events", "30", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "events published:   30" in out
        assert "mean delay" in out
        assert "flow entries" in out

    def test_demo_deterministic(self, capsys):
        main(["demo", "--events", "20", "--seed", "5"])
        first = capsys.readouterr().out
        main(["demo", "--events", "20", "--seed", "5"])
        second = capsys.readouterr().out
        assert first == second


class TestSoak:
    def test_soak_passes(self, capsys):
        assert main(["soak", "--steps", "40", "--seed", "2",
                     "--topology", "line"]) == 0
        assert "soak OK" in capsys.readouterr().out


class TestRender:
    def test_render_draws_grid_and_trie(self, capsys):
        assert main(
            ["render", "--a", "500", "750", "--width", "16", "--height", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "#" in out
        assert "<root>" in out
        assert "dz cells" in out


class TestReport:
    def test_demo_snapshot_then_report(self, tmp_path, capsys):
        snapshot = tmp_path / "snap.json"
        assert main(
            ["demo", "--events", "15", "--snapshot-out", str(snapshot)]
        ) == 0
        capsys.readouterr()
        assert snapshot.exists()
        assert main(["report", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "run summary" in out
        assert "events.published" in out
        assert "request:advertise" in out

    def test_report_csv(self, tmp_path, capsys):
        snapshot = tmp_path / "snap.json"
        main(["demo", "--events", "5", "--snapshot-out", str(snapshot)])
        capsys.readouterr()
        assert main(["report", str(snapshot), "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("kind,name,value")
        assert "counter,events.published,5" in out

    def test_snapshot_bytes_stable_across_runs(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        main(["demo", "--events", "10", "--snapshot-out", str(a)])
        main(["demo", "--events", "10", "--snapshot-out", str(b)])
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()


class TestFpr:
    def test_fpr_point(self, capsys):
        code = main(
            [
                "fpr",
                "--model",
                "zipfian",
                "--subscriptions",
                "50",
                "--dz-length",
                "10",
                "--events",
                "200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FPR =" in out

    def test_fpr_improves_with_length(self, capsys):
        def rate(length):
            main(
                [
                    "fpr",
                    "--model",
                    "uniform",
                    "--subscriptions",
                    "40",
                    "--dz-length",
                    str(length),
                    "--events",
                    "300",
                ]
            )
            out = capsys.readouterr().out
            return float(out.split("FPR = ")[1].split("%")[0])

        assert rate(18) <= rate(4)


class TestCheck:
    def test_check_single_scenario_clean(self, capsys):
        code = main(
            ["check", "--topology", "line", "--install-mode", "reconcile",
             "--steps", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "line [reconcile, partitions=1]: OK" in out
        assert "check OK" in out

    def test_check_both_modes(self, capsys):
        code = main(["check", "--topology", "line", "--steps", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[reconcile" in out
        assert "[incremental" in out

    def test_check_json_document(self, capsys):
        import json

        code = main(
            ["check", "--topology", "line", "--install-mode", "reconcile",
             "--steps", "4", "--json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        scenario = document["scenarios"][0]
        assert scenario["topology"] == "line"
        assert scenario["verifier_runs"] == 4
        assert scenario["reports"] == []

    def test_check_exits_nonzero_on_violations(self, capsys, monkeypatch):
        import repro.analysis.verify as verify_module
        from repro.analysis.invariants import Violation

        real = verify_module.verify_controller

        def corrupted(controller, **kwargs):
            report = real(controller, **kwargs)
            violation = Violation(
                kind="drift",
                controller=controller.name,
                subject="R1",
                message="synthetic violation for the exit-code test",
            )
            return type(report)(
                controller=report.controller,
                violations=report.violations + (violation,),
                checks_run=report.checks_run,
            )

        monkeypatch.setattr(verify_module, "verify_controller", corrupted)
        code = main(
            ["check", "--topology", "line", "--install-mode", "reconcile",
             "--steps", "2"]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.out + captured.err
        assert "synthetic violation" in captured.out

    def test_check_self_test_detects_every_fault(self, capsys):
        code = main(["check", "--self-test"])
        assert code == 0
        out = capsys.readouterr().out
        assert "self-test OK" in out
        for fault in (
            "dropped_flow_mod",
            "flipped_port",
            "duplicated_tree_dz",
            "stale_entry_after_unsubscribe",
        ):
            assert f"{fault}: detected" in out

    def test_check_self_test_json(self, capsys):
        import json

        code = main(["check", "--self-test", "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert len(document["faults"]) == 4
        assert all(f["detected"] for f in document["faults"])

    def test_check_deterministic_output(self, capsys):
        args = ["check", "--topology", "line", "--install-mode",
                "reconcile", "--steps", "6", "--seed", "9"]
        main(args)
        first = capsys.readouterr().out
        main(args)
        second = capsys.readouterr().out
        assert first == second


class TestTrace:
    def test_trace_renders_all_sections(self, capsys):
        assert main(["trace", "--events", "20", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "trace: 20 events" in out
        assert "deliveries:" in out
        assert "delay attribution" in out
        assert "table-miss" in out
        assert "per-link hotness" in out
        assert "path stretch" in out

    def test_trace_fail_link_adds_link_down(self, capsys):
        assert main(
            ["trace", "--events", "30", "--seed", "3", "--fail-link"]
        ) == 0
        assert "link-down" in capsys.readouterr().out

    def test_trace_exports_valid_json(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "trace.json"
        chrome_file = tmp_path / "chrome.json"
        assert main(
            ["trace", "--events", "10", "--out", str(out_file),
             "--chrome-out", str(chrome_file)]
        ) == 0
        capsys.readouterr()
        document = json.loads(out_file.read_text())
        assert document["workload"]["events"] == 10
        assert document["report"]["summary"]["deliveries"] >= 1
        assert document["records"]
        chrome = json.loads(chrome_file.read_text())
        assert chrome["traceEvents"]

    def test_trace_sampling_reduces_records(self, capsys):
        main(["trace", "--events", "40", "--sample-every", "1000000"])
        out = capsys.readouterr().out
        assert " 0 hop records" in out

    def test_trace_deterministic_output(self, capsys):
        """Within one process packet ids keep counting up between runs, so
        compare everything but the raw ids (the cross-process byte-identity
        check lives in tests/properties/test_determinism.py)."""
        import re

        args = ["trace", "--events", "25", "--seed", "7", "--limit", "2"]
        main(args)
        first = capsys.readouterr().out
        main(args)
        second = capsys.readouterr().out
        mask = lambda s: re.sub(r"packet \d+", "packet N", s)  # noqa: E731
        assert mask(first) == mask(second)


class TestChaos:
    def test_chaos_text_summary(self, capsys):
        assert main(["chaos", "--topology", "line", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "chaos: line, seed 1" in out
        assert "link-cut" in out
        assert "link-flap" in out
        assert "switch-crash" in out
        assert "partition" in out
        assert "verifier ok" in out
        assert "0 client(s) still suspended" in out

    def test_chaos_fat_tree_alias(self, capsys):
        """The chaos-local "fat-tree" alias resolves to the paper testbed
        without appearing in the shared topology registry."""
        from repro.cli import _CHAOS_TOPOLOGIES, _TOPOLOGIES

        assert "fat-tree" in _CHAOS_TOPOLOGIES
        assert "fat-tree" not in _TOPOLOGIES
        assert main(["chaos", "--topology", "fat-tree", "--seed", "1"]) == 0
        assert "chaos: fat-tree" in capsys.readouterr().out

    def test_chaos_json_is_deterministic(self, capsys):
        args = ["chaos", "--topology", "line", "--seed", "2", "--json"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second
        import json

        document = json.loads(first)
        assert document["final"]["verifier_ok"] is True
        assert len(document["episodes"]) == 4
        for episode in document["episodes"]:
            assert episode["detection"]["latency_s"] is not None

    def test_chaos_out_writes_report(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "slo.json"
        assert main(
            ["chaos", "--topology", "ring", "--seed", "0",
             "--out", str(out_file)]
        ) == 0
        capsys.readouterr()
        document = json.loads(out_file.read_text())
        assert document["schedule"]["seed"] == 0
        assert document["final"]["verifier_ok"] is True


class TestStats:
    def test_stats_text_summary(self, capsys):
        assert main(
            ["stats", "--topology", "line", "--events", "60", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "stats: line, 60 events, seed 1" in out
        assert "poll rounds:" in out
        assert "control plane:" in out
        assert "heavy hitters" in out
        assert "per-switch polling:" in out
        assert "reconciliation vs oracle: max per-rule error 0 packet(s)" \
            in out

    def test_stats_json_is_deterministic(self, capsys):
        import json

        args = ["stats", "--topology", "ring", "--events", "40",
                "--seed", "2", "--json"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second
        document = json.loads(first)
        assert document["reconciliation"]["max_rule_error_packets"] == 0
        assert document["telemetry"]["rounds_completed"] >= 1
        assert document["control_plane"]["bytes_to_controller"] > 0
        assert document["telemetry"]["heavy_hitters"], "skew found hitters"

    def test_stats_out_and_prom_files(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "stats.json"
        prom_file = tmp_path / "metrics.prom"
        assert main(
            ["stats", "--topology", "line", "--events", "30",
             "--out", str(out_file), "--prom", str(prom_file)]
        ) == 0
        capsys.readouterr()
        document = json.loads(out_file.read_text())
        assert document["workload"]["topology"] == "line"
        prom = prom_file.read_text()
        assert "telemetry_poll_rounds_total" in prom
        assert prom.endswith("# EOF\n")

    def test_stats_snapshot_matches_committed_artifact(self, capsys):
        """The committed BENCH_PR5 snapshot is exactly what the CLI
        produces for its recorded workload — regression-pins the whole
        telemetry pipeline end to end."""
        import json
        import pathlib

        snapshot = pathlib.Path(
            __file__
        ).parent.parent / "benchmarks" / "_snapshots" / "BENCH_PR5.json"
        recorded = json.loads(snapshot.read_text())
        workload = recorded["workload"]
        assert main(
            ["stats", "--topology", workload["topology"],
             "--events", str(workload["events"]),
             "--seed", str(workload["seed"]), "--json"]
        ) == 0
        produced = json.loads(capsys.readouterr().out)
        assert produced == recorded
