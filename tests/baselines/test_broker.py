"""Unit tests for the broker-tree and flooding baselines."""

import pytest

from repro.baselines.broker import FloodingOverlay, SingleTreeBrokerOverlay
from repro.core.events import Event
from repro.core.subscription import Subscription
from repro.exceptions import TopologyError
from repro.network.topology import line, paper_fat_tree
from repro.sim.engine import Simulator


def overlay(topology=None, cls=SingleTreeBrokerOverlay, **kwargs):
    return cls(Simulator(), topology or line(4), **kwargs)


class TestSingleTreeBroker:
    def test_delivery_to_matching_subscriber(self):
        b = overlay()
        b.subscribe("h4", Subscription.of(attr0=(0, 500)))
        b.publish("h1", Event.of(attr0=100))
        assert len(b.deliveries) == 1
        assert b.deliveries[0].host == "h4"
        assert b.deliveries[0].delay > 0

    def test_no_delivery_when_not_matching(self):
        b = overlay()
        b.subscribe("h4", Subscription.of(attr0=(0, 500)))
        b.publish("h1", Event.of(attr0=900))
        assert b.deliveries == []

    def test_no_self_delivery(self):
        b = overlay()
        b.subscribe("h1", Subscription.of(attr0=(0, 1023)))
        b.publish("h1", Event.of(attr0=5))
        assert b.deliveries == []

    def test_zero_false_positives(self):
        """Brokers match full predicates in software: perfect filtering."""
        b = overlay()
        sub = Subscription.of(attr0=(0, 100))
        b.subscribe("h4", sub)
        for value in (50, 150, 99, 101):
            b.publish("h1", Event.of(attr0=value))
        assert all(sub.matches(d.event) for d in b.deliveries)
        assert len(b.deliveries) == 2

    def test_delay_grows_with_filter_count(self):
        few = overlay()
        few.subscribe("h4", Subscription.of(attr0=(0, 1023)))
        few.publish("h1", Event.of(attr0=5))

        many = overlay()
        many.subscribe("h4", Subscription.of(attr0=(0, 1023)))
        for i in range(5000):
            many.subscribe("h3", Subscription.of(attr0=(1000, 1001)))
        many.publish("h1", Event.of(attr0=5))
        assert many.deliveries[0].delay > few.deliveries[0].delay

    def test_link_counting_restricted_to_needed_subtrees(self):
        b = overlay(line(4))
        b.subscribe("h2", Subscription.of(attr0=(0, 1023)))
        b.publish("h1", Event.of(attr0=5))
        # the event travels R1->R2 only; R2->R3 and R3->R4 stay idle
        assert b.link_packets.get(frozenset(("R1", "R2"))) == 1
        assert frozenset(("R2", "R3")) not in b.link_packets

    def test_unsubscribe(self):
        b = overlay()
        sub_id = b.subscribe("h4", Subscription.of(attr0=(0, 1023)))
        b.unsubscribe(sub_id)
        b.publish("h1", Event.of(attr0=5))
        assert b.deliveries == []

    def test_unknown_host_rejected(self):
        b = overlay()
        with pytest.raises(TopologyError):
            b.subscribe("h99", Subscription.of(attr0=(0, 1)))
        with pytest.raises(TopologyError):
            b.publish("h99", Event.of(attr0=1))

    def test_unknown_root_rejected(self):
        with pytest.raises(TopologyError):
            overlay(root="R99")

    def test_mean_delay_requires_deliveries(self):
        with pytest.raises(ValueError):
            overlay().mean_delay()

    def test_load_concentrates_on_tree_core(self):
        """The single tree funnels cross-pod traffic through its root —
        the imbalance PLEROMA's multi-tree design avoids (Sec. 3.1)."""
        b = overlay(paper_fat_tree())
        for host in ("h3", "h5", "h7"):
            b.subscribe(host, Subscription.of(attr0=(0, 1023)))
        for _ in range(10):
            b.publish("h1", Event.of(attr0=5))
        loads = b.link_load_distribution()
        assert loads[0] >= 10  # hottest edge carried every event


class TestFlooding:
    def test_everyone_receives(self):
        b = overlay(cls=FloodingOverlay)
        b.publish("h1", Event.of(attr0=5))
        assert b.hosts_reached() == {"h2", "h3", "h4"}

    def test_flooding_ignores_subscriptions(self):
        b = overlay(cls=FloodingOverlay)
        b.subscribe("h4", Subscription.of(attr0=(900, 901)))
        b.publish("h1", Event.of(attr0=5))
        assert "h2" in b.hosts_reached()

    def test_flooding_uses_more_bandwidth_than_filtering(self):
        filtered = overlay()
        filtered.subscribe("h2", Subscription.of(attr0=(0, 100)))
        flooding = overlay(cls=FloodingOverlay)
        flooding.subscribe("h2", Subscription.of(attr0=(0, 100)))
        for value in (50, 500, 900):
            filtered.publish("h1", Event.of(attr0=value))
            flooding.publish("h1", Event.of(attr0=value))
        assert (
            flooding.total_link_packets() > filtered.total_link_packets()
        )
