"""Unit tests for seeded randomness helpers and the zipf sampler."""

import pytest

from repro.exceptions import WorkloadError
from repro.sim.rng import ZipfSampler, make_numpy_rng, make_rng


class TestFactories:
    def test_same_seed_same_stream(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_different_seed_different_stream(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_numpy_rng_seeded(self):
        a = make_numpy_rng(3).integers(0, 1000, 10)
        b = make_numpy_rng(3).integers(0, 1000, 10)
        assert list(a) == list(b)


class TestZipfSampler:
    def test_probabilities_sum_to_one(self):
        z = ZipfSampler(7, exponent=1.0)
        assert sum(z.probabilities()) == pytest.approx(1.0)

    def test_rank_zero_is_most_likely(self):
        z = ZipfSampler(7, exponent=1.0)
        probs = list(z.probabilities())
        assert probs == sorted(probs, reverse=True)

    def test_zipf_ratio(self):
        # P(rank 0) / P(rank 1) = 2^s for exponent s=1
        z = ZipfSampler(5, exponent=1.0)
        probs = list(z.probabilities())
        assert probs[0] / probs[1] == pytest.approx(2.0)

    def test_samples_within_support(self):
        z = ZipfSampler(7, rng=make_rng(0))
        assert all(0 <= r < 7 for r in z.sample_many(500))

    def test_empirical_skew(self):
        z = ZipfSampler(7, exponent=1.0, rng=make_rng(42))
        samples = z.sample_many(5000)
        counts = [samples.count(r) for r in range(7)]
        assert counts[0] > counts[3] > counts[6]

    def test_deterministic_given_seed(self):
        a = ZipfSampler(7, rng=make_rng(9)).sample_many(50)
        b = ZipfSampler(7, rng=make_rng(9)).sample_many(50)
        assert a == b

    def test_single_rank(self):
        z = ZipfSampler(1)
        assert z.sample() == 0

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(0)
        with pytest.raises(WorkloadError):
            ZipfSampler(5, exponent=0)
