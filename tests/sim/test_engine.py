"""Unit tests for the discrete-event engine."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_executes_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_tie_breaking(self):
        sim = Simulator()
        order = []
        for tag in ("first", "second", "third"):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [2.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending_events == 1


class TestRunControls:
    def test_run_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(10.0, fired.append, "late")
        sim.run(until=5.0)
        assert fired == ["early"]
        assert sim.now == 5.0
        sim.run()
        assert fired == ["early", "late"]

    def test_run_until_with_empty_queue_advances_clock(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(1.0, rearm)

        sim.schedule(1.0, rearm)
        sim.run(max_events=50)
        assert sim.processed_events == 50

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_processed_events_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.processed_events == 5
