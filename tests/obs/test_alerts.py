"""The declarative alert engine: thresholds, hysteresis, debouncing."""

import pytest

from repro.obs.alerts import DEFAULT_ALERT_RULES, AlertEngine, AlertRule
from repro.obs.registry import MetricsRegistry


def make_engine(*rules: AlertRule):
    registry = MetricsRegistry()
    return AlertEngine(registry=registry, rules=tuple(rules)), registry


RULE = AlertRule(
    name="occupancy", metric="occ", threshold=0.9, clear_threshold=0.75
)


class TestAlertRule:
    def test_comparison_validation(self):
        with pytest.raises(ValueError):
            AlertRule(name="x", metric="m", threshold=1.0, comparison=">=")

    def test_for_windows_validation(self):
        with pytest.raises(ValueError):
            AlertRule(name="x", metric="m", threshold=1.0, for_windows=0)

    def test_clear_threshold_must_be_on_safe_side(self):
        with pytest.raises(ValueError):
            AlertRule(
                name="x", metric="m", threshold=0.5, clear_threshold=0.6
            )
        AlertRule(
            name="x", metric="m", threshold=0.5, comparison="<",
            clear_threshold=0.6,
        )

    def test_below_comparison(self):
        rule = AlertRule(
            name="low", metric="m", threshold=10.0, comparison="<"
        )
        assert rule.breaches(5.0)
        assert not rule.breaches(15.0)
        assert rule.clears(15.0)


class TestEngine:
    def test_fire_and_clear_with_hysteresis(self):
        engine, registry = make_engine(RULE)
        gauge = registry.gauge("occ", switch="R1")
        gauge.set(0.95)
        fired = engine.evaluate(now=1.0)
        assert len(fired) == 1
        assert fired[0].series == "occ{switch=R1}"
        # inside the hysteresis band the alert stays active
        gauge.set(0.8)
        assert engine.evaluate(now=2.0) == []
        assert len(engine.active_alerts()) == 1
        # only crossing the clear threshold clears it
        gauge.set(0.5)
        engine.evaluate(now=3.0)
        assert engine.active_alerts() == []
        (alert,) = engine.history
        assert alert.fired_at == 1.0
        assert alert.cleared_at == 3.0
        assert not alert.active

    def test_no_refire_while_active(self):
        engine, registry = make_engine(RULE)
        registry.gauge("occ", switch="R1").set(0.95)
        engine.evaluate(now=1.0)
        engine.evaluate(now=2.0)
        assert len(engine.history) == 1

    def test_for_windows_debounces_single_spike(self):
        rule = AlertRule(
            name="spike", metric="m", threshold=1.0, for_windows=3
        )
        engine, registry = make_engine(rule)
        gauge = registry.gauge("m", host="h1")
        gauge.set(2.0)
        assert engine.evaluate(now=1.0) == []
        assert engine.evaluate(now=2.0) == []
        fired = engine.evaluate(now=3.0)  # third consecutive breach
        assert len(fired) == 1
        # a dip below the threshold resets the streak
        engine2, registry2 = make_engine(rule)
        gauge2 = registry2.gauge("m", host="h1")
        for value in (2.0, 2.0, 0.0, 2.0, 2.0):
            gauge2.set(value)
            assert engine2.evaluate(now=1.0) == []

    def test_each_series_tracked_independently(self):
        engine, registry = make_engine(RULE)
        registry.gauge("occ", switch="R1").set(0.95)
        registry.gauge("occ", switch="R2").set(0.1)
        fired = engine.evaluate(now=1.0)
        assert [a.series for a in fired] == ["occ{switch=R1}"]

    def test_registry_counters_and_active_gauge(self):
        engine, registry = make_engine(RULE)
        gauge = registry.gauge("occ", switch="R1")
        gauge.set(0.95)
        engine.evaluate(now=1.0)
        snap = registry.snapshot()
        assert snap["counters"]["alerts.fired{rule=occupancy}"] == 1
        assert snap["gauges"]["alerts.active"] == 1.0
        gauge.set(0.1)
        engine.evaluate(now=2.0)
        snap = registry.snapshot()
        assert snap["counters"]["alerts.cleared{rule=occupancy}"] == 1
        assert snap["gauges"]["alerts.active"] == 0.0

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ValueError):
            make_engine(RULE, RULE)

    def test_summary_is_json_compatible_and_sorted(self):
        import json

        engine, registry = make_engine(RULE)
        registry.gauge("occ", switch="R1").set(0.95)
        engine.evaluate(now=1.0)
        summary = engine.summary()
        assert json.dumps(summary, sort_keys=True)
        assert summary["evaluations"] == 1
        assert summary["active"][0]["rule"] == "occupancy"

    def test_default_rules_cover_tcam_and_loss(self):
        metrics = {rule.metric for rule in DEFAULT_ALERT_RULES}
        assert metrics == {
            "telemetry.tcam_occupancy",
            "telemetry.port_loss_pps",
        }
