"""Blackout forensics: the flight recorder explains every lost packet.

Satellite contract: for a chaos-injected link cut, (a) every packet lost
during the blackout window is attributed to ``link-down`` by the drop
forensics, and (b) the blackout window measured purely from delivery gaps
(:func:`repro.obs.paths.blackout_windows`) matches the injected failure
interval to within one probe period (plus the publish spacing that
quantises where deliveries can land).
"""

from repro.core.events import Event
from repro.core.subscription import Filter
from repro.middleware.pleroma import Pleroma
from repro.network.topology import line
from repro.obs.paths import blackout_windows

CUT_AT = 0.010
HEAL_AT = 0.030
HORIZON = 0.060


def run_cut_episode():
    middleware = Pleroma(line(4), dimensions=2, max_dz_length=10)
    middleware.enable_flight_recorder()
    detector, orchestrator = middleware.enable_resilience()
    middleware.publisher("h1").advertise(Filter.of())
    for host in ("h2", "h3", "h4"):
        middleware.subscriber(host).subscribe(Filter.of())
    interval = detector.period_s / 2.0
    count = int(HORIZON / interval) - 2
    middleware.publish_stream(
        "h1",
        (Event.of(attr0=1.0, attr1=1.0) for _ in range(count)),
        rate_eps=1.0 / interval,
        start_at=0.0,
    )
    link = middleware.network.link_between("R2", "R3")
    middleware.sim.schedule_at(CUT_AT, link.fail)
    middleware.sim.schedule_at(HEAL_AT, link.restore)
    middleware.run(until=HORIZON)
    detector.stop()
    middleware.run()
    return middleware, detector, orchestrator, middleware.flight_report(), interval


class TestDropAttribution:
    def test_every_blackout_loss_is_attributed_to_link_down(self):
        """Between the cut and the first repair pass, packets die on the
        dead link — the forensics must attribute every one of them."""
        _, _, orchestrator, report, _ = run_cut_episode()
        first_repair = orchestrator.records[0].time
        assert CUT_AT < first_repair < HEAL_AT
        window_drops = [
            d for d in report.drops if CUT_AT <= d["t"] < first_repair
        ]
        assert window_drops, "the cut must actually lose packets"
        assert all(d["reason"] == "link-down" for d in window_drops)
        # and nothing in the drop log predates the injection
        assert all(d["t"] >= CUT_AT for d in report.drops)


class TestMeasuredBlackoutWindow:
    def test_gap_matches_injected_interval_within_one_probe_period(self):
        """The subscriber behind the cut sees one delivery gap bracketing
        [cut, heal]; its width exceeds the injected interval only by
        detection slack (at most one probe period) plus publish spacing."""
        _, detector, _, report, interval = run_cut_episode()
        gaps = blackout_windows(report, window=(CUT_AT, HORIZON))
        assert "h4" in gaps  # the host on the far side of the cut
        gap = gaps["h4"]
        injected = HEAL_AT - CUT_AT
        # starts at the last delivery before the cut
        assert CUT_AT - 2 * interval <= gap["start"] <= CUT_AT
        # ends at the first delivery after heal was detected and repaired
        assert gap["end"] >= HEAL_AT
        slack = detector.period_s + 3 * interval
        assert gap["end"] <= HEAL_AT + slack
        assert injected <= gap["gap_s"] <= injected + slack + 2 * interval

    def test_primary_side_subscriber_sees_no_comparable_gap(self):
        """h2 never loses connectivity to the publisher: its worst gap
        stays at the publish cadence, far below the injected outage."""
        _, _, _, report, interval = run_cut_episode()
        gaps = blackout_windows(report, window=(CUT_AT, HORIZON))
        if "h2" in gaps:
            assert gaps["h2"]["gap_s"] <= 4 * interval
