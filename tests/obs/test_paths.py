"""Tests for path analytics over flight records (`repro.obs.paths`)."""

import json

from repro.core.addressing import dz_to_address
from repro.core.dz import Dz
from repro.network.fabric import Network, NetworkParams
from repro.network.flow import Action, FlowEntry
from repro.network.packet import Packet
from repro.network.topology import line, star
from repro.obs.flight import DROP_REASONS, FlightRecorder
from repro.obs.paths import (
    analyze_flight,
    chrome_trace,
    render_link_hotness,
    render_timeline,
)
from repro.obs.registry import MetricsRegistry
from repro.sim.engine import Simulator


def _rig(topology=None, params=None):
    sim = Simulator()
    net = Network(sim, topology or line(2, hosts_per_switch=1),
                  params=params)
    recorder = FlightRecorder(clock=lambda: sim.now)
    net.attach_flight_recorder(recorder)
    return sim, net, recorder


def _install_line_path(net, dz):
    h2 = net.hosts["h2"]
    net.switches["R1"].table.install(
        FlowEntry.for_dz(dz, {Action(net.port("R1", "R2"))})
    )
    net.switches["R2"].table.install(
        FlowEntry.for_dz(
            dz, {Action(net.port("R2", "h2"), set_dest=h2.address)}
        )
    )


def _publish(net, host, dz):
    net.hosts[host].send(Packet(dst_address=dz_to_address(dz), payload=None))


class TestDeliveryReconstruction:
    def test_path_and_delay_breakdown(self):
        sim, net, recorder = _rig()
        dz = Dz("1")
        _install_line_path(net, dz)
        _publish(net, "h1", dz)
        sim.run()

        report = analyze_flight(recorder, topology=net.topology)
        assert len(report.deliveries) == 1
        d = report.deliveries[0]
        assert d.complete
        assert d.publisher == "h1"
        assert d.host == "h2"
        assert d.path == ["h1", "R1", "R2", "h2"]
        assert d.hops == 3
        assert d.delay_s is not None and d.delay_s > 0.0
        # every sim-time mechanism is instrumented, so attribution is exact
        attributed = sum(
            v for k, v in d.breakdown.items() if k != "unattributed_s"
        )
        assert abs(d.breakdown["unattributed_s"]) < 1e-12
        assert abs(attributed - d.delay_s) < 1e-12
        assert d.breakdown["lookup_s"] > 0.0
        assert d.breakdown["serialization_s"] > 0.0
        assert d.breakdown["propagation_s"] > 0.0
        assert d.breakdown["host_service_s"] > 0.0

    def test_stretch_is_one_on_shortest_path(self):
        sim, net, recorder = _rig()
        dz = Dz("1")
        _install_line_path(net, dz)
        _publish(net, "h1", dz)
        sim.run()
        d = analyze_flight(recorder, topology=net.topology).deliveries[0]
        assert d.shortest_hops == 3
        assert d.stretch == 1.0

    def test_multicast_fanout_yields_one_trace_per_subscriber(self):
        sim, net, recorder = _rig(topology=star(leaves=3, hosts_per_leaf=1))
        dz = Dz("1")
        # replicate at the hub towards both subscriber leaves
        net.switches["HUB"].table.install(
            FlowEntry.for_dz(dz, {
                Action(net.port("HUB", "L2")),
                Action(net.port("HUB", "L3")),
            })
        )
        net.switches["L1"].table.install(
            FlowEntry.for_dz(dz, {Action(net.port("L1", "HUB"))})
        )
        for leaf, host in (("L2", "h2"), ("L3", "h3")):
            net.switches[leaf].table.install(
                FlowEntry.for_dz(dz, {
                    Action(net.port(leaf, host),
                           set_dest=net.hosts[host].address),
                })
            )
        _publish(net, "h1", dz)
        sim.run()
        report = analyze_flight(recorder, topology=net.topology)
        assert sorted(d.host for d in report.deliveries) == ["h2", "h3"]
        assert all(d.complete and d.publisher == "h1"
                   for d in report.deliveries)
        assert not report.duplicates

    def test_summary_aggregates_attribution(self):
        sim, net, recorder = _rig()
        dz = Dz("1")
        _install_line_path(net, dz)
        for _ in range(3):
            _publish(net, "h1", dz)
        sim.run()
        summary = analyze_flight(recorder, net.topology).summary()
        assert summary["deliveries"] == 3
        assert summary["incomplete_deliveries"] == 0
        assert summary["mean_stretch"] == 1.0
        assert summary["max_stretch"] == 1.0
        total_delay = sum(summary["delay_attribution_s"].values())
        assert total_delay > 0.0
        assert abs(summary["delay_attribution_s"]["unattributed_s"]) < 1e-12


class TestDropForensics:
    def test_table_miss(self):
        sim, net, recorder = _rig()
        _publish(net, "h1", Dz("1"))
        sim.run()
        report = analyze_flight(recorder)
        assert report.drop_counts == {"table-miss": 1}
        assert report.drops[0]["node"] == "R1"

    def test_link_down(self):
        sim, net, recorder = _rig()
        dz = Dz("1")
        _install_line_path(net, dz)
        net.link_between("R1", "R2").fail()
        _publish(net, "h1", dz)
        sim.run()
        assert analyze_flight(recorder).drop_counts == {"link-down": 1}

    def test_no_link(self):
        sim, net, recorder = _rig()
        dz = Dz("1")
        net.switches["R1"].table.install(
            FlowEntry.for_dz(dz, {Action(out_port=99)})
        )
        _publish(net, "h1", dz)
        sim.run()
        assert analyze_flight(recorder).drop_counts == {"no-link": 1}

    def test_ingress_bounce(self):
        sim, net, recorder = _rig()
        dz = Dz("1")
        # the only action points back out the ingress port towards h1
        net.switches["R1"].table.install(
            FlowEntry.for_dz(dz, {Action(net.port("R1", "h1"))})
        )
        _publish(net, "h1", dz)
        sim.run()
        assert analyze_flight(recorder).drop_counts == {"ingress-bounce": 1}

    def test_host_queue_overflow(self):
        params = NetworkParams(
            host_rate_eps=10.0, host_queue_capacity=1,
            switch_lookup_jitter_s=0.0,
        )
        sim, net, recorder = _rig(params=params)
        dz = Dz("1")
        _install_line_path(net, dz)
        for _ in range(5):
            _publish(net, "h1", dz)
        sim.run()
        report = analyze_flight(recorder)
        assert report.drop_counts.get("host-queue-overflow", 0) >= 1
        assert (
            report.drop_counts["host-queue-overflow"]
            == net.hosts["h2"].packets_dropped
        )

    def test_every_drop_has_exactly_one_known_reason(self):
        """Soak: a churny run with misses, a failed link and a slow host —
        every lost packet must be attributed to exactly one reason, and the
        per-reason totals must match the device counters."""
        params = NetworkParams(
            host_rate_eps=50.0, host_queue_capacity=2,
            switch_lookup_jitter_s=0.0,
        )
        sim, net, recorder = _rig(
            topology=line(3, hosts_per_switch=1), params=params
        )
        routed = Dz("1")
        h3 = net.hosts["h3"]
        net.switches["R1"].table.install(
            FlowEntry.for_dz(routed, {Action(net.port("R1", "R2"))})
        )
        net.switches["R2"].table.install(
            FlowEntry.for_dz(routed, {Action(net.port("R2", "R3"))})
        )
        net.switches["R3"].table.install(
            FlowEntry.for_dz(
                routed, {Action(net.port("R3", "h3"), set_dest=h3.address)}
            )
        )
        unrouted = Dz("0")
        for i in range(40):
            _publish(net, "h1", routed)
            if i % 3 == 0:
                _publish(net, "h1", unrouted)      # table-miss at R1
        # fail mid-run: the first packet crosses R2->R3 at ~1.09e-4 s (two
        # 50 us propagation hops), the last at ~1.4e-4 s, so failing at
        # 1.25e-4 s splits the stream into survivors and link-down losses
        sim.schedule_at(1.25e-4, net.link_between("R2", "R3").fail)
        sim.run()

        report = analyze_flight(recorder, topology=net.topology)
        # exactly one reason per drop record, all from the taxonomy
        assert all(d["reason"] in DROP_REASONS for d in report.drops)
        assert sum(report.drop_counts.values()) == len(report.drops)
        # flight totals agree with the authoritative device counters
        assert (
            report.drop_counts.get("table-miss", 0)
            == sum(s.packets_dropped_table_miss
                   for s in net.switches.values())
        )
        assert (
            report.drop_counts.get("link-down", 0)
            == sum(link.packets_lost_down for link in net.links.values())
        )
        assert (
            report.drop_counts.get("host-queue-overflow", 0)
            == sum(h.packets_dropped for h in net.hosts.values())
        )
        # the churn actually exercised every mechanism we claim to test
        assert report.drop_counts.get("table-miss", 0) == 14
        assert report.drop_counts.get("link-down", 0) >= 1
        assert report.drop_counts.get("host-queue-overflow", 0) >= 1
        assert len(report.deliveries) >= 1
        # conservation: all 54 packets either delivered or dropped, once
        assert len(report.deliveries) + len(report.drops) == 54


class TestDuplicates:
    def test_double_delivery_is_flagged(self):
        recorder = FlightRecorder(clock=lambda: 0.0)
        recorder.add(7, "host_send", "h1")
        recorder.add(7, "host_deliver", "h9")
        recorder.add(7, "host_deliver", "h9")
        report = analyze_flight(recorder)
        assert report.duplicates == [
            {"packet_id": 7, "host": "h9", "count": 2}
        ]
        assert report.summary()["duplicates"] == 1


class TestRecordGauges:
    def test_gauges_published_idempotently(self):
        sim, net, recorder = _rig()
        dz = Dz("1")
        _install_line_path(net, dz)
        _publish(net, "h1", dz)
        _publish(net, "h1", Dz("0"))  # one table miss
        sim.run()
        report = analyze_flight(recorder, net.topology)
        registry = MetricsRegistry()
        report.record_gauges(registry)
        report.record_gauges(registry)  # idempotent by construction
        snap = registry.snapshot()["gauges"]
        assert snap["flight.deliveries"] == 1.0
        assert snap["flight.drops"] == 1.0
        assert snap['flight.drops{reason=table-miss}'] == 1.0
        assert snap["flight.mean_stretch"] == 1.0
        assert (
            snap["flight.delay_attribution_s{component=propagation_s}"] > 0.0
        )


class TestRenderers:
    def _recorded_run(self):
        sim, net, recorder = _rig()
        dz = Dz("1")
        _install_line_path(net, dz)
        _publish(net, "h1", dz)
        sim.run()
        return recorder

    def test_timeline_mentions_every_stage(self):
        recorder = self._recorded_run()
        text = render_timeline(list(recorder))
        assert "published" in text
        assert "tcam hit" in text
        assert "delivered to application" in text
        assert render_timeline([]) == "(no records)"

    def test_link_hotness_table(self):
        recorder = self._recorded_run()
        report = analyze_flight(recorder)
        text = render_link_hotness(report.link_hotness)
        assert "h1->R1" in text
        assert "R2->h2" in text
        assert render_link_hotness({}) == "(no link transmissions recorded)"
        top1 = render_link_hotness(report.link_hotness, top=1)
        assert len(top1.splitlines()) == 1


class TestChromeTrace:
    def test_structure_and_durations(self):
        sim, net, recorder = _rig()
        dz = Dz("1")
        _install_line_path(net, dz)
        _publish(net, "h1", dz)
        _publish(net, "h1", Dz("0"))  # adds a drop instant event
        sim.run()
        doc = chrome_trace(recorder)
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert sorted(m["args"]["name"] for m in meta) == [
            "R1", "R2", "h1", "h2",
        ]
        spans = [e for e in events if e["ph"] == "X"]
        assert spans and all(e["dur"] > 0.0 for e in spans)
        drops = [e for e in events if e.get("cat") == "drop"]
        assert [e["name"] for e in drops] == ["drop:table-miss"]
        # the document must be JSON-serialisable as-is
        json.dumps(doc)
